"""Core abstractions of the ``repro.sched`` scheduler subsystem.

The paper's algorithms (Fed-LBAP, Fed-MinAvg), the Sec.-VII baselines
and the related-work additions (OLAR, MinEnergy) all answer the same
question — *how many data shards does each user train this round?* —
but historically lived as loose functions with incompatible signatures.
This module gives them one shape:

* :class:`SchedulingProblem` — the full instance a scheduler may
  consult: per-user time/energy cost matrices (``C[j, k]`` = cost of
  ``k+1`` shards), the shard budget, capacities, non-IID class sets,
  P2 weights and an RNG. Every field a given algorithm does not use is
  simply ignored by it.
* :class:`Assignment` — a :class:`~repro.core.schedule.Schedule` plus
  the *predicted* round makespan and energy under the problem's cost
  model, so schedulers are comparable on a common yardstick before any
  simulation runs.
* :class:`Scheduler` — the ABC every algorithm implements
  (``schedule(problem) -> Assignment``); concrete classes self-register
  via :func:`repro.sched.registry.register`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.schedule import Schedule

__all__ = ["SchedulingProblem", "Assignment", "Scheduler"]


@dataclass
class SchedulingProblem:
    """One scheduling instance: cost model + budget + constraints.

    Attributes
    ----------
    time_cost:
        ``(n_users, s)`` matrix; ``time_cost[j, k]`` is the seconds user
        ``j`` needs for ``k+1`` shards this round (compute plus one
        model push/pull). Rows non-decreasing (Property 1).
    energy_cost:
        Optional ``(n_users, s)`` matrix of Joules, same convention.
        Required by energy-aware schedulers (MinEnergy).
    total_shards:
        The D of Eq. (3): shards to allocate in full.
    shard_size:
        Samples per shard.
    capacities:
        Optional per-user shard caps ``C_j`` (storage/battery limits).
    user_classes:
        Optional per-user class sets ``U_j`` for non-IID instances;
        defaults to "every user holds every class" (IID reading).
    num_classes:
        K, classes in the test set.
    alpha, beta:
        Eq.-(6) time/accuracy trade-off weights (P2 schedulers only).
    time_curves, comm_costs:
        Optional raw per-user ``T_j(n_samples)`` callables and one-off
        communication seconds. Adapters that wrap curve-based
        algorithms (Fed-MinAvg) use these verbatim so their output is
        bit-identical to a direct call; matrix-based schedulers ignore
        them.
    weights:
        Optional per-user processing-power estimates for the
        Proportional baseline (e.g. mean CPU frequency per core).
    makespan_cap_s:
        Optional deadline for energy-minimising schedulers: cells whose
        time exceeds the cap are infeasible.
    rng:
        Generator or integer seed consumed by randomised schedulers;
        an explicit value makes runs reproducible end to end.
    """

    time_cost: np.ndarray
    total_shards: int
    shard_size: int = 1
    energy_cost: Optional[np.ndarray] = None
    capacities: Optional[np.ndarray] = None
    user_classes: Optional[Sequence[Tuple[int, ...]]] = None
    num_classes: int = 10
    alpha: float = 0.0
    beta: float = 0.0
    time_curves: Optional[Sequence[Callable[[float], float]]] = None
    comm_costs: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    makespan_cap_s: Optional[float] = None
    rng: Union[np.random.Generator, int, None] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # private copy: schedulers share one problem instance, so the
        # matrices are frozen after validation — an adapter mutating
        # its input would silently skew every scheduler run after it
        self.time_cost = np.array(self.time_cost, dtype=np.float64)
        self.validate()
        self.time_cost.flags.writeable = False
        if self.energy_cost is not None:
            self.energy_cost.flags.writeable = False

    # -- shape helpers ----------------------------------------------------
    @property
    def n_users(self) -> int:
        return int(self.time_cost.shape[0])

    @property
    def n_slots(self) -> int:
        """Columns of the cost matrices (max shards any user could take)."""
        return int(self.time_cost.shape[1])

    def effective_capacities(self) -> np.ndarray:
        """Per-user caps clipped to the matrix width (``n_slots``)."""
        caps = np.full(self.n_users, self.n_slots, dtype=np.int64)
        if self.capacities is not None:
            caps = np.minimum(
                caps, np.asarray(self.capacities, dtype=np.int64)
            )
        return caps

    def classes_or_default(self) -> Sequence[Tuple[int, ...]]:
        """Class sets, defaulting to full coverage for every user."""
        if self.user_classes is not None:
            return self.user_classes
        full = tuple(range(self.num_classes))
        return [full] * self.n_users

    def generator(self, fallback_seed: int = 0) -> np.random.Generator:
        """Materialise the problem's RNG (seed, Generator, or default)."""
        if isinstance(self.rng, np.random.Generator):
            return self.rng
        if self.rng is not None:
            return np.random.default_rng(int(self.rng))
        return np.random.default_rng(fallback_seed)

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Reject malformed instances with actionable messages."""
        if self.time_cost.ndim != 2:
            raise ValueError("time_cost must be a 2-D (users x shards) matrix")
        if self.n_users == 0:
            raise ValueError("need at least one user (empty user list)")
        if self.n_slots == 0:
            raise ValueError("cost matrix has zero shard columns")
        if self.total_shards <= 0:
            raise ValueError("total_shards must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if not np.isfinite(self.time_cost).all():
            raise ValueError("time_cost contains NaN/inf entries")
        if (self.time_cost < 0).any():
            raise ValueError("time_cost contains negative entries")
        for name in ("energy_cost",):
            m = getattr(self, name)
            if m is None:
                continue
            m = np.array(m, dtype=np.float64)
            if m.shape != self.time_cost.shape:
                raise ValueError(f"{name} shape must match time_cost")
            if not np.isfinite(m).all():
                raise ValueError(f"{name} contains NaN/inf entries")
            if (m < 0).any():
                raise ValueError(f"{name} contains negative entries")
            setattr(self, name, m)
        caps = self.effective_capacities()
        if (caps < 0).any():
            raise ValueError("capacities must be non-negative")
        if int(caps.sum()) < self.total_shards:
            raise ValueError(
                "infeasible: total capacity "
                f"{int(caps.sum())} below the requested "
                f"{self.total_shards} shards"
            )
        if self.user_classes is not None and len(self.user_classes) != self.n_users:
            raise ValueError("one class set per user required")

    # -- evaluation -------------------------------------------------------
    def predicted_makespan(self, shard_counts: np.ndarray) -> float:
        """Round makespan implied by the time matrix for an allocation."""
        counts = np.asarray(shard_counts, dtype=np.int64)
        active = np.flatnonzero(counts > 0)
        if active.size == 0:
            return 0.0
        return float(
            max(self.time_cost[j, counts[j] - 1] for j in active)
        )

    def predicted_energy(
        self, shard_counts: np.ndarray
    ) -> Optional[float]:
        """Total Joules implied by the energy matrix (None if absent)."""
        if self.energy_cost is None:
            return None
        counts = np.asarray(shard_counts, dtype=np.int64)
        return float(
            sum(
                self.energy_cost[j, counts[j] - 1]
                for j in np.flatnonzero(counts > 0)
            )
        )


@dataclass
class Assignment:
    """A scheduler's answer, annotated with its predicted cost.

    ``schedule`` carries the shard allocation; ``predicted_makespan_s``
    and ``predicted_energy_j`` are evaluated against the *problem's*
    cost matrices so every scheduler is scored on the same model.
    """

    schedule: Schedule
    scheduler: str
    predicted_makespan_s: float
    predicted_energy_j: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def shard_counts(self) -> np.ndarray:
        return self.schedule.shard_counts

    def samples_per_user(self) -> np.ndarray:
        return self.schedule.samples_per_user()

    @classmethod
    def from_schedule(
        cls,
        problem: SchedulingProblem,
        schedule: Schedule,
        scheduler: str,
        **meta: object,
    ) -> "Assignment":
        """Wrap a raw schedule and score it against the problem."""
        return cls(
            schedule=schedule,
            scheduler=scheduler,
            predicted_makespan_s=problem.predicted_makespan(
                schedule.shard_counts
            ),
            predicted_energy_j=problem.predicted_energy(
                schedule.shard_counts
            ),
            meta=dict(meta),
        )


class Scheduler(ABC):
    """A shard-allocation algorithm.

    Subclasses set ``name`` (the registry key fills it in when the
    class is registered) and implement :meth:`schedule`. A scheduler
    must allocate *exactly* ``problem.total_shards`` shards and respect
    ``problem.effective_capacities()``; the shared property tests
    enforce both for every registered implementation.
    """

    #: registry key; assigned by @register
    name: str = "unnamed"

    @abstractmethod
    def schedule(self, problem: SchedulingProblem) -> Assignment:
        """Solve one instance."""

    def _finish(
        self,
        problem: SchedulingProblem,
        schedule: Schedule,
        **meta: object,
    ) -> Assignment:
        """Validate totals/capacities and wrap the schedule."""
        schedule.validate_total(problem.total_shards)
        schedule.validate_capacities(problem.effective_capacities())
        return Assignment.from_schedule(
            problem, schedule, self.name, **meta
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"

"""Decorator-based scheduler registry.

Algorithms self-register under a stable string key::

    @register("olar")
    class OLARScheduler(Scheduler):
        ...

and callers resolve them by name (``get_scheduler("olar")``) — the CLI,
the bench harness and the engine binding never import concrete classes.
Constructor keyword arguments pass through ``get_scheduler``, so
parameterised variants (``get_scheduler("random", seed=7)``) need no
extra plumbing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple, Type

from .base import Scheduler

__all__ = [
    "register",
    "get_scheduler",
    "scheduler_class",
    "available_schedulers",
    "is_registered",
]

_REGISTRY: Dict[str, Type[Scheduler]] = {}


def register(
    name: str,
) -> Callable[[Type[Scheduler]], Type[Scheduler]]:
    """Class decorator adding a :class:`Scheduler` under ``name``.

    The key becomes the class's ``name`` attribute (and thus the
    ``algorithm`` tag on the schedules it emits, unless the adapter
    overrides it to preserve a historical tag).
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("scheduler name must be non-empty")

    def deco(cls: Type[Scheduler]) -> Type[Scheduler]:
        if not issubclass(cls, Scheduler):
            raise TypeError(
                f"{cls.__name__} must subclass Scheduler to register"
            )
        if key in _REGISTRY and _REGISTRY[key] is not cls:
            raise ValueError(f"scheduler {key!r} already registered")
        cls.name = key
        _REGISTRY[key] = cls
        return cls

    return deco


def is_registered(name: str) -> bool:
    return name.strip().lower() in _REGISTRY


def scheduler_class(name: str) -> Type[Scheduler]:
    """Look up the class behind a registry key."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; "
            f"available: {', '.join(available_schedulers())}"
        )
    return _REGISTRY[key]


def get_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    return scheduler_class(name)(**kwargs)


def available_schedulers() -> Tuple[str, ...]:
    """All registry keys, sorted."""
    return tuple(sorted(_REGISTRY))

"""OLAR — OptimaL Assignment of tasks to Resources.

From Pilla, *Optimal Task Assignment to Heterogeneous Federated
Learning Devices* (2020): assign ``D`` identical data units to ``n``
heterogeneous devices minimising the round makespan
``max_j C_j(k_j)``, where each per-device cost function is monotone
non-decreasing in its own load.

OLAR is a marginal-cost greedy: every unit in turn goes to the device
whose cost *after receiving it* is smallest, maintained in a min-heap.
For monotone costs this is provably optimal — when a unit is placed on
the device with the cheapest next-unit cost, any schedule placing it
elsewhere has a bottleneck at least as large (the exchange argument of
Theorem 1 in the paper; ``tests/sched/test_properties_sched.py``
cross-checks the optimum against the brute-force oracle on every small
instance). Complexity is ``O(n + D log n)``, independent of the cost
matrix width.

The heap never holds stale entries: a device is re-pushed with its next
marginal cost only while below its capacity, so each pop is a valid
assignment. Ties break on the lowest user index (heap order on the
``(cost, j)`` tuple), keeping runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..core.schedule import Schedule
from .base import Assignment, Scheduler, SchedulingProblem
from .registry import register

__all__ = ["OLARScheduler", "olar_assign"]


def olar_assign(
    cost: np.ndarray,
    total_shards: int,
    capacities: np.ndarray,
) -> np.ndarray:
    """Heap greedy over marginal costs; returns per-user shard counts.

    ``cost[j, k]`` is user ``j``'s cost at ``k+1`` shards; rows must be
    non-decreasing for the optimality guarantee to hold (the caller —
    :class:`OLARScheduler` — builds matrices through Property-1
    enforcement).
    """
    n = cost.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    heap: List[Tuple[float, int]] = [
        (float(cost[j, 0]), j) for j in range(n) if capacities[j] > 0
    ]
    heapq.heapify(heap)
    for _ in range(total_shards):
        if not heap:
            raise ValueError(
                "infeasible: capacities exhausted before all shards "
                "were assigned"
            )
        c, j = heapq.heappop(heap)
        counts[j] += 1
        if counts[j] < capacities[j]:
            heapq.heappush(heap, (float(cost[j, counts[j]]), j))
    return counts


@register("olar")
class OLARScheduler(Scheduler):
    """Optimal min-makespan assignment for monotone per-unit costs."""

    def schedule(self, problem: SchedulingProblem) -> Assignment:
        caps = problem.effective_capacities()
        counts = olar_assign(
            problem.time_cost, problem.total_shards, caps
        )
        schedule = Schedule(
            shard_counts=counts,
            shard_size=problem.shard_size,
            algorithm="olar",
            meta={"optimal": True},
        )
        return self._finish(
            problem,
            schedule,
            makespan_optimal=True,
        )

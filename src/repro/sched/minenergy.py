"""MinEnergy — (MC)²MKP-style minimal-energy scheduling.

From Pilla, *Scheduling Algorithms for Federated Learning with Minimal
Energy Consumption* (2022): choosing how many data units each device
trains so that **total energy** ``sum_j E_j(k_j)`` is minimal, subject
to assigning all ``D`` units, is a Minimal-Cost Multiple-Choice
Knapsack problem — every device contributes exactly one "choice"
(its shard count, possibly zero) and the choices must sum to ``D``.

The exact dynamic program fills ``dp[t]`` = minimal Joules to place
``t`` shards on the devices processed so far::

    dp_new[t] = min_{0 <= k <= min(cap_j, t)}  dp[t - k] + E_j(k)

with ``E_j(0) = 0``, in ``O(n D^2)`` time and ``O(n D)`` memory for the
reconstruction table — exact and fast for testbed-scale instances
(hundreds of shards); it is *not* meant for the million-shard regime,
where OLAR-style greedies on marginal energy are the practical choice.

An optional **makespan cap** bridges back to the source paper's P1:
shard counts whose predicted time exceeds the cap are excluded from a
device's choice set (rows are non-decreasing, so the feasible counts
are a prefix found by ``searchsorted``). With a cap the schedule is the
minimal-energy allocation among those meeting the deadline; an
infeasible cap raises ``ValueError`` rather than silently relaxing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.schedule import Schedule
from .base import Assignment, Scheduler, SchedulingProblem
from .registry import register

__all__ = ["MinEnergyScheduler", "min_energy_assign"]


def min_energy_assign(
    energy: np.ndarray,
    total_shards: int,
    capacities: np.ndarray,
    time_cost: Optional[np.ndarray] = None,
    makespan_cap_s: Optional[float] = None,
) -> np.ndarray:
    """Exact (MC)²MKP dynamic program; returns per-user shard counts."""
    n = energy.shape[0]
    d = int(total_shards)
    # per-user largest admissible count: capacity, clipped by the cap
    kmax = np.minimum(capacities, d).astype(np.int64)
    if makespan_cap_s is not None:
        if time_cost is None:
            raise ValueError(
                "a makespan cap needs the time_cost matrix to test "
                "feasibility"
            )
        for j in range(n):
            # rows are non-decreasing: counts meeting the cap are a prefix
            kmax[j] = min(
                kmax[j],
                int(
                    np.searchsorted(
                        time_cost[j], makespan_cap_s, side="right"
                    )
                ),
            )
    if int(kmax.sum()) < d:
        raise ValueError(
            "infeasible: no allocation of "
            f"{d} shards meets the makespan cap/capacities "
            f"(max assignable: {int(kmax.sum())})"
        )

    inf = np.inf
    dp = np.full(d + 1, inf)
    dp[0] = 0.0
    choice = np.zeros((n, d + 1), dtype=np.int64)
    for j in range(n):
        e_j = np.concatenate(([0.0], energy[j, : kmax[j]]))
        new = np.full(d + 1, inf)
        for t in range(d + 1):
            km = min(kmax[j], t)
            # candidate k = 0..km maps to dp[t-k] reversed slice
            cand = dp[t - km : t + 1][::-1] + e_j[: km + 1]
            k = int(np.argmin(cand))
            new[t] = cand[k]
            choice[j, t] = k
        dp = new
    if not np.isfinite(dp[d]):
        raise ValueError(
            "infeasible: the dynamic program found no full allocation"
        )
    counts = np.zeros(n, dtype=np.int64)
    t = d
    for j in range(n - 1, -1, -1):
        counts[j] = choice[j, t]
        t -= counts[j]
    assert t == 0, "DP reconstruction must consume every shard"
    return counts


@register("min_energy")
class MinEnergyScheduler(Scheduler):
    """Exact minimal-total-energy allocation with an optional deadline.

    ``makespan_cap_s`` set here overrides the problem's own cap; the
    default (``None``) defers to :attr:`SchedulingProblem.makespan_cap_s`.
    """

    def __init__(self, makespan_cap_s: Optional[float] = None) -> None:
        self.makespan_cap_s = makespan_cap_s

    def schedule(self, problem: SchedulingProblem) -> Assignment:
        if problem.energy_cost is None:
            raise ValueError(
                "min_energy needs problem.energy_cost (build the "
                "instance with an energy matrix, e.g. "
                "repro.sched.costs.testbed_problem(with_energy=True))"
            )
        cap = (
            self.makespan_cap_s
            if self.makespan_cap_s is not None
            else problem.makespan_cap_s
        )
        counts = min_energy_assign(
            problem.energy_cost,
            problem.total_shards,
            problem.effective_capacities(),
            time_cost=problem.time_cost,
            makespan_cap_s=cap,
        )
        schedule = Schedule(
            shard_counts=counts,
            shard_size=problem.shard_size,
            algorithm="min-energy",
            meta={"makespan_cap_s": cap},
        )
        return self._finish(
            problem, schedule, energy_optimal=True, makespan_cap_s=cap
        )

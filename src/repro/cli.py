"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``):

    python -m repro list                       # list experiments
    python -m repro run fig5                   # reproduce one figure/table
    python -m repro run table2 fig4            # several at once
    python -m repro run all                    # the full evaluation
    python -m repro trace nexus6p --model vgg6 # Fig. 1(c)-style trace
    python -m repro devices                    # calibrated testbed summary
    python -m repro sched list                 # registered schedulers
    python -m repro sched compare --testbed A  # scheduler comparison
    python -m repro bench fleet --ns 100,10000 # columnar-fleet n-sweep
    python -m repro bench suite --quick        # core perf suite (smoke)
    python -m repro bench diff OLD NEW         # regression verdicts
    python -m repro obs summary run.jsonl      # telemetry dashboard
    python -m repro obs export-prom run.jsonl  # Prometheus exposition
    python -m repro obs export-trace run.jsonl # Perfetto/Chrome trace
    python -m repro obs prof --rounds 3        # phase-profiled workload

``run`` uses each experiment's default (fast) configuration and prints
the paper-style rows; ``--out DIR`` additionally archives them.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List

from . import __version__
from . import experiments as E
from .device.registry import DEVICE_NAMES, TESTBEDS, build_spec, make_device
from .device.workload import TrainingWorkload
from .engine.telemetry import record_telemetry
from .experiments.ascii_plot import line_plot, multi_series
from .experiments.runner import summarize_telemetry
from .models.flops import model_training_flops
from .models.zoo import MNIST_SHAPE, build_model

#: experiment registry: name -> module (each exposes run())
EXPERIMENTS: Dict[str, object] = {
    "fig1": E.fig1,
    "table2": E.table2,
    "fig2": E.fig2,
    "fig3": E.fig3,
    "fig4": E.fig4,
    "fig5": E.fig5,
    "table3": E.table3,
    "fig6": E.fig6,
    "table4": E.table4,
    "fig7": E.fig7,
    "table5": E.table5,
}


def cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments (paper table/figure -> module):")
    for name, mod in EXPERIMENTS.items():
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:8s} {doc}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    targets: List[str] = args.experiments
    if "all" in targets:
        targets = list(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    telemetry_path = getattr(args, "telemetry", None)
    want_obs = bool(getattr(args, "obs", False))

    def run_targets(aggregator=None) -> None:
        for name in targets:
            # perf_counter: wall clock is not monotonic (NTP steps would
            # skew or even negate the reported duration)
            t0 = time.perf_counter()
            seen = len(aggregator.events) if aggregator is not None else 0
            result = EXPERIMENTS[name].run()
            if aggregator is not None:
                result.add_note(
                    summarize_telemetry(aggregator, since_event=seen)
                )
            text = result.to_table()
            print(text)
            print(f"[{name} finished in {time.perf_counter() - t0:.1f} s]\n")
            if out_dir:
                (out_dir / f"{name}.txt").write_text(text + "\n")

    # record_telemetry closes/flushes the sink in its finally block, so
    # a run failing mid-round still leaves a complete, parseable JSONL;
    # the failure is reported instead of propagating a traceback.
    status = 0
    aggregator = None
    try:
        if telemetry_path or want_obs:
            with record_telemetry(telemetry_path) as aggregator:
                run_targets(aggregator)
        else:
            run_targets()
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        status = 1
    if telemetry_path and aggregator is not None:
        print(
            f"[telemetry: {len(aggregator.events)} events -> "
            f"{telemetry_path}]"
        )
    if want_obs and aggregator is not None:
        from .obs import ObsRecorder, render_summary

        recorder = ObsRecorder(run_name=" ".join(targets))
        for event in aggregator.events:
            recorder(event)
        print()
        print(render_summary(recorder), end="")
    return status


def cmd_devices(_args: argparse.Namespace) -> int:
    print("calibrated device registry (Table I):")
    for name in DEVICE_NAMES:
        spec = build_spec(name)
        clusters = ", ".join(
            f"{c.n_cores}x{c.freq_max_ghz}GHz {c.name}"
            for c in spec.clusters
        )
        trips = len(spec.thermal.trip_points)
        print(
            f"  {name:8s} {spec.soc:15s} {clusters:32s} "
            f"peak={spec.peak_gflops():5.1f} GFLOPS  trips={trips}"
        )
    print("\ntestbeds (Sec. VII):")
    for tb, names in TESTBEDS.items():
        print(f"  {tb}: {', '.join(names)}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    name = args.device
    if name not in DEVICE_NAMES:
        print(
            f"unknown device {name!r}; one of {sorted(DEVICE_NAMES)}",
            file=sys.stderr,
        )
        return 2
    model = build_model(args.model, input_shape=MNIST_SHAPE)
    device = make_device(name, seed=0)
    workload = TrainingWorkload(
        flops_per_sample=model_training_flops(model),
        n_samples=args.samples,
        batch_size=20,
        model_name=model.name,
    )
    trace = device.run_workload(workload)
    print(
        f"{name} running {args.model} on {args.samples} samples: "
        f"{trace.total_time_s:.1f} s, peak {trace.peak_temp_c():.1f} C"
    )
    print()
    print(
        line_plot(
            trace.temp_c,
            title="die temperature over the run (C)",
            y_label="time ->",
        )
    )
    print()
    print(
        multi_series(
            {k: v for k, v in trace.freq_ghz.items()},
            title="cluster frequency over the run (GHz; 0 = offline)",
        )
    )
    print()
    print(
        line_plot(
            trace.batch_times * 1000.0,
            title="per-batch training time (ms) — Fig. 1(a/b) style",
            y_label="batch ->",
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Assemble archived benchmark tables into one reproduction report."""
    results_dir = Path(args.results)
    if not results_dir.is_dir():
        print(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no result tables in {results_dir}", file=sys.stderr)
        return 2
    # paper artifacts first, then ablations/extensions
    def order(p: Path):
        name = p.stem
        paper_order = [
            "fig1", "table2", "fig2", "fig3", "fig4",
            "fig5", "table3", "fig6", "table4", "fig7", "table5",
        ]
        if name in paper_order:
            return (0, paper_order.index(name))
        return (1, name)

    sections = []
    for path in sorted(files, key=order):
        sections.append(path.read_text().rstrip())
    report = (
        "REPRODUCTION REPORT\n"
        "Optimize Scheduling of Federated Learning on Battery-powered "
        "Mobile Devices (IPDPS 2020)\n"
        f"{len(files)} result tables from benchmarks/results/\n"
        + "=" * 72
        + "\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


#: letter aliases for the paper's testbeds (A/B/C == 1/2/3)
_TESTBED_ALIASES = {"a": 1, "b": 2, "c": 3}


def _parse_testbed(value: str):
    """Resolve ``--testbed``: id (1/2/3), letter (A/B/C), or an explicit
    comma-separated device-name list (``nexus6,pixel2,...``)."""
    v = value.strip().lower()
    if v in _TESTBED_ALIASES:
        return _TESTBED_ALIASES[v]
    if v.isdigit():
        return int(v)
    names = [n.strip() for n in v.split(",") if n.strip()]
    if not names:
        raise ValueError(f"cannot parse testbed {value!r}")
    unknown = [n for n in names if n not in DEVICE_NAMES]
    if unknown:
        raise ValueError(
            f"unknown devices {unknown}; one of {sorted(DEVICE_NAMES)}"
        )
    return names


def cmd_sched_list(_args: argparse.Namespace) -> int:
    from .sched import available_schedulers, scheduler_class

    print("registered schedulers (repro.sched registry):")
    for name in available_schedulers():
        doc = (scheduler_class(name).__doc__ or "").strip().splitlines()[0]
        print(f"  {name:16s} {doc}")
    return 0


def cmd_sched_compare(args: argparse.Namespace) -> int:
    from .engine.events import EventBus
    from .sched import available_schedulers, compare, format_table
    from .sched import is_registered, testbed_problem

    testbed = None
    if not args.fleet_size:
        try:
            testbed = _parse_testbed(args.testbed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.schedulers:
        names = [s.strip() for s in args.schedulers.split(",") if s.strip()]
        bad = [s for s in names if not is_registered(s)]
        if bad:
            print(
                f"unknown schedulers: {bad}; "
                f"available: {', '.join(available_schedulers())}",
                file=sys.stderr,
            )
            return 2
    else:
        names = list(available_schedulers())

    def run_compare() -> None:
        t0 = time.perf_counter()
        if args.fleet_size:
            import numpy as np

            from .sched.costs import fleet_problem
            from .fleet import UniformSampler, synthetic_fleet

            if args.cohort <= 0:
                raise ValueError("--cohort must be positive")
            fleet = synthetic_fleet(
                args.fleet_size, seed=args.seed, model=args.model
            )
            # schedule a cohort, never the whole population: a
            # whole-fleet cost matrix is O(n * shards) memory, which
            # at n = 10^6 would not fit on any host
            k = min(args.cohort, fleet.n)
            cohort = UniformSampler(args.seed).sample(
                np.arange(fleet.n, dtype=np.int64), k
            )
            total_shards = (
                max(1, args.samples // args.shard_size)
                if args.samples
                else None
            )
            problem = fleet_problem(
                fleet,
                cohort=cohort,
                shard_size=args.shard_size,
                total_shards=total_shards,
                with_energy=not args.no_energy,
                makespan_cap_s=args.makespan_cap,
                seed=args.seed,
            )
            print(
                f"synthetic fleet: {fleet.n} devices over "
                f"{len(fleet.classes)} classes, cohort {cohort.size}, "
                f"{problem.total_shards} shards x "
                f"{problem.shard_size} samples, model {args.model} "
                f"(cost matrices built in "
                f"{problem.meta['build_ms']:.2f} ms)"
            )
        else:
            problem = testbed_problem(
                testbed,
                dataset=args.dataset,
                model=args.model,
                shard_size=args.shard_size,
                total_samples=args.samples,
                with_energy=not args.no_energy,
                makespan_cap_s=args.makespan_cap,
                seed=args.seed,
            )
            devices = problem.meta["devices"]
            print(
                f"testbed {args.testbed}: {len(devices)} devices "
                f"({', '.join(devices)}), {problem.total_shards} shards x "
                f"{problem.shard_size} samples, model {args.model}"
            )
        rows = compare(problem, names, bus=EventBus())
        print(format_table(rows))
        print(
            "[compared "
            f"{len(rows)} schedulers in {time.perf_counter() - t0:.1f} s]"
        )

    status = 0
    aggregator = None
    try:
        if args.telemetry:
            with record_telemetry(args.telemetry) as aggregator:
                run_compare()
        else:
            run_compare()
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        status = 1
    if args.telemetry and aggregator is not None:
        print(
            f"[telemetry: {len(aggregator.events)} events -> "
            f"{args.telemetry}]"
        )
    return status


def cmd_bench_fleet(args: argparse.Namespace) -> int:
    from .fleet import bench_fleet, format_bench, write_bench
    from .fleet.sampling import available_samplers
    from .sched import available_schedulers, is_registered

    try:
        ns = [int(x) for x in args.ns.split(",") if x.strip()]
    except ValueError:
        print(f"error: cannot parse --ns {args.ns!r}", file=sys.stderr)
        return 2
    if not ns or any(n <= 0 for n in ns):
        print("error: --ns needs positive integers", file=sys.stderr)
        return 2
    names = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    bad = [s for s in names if not is_registered(s)]
    if bad:
        print(
            f"unknown schedulers: {bad}; "
            f"available: {', '.join(available_schedulers())}",
            file=sys.stderr,
        )
        return 2
    if args.sampler not in available_samplers():
        print(
            f"unknown sampler {args.sampler!r}; one of "
            f"{', '.join(available_samplers())}",
            file=sys.stderr,
        )
        return 2
    t0 = time.perf_counter()
    try:
        rows = bench_fleet(
            ns=ns,
            schedulers=names,
            rounds=args.rounds,
            cohort=args.cohort,
            shard_size=args.shard_size,
            seed=args.seed,
            sampler=args.sampler,
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(format_bench(rows))
    print(
        f"[swept {len(rows)} cells in {time.perf_counter() - t0:.1f} s]"
    )
    if args.out:
        write_bench(rows, Path(args.out))
        print(f"wrote {args.out}")
    return 0


def _load_recorder(args: argparse.Namespace):
    """Build an ObsRecorder from the telemetry JSONL named in args."""
    from .obs import ObsRecorder

    path = Path(args.jsonl)
    if not path.is_file():
        print(f"error: no telemetry file at {path}", file=sys.stderr)
        return None
    recorder = ObsRecorder.from_jsonl(path)
    if recorder.corrupt_lines:
        print(
            f"warning: skipped {recorder.corrupt_lines} corrupt "
            f"line(s) in {path}",
            file=sys.stderr,
        )
    return recorder


def _emit(text: str, out: "str | None") -> None:
    if out:
        Path(out).write_text(text)
        print(f"wrote {out} ({len(text.splitlines())} lines)")
    else:
        print(text, end="")


def cmd_obs_summary(args: argparse.Namespace) -> int:
    from .obs import render_summary

    recorder = _load_recorder(args)
    if recorder is None:
        return 2
    print(
        render_summary(
            recorder,
            max_rounds=args.rounds,
            max_clients=args.clients,
        ),
        end="",
    )
    return 0


def cmd_obs_export_prom(args: argparse.Namespace) -> int:
    from .obs import render_prometheus

    recorder = _load_recorder(args)
    if recorder is None:
        return 2
    info = {"source": Path(args.jsonl).name}
    if recorder.schema_version is not None:
        info["schema_version"] = str(recorder.schema_version)
    _emit(render_prometheus(recorder.metrics, extra_info=info), args.out)
    return 0


def cmd_obs_export_trace(args: argparse.Namespace) -> int:
    from .obs import render_trace_json

    recorder = _load_recorder(args)
    if recorder is None:
        return 2
    spans = recorder.finish_spans()
    text = render_trace_json(spans, process_name=Path(args.jsonl).stem)
    _emit(text + "\n", args.out)
    return 0


def _git_changed_files(
    root: Path, base: "str | None" = None
) -> "List[str] | None":
    """Repo-relative paths touched vs HEAD (staged, unstaged and
    untracked); None when git is unavailable or errors.

    With ``base`` (e.g. ``origin/main``), committed changes since the
    merge base are included too — ``base...HEAD`` is the PR diff CI
    feeds to ``repro lint --changed --base``.
    """
    import subprocess

    commands = [
        ["git", "-C", str(root), "diff", "--name-only", "HEAD"],
        [
            "git", "-C", str(root), "ls-files",
            "--others", "--exclude-standard",
        ],
    ]
    if base is not None:
        commands.insert(
            0,
            [
                "git", "-C", str(root), "diff", "--name-only",
                f"{base}...HEAD",
            ],
        )
    changed: List[str] = []
    for cmd in commands:
        try:
            out = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.extend(
            line.strip() for line in out.splitlines() if line.strip()
        )
    return sorted(set(changed))


def cmd_bench_lint(args: argparse.Namespace) -> int:
    """Benchmark the lint pipeline; optionally write BENCH_lint.json."""
    from .analysis.bench import (
        bench_lint,
        format_bench_lint,
        write_bench_lint,
    )

    root = Path(args.root).resolve()
    if not (root / "src" / "repro").is_dir():
        print(
            f"error: {root} does not look like a repo checkout "
            "(no src/repro); pass --root",
            file=sys.stderr,
        )
        return 2
    bench = bench_lint(root)
    print(format_bench_lint(bench))
    if args.out:
        write_bench_lint(bench, Path(args.out))
        print(f"wrote {args.out}")
    return 0


def cmd_bench_suite(args: argparse.Namespace) -> int:
    """Run the core benchmark suite; optionally write BENCH_core.json."""
    from .perf import bench_suite, format_suite, write_suite

    results = bench_suite(quick=args.quick, seed=args.seed)
    print(format_suite(results, quick=args.quick))
    if args.out:
        write_suite(results, Path(args.out), quick=args.quick)
        print(f"wrote {args.out}")
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two suite payloads; non-zero exit on a gated regression."""
    from .perf import (
        diff_payloads,
        format_diff,
        has_regression,
        load_payload,
    )

    try:
        old = load_payload(Path(args.old))
        new = load_payload(Path(args.new))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdicts = diff_payloads(old, new, threshold_pct=args.threshold)
    print(format_diff(verdicts, threshold_pct=args.threshold))
    return 1 if has_regression(verdicts) else 0


def cmd_obs_prof(args: argparse.Namespace) -> int:
    """Profile a deterministic fleet workload; print the phase tree."""
    import json as _json

    from .fleet import FleetRunner, UniformSampler, synthetic_fleet
    from .obs import ObsRecorder
    from .obs.prof import PROFILER, profile_payload, render_profile

    PROFILER.reset()
    PROFILER.enable()
    try:
        fleet = synthetic_fleet(2000, seed=args.seed)
        runner = FleetRunner(
            fleet,
            scheduler=args.scheduler,
            sampler=UniformSampler(args.seed),
            cohort_size=128,
            shard_size=500,
        )
        recorder = ObsRecorder(run_name="obs-prof")
        runner.bus.subscribe(recorder)
        runner.run(args.rounds)
    finally:
        PROFILER.disable()
    if args.format == "json":
        _emit(
            _json.dumps(profile_payload(PROFILER), indent=2) + "\n",
            args.out,
        )
    else:
        _emit(render_profile(PROFILER) + "\n", args.out)
    if args.trace:
        from .obs import render_trace_json

        spans = recorder.finish_spans()
        Path(args.trace).write_text(
            render_trace_json(
                spans, process_name="obs-prof", profiler=PROFILER
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.trace}", file=sys.stderr)
    PROFILER.reset()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        apply_fixes,
        available_rules,
        format_findings,
        lint_repo,
        rule_class,
        write_baseline,
    )

    root = Path(args.root).resolve()
    if not (root / "src" / "repro").is_dir():
        print(
            f"error: {root} does not look like a repo checkout "
            "(no src/repro); pass --root",
            file=sys.stderr,
        )
        return 2
    if args.list_rules:
        print("registered lint rules (repro.analysis):")
        for rid in available_rules():
            print(f"  {rid:32s} {rule_class(rid).description}")
        return 0
    if args.dry_run and not args.fix:
        print("error: --dry-run only makes sense with --fix",
              file=sys.stderr)
        return 2
    if args.fix:
        result = apply_fixes(
            root, paths=args.paths or None, dry_run=args.dry_run
        )
        if args.dry_run:
            print(result.diff(), end="")
            print(
                f"would fix {result.n_edits} violation(s) in "
                f"{len(result.fixes)} file(s) (dry run; nothing written)"
            )
        else:
            for fix in result.fixes:
                print(f"fixed {fix.path} ({fix.n_edits} edit(s))")
            print(
                f"fixed {result.n_edits} violation(s) in "
                f"{len(result.fixes)} file(s); re-run repro lint"
            )
        return 0
    only_paths = None
    if args.changed:
        only_paths = _git_changed_files(root, base=args.base)
        if only_paths is None:
            print(
                "error: --changed needs a git checkout (git diff "
                "failed); lint without it",
                file=sys.stderr,
            )
            return 2
        only_paths = [p for p in only_paths if p.endswith(".py")]
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in available_rules()]
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                "(see repro lint --list-rules)",
                file=sys.stderr,
            )
            return 2
    report = lint_repo(
        root,
        paths=args.paths or None,
        rule_ids=rule_ids,
        baseline=args.baseline,
        use_baseline=not args.no_baseline,
        only_paths=only_paths,
    )
    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else root / (
            "lint-baseline.json"
        )
        write_baseline(target, report.findings)
        print(
            f"wrote {len(report.findings)} suppression(s) -> {target}"
        )
        return 0
    print(format_findings(report, fmt=args.format))
    return report.exit_code


def cmd_serve(args) -> int:
    """Run the control-plane orchestrator (or its simulated smoke)."""
    import asyncio

    from .serve.app import ServeApp, ServeConfig
    from .serve.httpd import ServeHttpServer

    config = ServeConfig(
        fleet_size=args.fleet_size,
        scheduler=args.scheduler,
        shard_size=args.shard_size,
        cohort_size=args.cohort,
        min_soc=args.min_soc,
        stale_after_s=args.stale_after,
        dead_after_s=args.dead_after,
        monitor_interval_s=args.monitor_interval,
        seed=args.seed,
    )
    if args.simulate:
        return asyncio.run(_serve_smoke(config, args))

    async def _serve() -> int:
        app = ServeApp(config)
        server = ServeHttpServer(app, host=args.host, port=args.port)
        port = await server.start()
        print(
            f"orchestrator on http://{args.host}:{port} "
            f"(fleet capacity {config.fleet_size}, "
            f"scheduler {config.scheduler}; ctrl-c to stop)"
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("orchestrator stopped")
        return 0


async def _serve_smoke(config, args) -> int:
    """Deterministic traffic against a real ephemeral-port server.

    Boots the HTTP server, replays a seeded churn trace over loopback
    HTTP, runs the requested rounds with one injected mid-round device
    loss, scrapes ``/metrics``, and asserts: every round completed, no
    computed schedule ever named a dead device, and the loss forced at
    least one re-plan. This is the CI serve smoke.
    """
    from .obs import catalog as obs_catalog
    from .serve.app import ServeApp
    from .serve.clock import ManualClock
    from .serve.httpd import ServeHttpServer, http_request
    from .serve.simclients import SimClientDriver, churn_trace

    clock = ManualClock()
    app = ServeApp(config, now_fn=clock)
    # the real wall-clock monitor would race the manual clock; the
    # driver sweeps the registry on the simulated cadence instead.
    # Always an ephemeral port: the smoke must not collide in CI.
    server = ServeHttpServer(
        app, host="127.0.0.1", port=0, monitor=False
    )
    port = await server.start()

    async def transport(method, path, body):
        return await http_request("127.0.0.1", port, method, path, body)

    horizon_s = args.sim_horizon
    trace = churn_trace(
        args.simulate,
        horizon_s=horizon_s,
        seed=config.seed,
        heartbeat_every_s=max(config.stale_after_s / 3.0, 0.5),
    )
    driver = SimClientDriver(app, clock, trace, transport=transport)
    join_end_s = max(e.at_s for e in trace if e.action == "join")
    await driver.run_until(join_end_s)

    injected = {"device": None}

    def inject_loss(phase: str, job) -> None:
        # churn one scheduled device away while round >= 2 is planning
        if (
            phase != "planned"
            or job.round_id < 2
            or injected["device"] is not None
        ):
            return
        plan = app.coordinator.plan_log[-1]
        for record in app.registry.records.values():
            if (
                record.client_id in plan.scheduled
                and record.state != "dead"
            ):
                app.registry.deregister(record.device_id)
                injected["device"] = record.device_id
                return

    app.coordinator.churn_hook = inject_loss

    gap_s = (horizon_s - join_end_s) / max(args.rounds, 1)
    for _ in range(args.rounds):
        status, payload = await transport("POST", "/v1/rounds", {})
        if status != 202:
            print(f"FAIL: round submit -> {status} {payload}")
            await server.stop()
            return 1
        await server.round_tasks_done()
        # keep heartbeats (and silent deaths) flowing between rounds
        await driver.run_until(driver.clock() + gap_s)

    failures: List[str] = []
    jobs = [app.jobs[i] for i in sorted(app.jobs)]
    incomplete = [j.round_id for j in jobs if j.status != "completed"]
    if incomplete:
        failures.append(f"rounds not completed: {incomplete}")
    dead_assigned = sum(
        p.dead_scheduled for p in app.coordinator.plan_log
    )
    if dead_assigned:
        failures.append(
            f"{dead_assigned} dead device(s) appeared in schedules"
        )
    replans = sum(j.replans for j in jobs)
    if injected["device"] is not None and replans == 0:
        failures.append(
            "injected device loss did not force a re-plan"
        )
    status, metrics_text = await transport("GET", "/metrics", None)
    serve_metrics = [
        obs_catalog.SERVE_DEVICES.name,
        obs_catalog.SERVE_HEARTBEAT_LAG_SECONDS.name,
        obs_catalog.SERVE_REPLANS_TOTAL.name,
        obs_catalog.SERVE_ROUNDS_IN_FLIGHT.name,
        obs_catalog.SERVE_REQUESTS_TOTAL.name,
    ]
    missing = [
        name
        for name in serve_metrics
        if not isinstance(metrics_text, str)
        or name not in metrics_text
    ]
    if missing:
        failures.append(f"/metrics missing instruments: {missing}")
    if args.metrics_out and isinstance(metrics_text, str):
        Path(args.metrics_out).write_text(
            metrics_text, encoding="utf-8"
        )
    await server.stop()

    counts = app.registry.counts()
    print(
        f"serve smoke: {args.simulate} devices over {horizon_s:.0f}s "
        f"sim (port {port}): "
        + ", ".join(f"{k}={v}" for k, v in counts.items())
    )
    for job in jobs:
        record = job.record or {}
        print(
            f"  round {job.round_id}: {job.status}, "
            f"participants={record.get('participant_count')}, "
            f"dropped={record.get('dropped_count')}, "
            f"replans={job.replans}, "
            f"model_version={job.model_version}"
        )
    print(
        f"  injected loss: {injected['device'] or 'none'}; "
        f"re-plans: {replans}; dead-device assignments: {dead_assigned}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("serve smoke OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Optimize Scheduling of Federated "
        "Learning on Battery-powered Mobile Devices' (IPDPS 2020)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run experiments by name")
    p_run.add_argument(
        "experiments", nargs="+", help="experiment names or 'all'"
    )
    p_run.add_argument(
        "--out", default=None, help="directory to archive result tables"
    )
    p_run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream engine events (per-client dispatch/finish, "
        "aggregations, round completions) to a JSON-lines file",
    )
    p_run.add_argument(
        "--obs",
        action="store_true",
        help="capture engine events and print the observability "
        "dashboard (metrics + energy ledger) after the run",
    )
    p_run.set_defaults(func=cmd_run)

    p_dev = sub.add_parser("devices", help="show the calibrated testbed")
    p_dev.set_defaults(func=cmd_devices)

    p_rep = sub.add_parser(
        "report", help="assemble archived benchmark tables into a report"
    )
    p_rep.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of archived tables (default benchmarks/results)",
    )
    p_rep.add_argument(
        "--out", default=None, help="write the report to a file"
    )
    p_rep.set_defaults(func=cmd_report)

    p_sched = sub.add_parser(
        "sched", help="scheduler subsystem (repro.sched)"
    )
    sched_sub = p_sched.add_subparsers(dest="sched_command", required=True)

    p_slist = sched_sub.add_parser(
        "list", help="list registered schedulers"
    )
    p_slist.set_defaults(func=cmd_sched_list)

    p_scmp = sched_sub.add_parser(
        "compare",
        help="run registered schedulers on one testbed and compare "
        "predicted makespan / energy / accuracy cost",
    )
    p_scmp.add_argument(
        "--testbed",
        default="A",
        help="testbed id (1/2/3 or A/B/C) or comma-separated device "
        "names (default A)",
    )
    p_scmp.add_argument(
        "--schedulers",
        default=None,
        help="comma-separated registry names (default: all registered)",
    )
    p_scmp.add_argument(
        "--dataset", default="mnist", help="mnist or cifar10"
    )
    p_scmp.add_argument(
        "--model", default="lenet", help="zoo model (default lenet)"
    )
    p_scmp.add_argument(
        "--shard-size", type=int, default=500, help="samples per shard"
    )
    p_scmp.add_argument(
        "--samples",
        type=int,
        default=None,
        help="total samples to schedule (default: the dataset size)",
    )
    p_scmp.add_argument(
        "--makespan-cap",
        type=float,
        default=None,
        help="deadline (s) for energy-minimising schedulers",
    )
    p_scmp.add_argument(
        "--no-energy",
        action="store_true",
        help="skip the energy cost model (min_energy reports an error "
        "row)",
    )
    p_scmp.add_argument(
        "--fleet-size",
        type=int,
        default=None,
        metavar="N",
        help="compare over a synthetic columnar fleet of N devices "
        "(repro.fleet) instead of a calibrated testbed; cost matrices "
        "are built by the vectorized per-class path",
    )
    p_scmp.add_argument(
        "--cohort",
        type=int,
        default=512,
        metavar="K",
        help="with --fleet-size, schedule a seeded uniform cohort of "
        "K devices drawn from the fleet (default 512; capped at N)",
    )
    p_scmp.add_argument(
        "--seed", type=int, default=0, help="seed for random baselines"
    )
    p_scmp.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream schedule_computed events to a JSON-lines file",
    )
    p_scmp.set_defaults(func=cmd_sched_compare)

    p_bench = sub.add_parser(
        "bench", help="performance benchmarks (repro.fleet)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_bfleet = bench_sub.add_parser(
        "fleet",
        help="sweep scheduler wall-time and cost-matrix build time "
        "over fleet sizes (writes BENCH_fleet.json with --out)",
    )
    p_bfleet.add_argument(
        "--ns",
        default="100,1000,10000,100000,1000000",
        help="comma-separated fleet sizes (default the 10^2..10^6 "
        "decade sweep)",
    )
    p_bfleet.add_argument(
        "--schedulers",
        default="proportional,fed_lbap",
        help="comma-separated registry names "
        "(default proportional,fed_lbap)",
    )
    p_bfleet.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="rounds per (n, scheduler) cell (default 3)",
    )
    p_bfleet.add_argument(
        "--cohort",
        type=int,
        default=512,
        help="cohort size sampled per round (default 512)",
    )
    p_bfleet.add_argument(
        "--shard-size", type=int, default=500, help="samples per shard"
    )
    p_bfleet.add_argument(
        "--sampler",
        default="uniform",
        help="cohort sampler: uniform, data_size or pareto",
    )
    p_bfleet.add_argument(
        "--seed", type=int, default=0, help="fleet/sampler seed"
    )
    p_bfleet.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON document (BENCH_fleet.json schema)",
    )
    p_bfleet.set_defaults(func=cmd_bench_fleet)

    p_blint = bench_sub.add_parser(
        "lint",
        help="time the lint pipeline per rule (writes BENCH_lint.json "
        "with --out)",
    )
    p_blint.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    p_blint.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON document (BENCH_lint.json schema)",
    )
    p_blint.set_defaults(func=cmd_bench_lint)

    p_bsuite = bench_sub.add_parser(
        "suite",
        help="run the core benchmark suite (writes BENCH_core.json "
        "with --out)",
    )
    p_bsuite.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workloads/fewer repeats; gated "
        "metrics computed identically to the full suite",
    )
    p_bsuite.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    p_bsuite.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON document (BENCH_core.json schema)",
    )
    p_bsuite.set_defaults(func=cmd_bench_suite)

    p_bdiff = bench_sub.add_parser(
        "diff",
        help="compare two suite payloads; exit 1 on a gated regression",
    )
    p_bdiff.add_argument("old", help="baseline payload (BENCH_core.json)")
    p_bdiff.add_argument("new", help="candidate payload")
    p_bdiff.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="gated-regression threshold in percent (default 25)",
    )
    p_bdiff.set_defaults(func=cmd_bench_diff)

    p_obs = sub.add_parser(
        "obs",
        help="observability over saved telemetry (repro.obs)",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_osum = obs_sub.add_parser(
        "summary",
        help="render the terminal dashboard from a telemetry JSONL",
    )
    p_osum.add_argument("jsonl", help="telemetry JSON-lines file")
    p_osum.add_argument(
        "--rounds",
        type=int,
        default=10,
        help="max round rows to show (default 10)",
    )
    p_osum.add_argument(
        "--clients",
        type=int,
        default=12,
        help="max client rows to show (default 12)",
    )
    p_osum.set_defaults(func=cmd_obs_summary)

    p_oprom = obs_sub.add_parser(
        "export-prom",
        help="export metrics as Prometheus text exposition",
    )
    p_oprom.add_argument("jsonl", help="telemetry JSON-lines file")
    p_oprom.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )
    p_oprom.set_defaults(func=cmd_obs_export_prom)

    p_otrace = obs_sub.add_parser(
        "export-trace",
        help="export spans as Chrome/Perfetto trace-event JSON",
    )
    p_otrace.add_argument("jsonl", help="telemetry JSON-lines file")
    p_otrace.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )
    p_otrace.set_defaults(func=cmd_obs_export_trace)

    p_oprof = obs_sub.add_parser(
        "prof",
        help="profile a deterministic fleet workload with the phase "
        "profiler and print the hierarchical summary",
    )
    p_oprof.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="fleet rounds to run (default 3)",
    )
    p_oprof.add_argument(
        "--scheduler",
        default="proportional",
        help="scheduler registry name (default proportional)",
    )
    p_oprof.add_argument(
        "--seed", type=int, default=0, help="fleet/sampler seed"
    )
    p_oprof.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="summary format (default text)",
    )
    p_oprof.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )
    p_oprof.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also write a Perfetto trace with profiler counter tracks",
    )
    p_oprof.set_defaults(func=cmd_obs_prof)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo invariant linter (repro.analysis)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text; sarif for GitHub code "
        "scanning)",
    )
    p_lint.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppression baseline file "
        "(default: <root>/lint-baseline.json when present)",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the suppression baseline entirely",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the new baseline",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    p_lint.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanical autofixes (seed stub for "
        "default_rng(), time.time->perf_counter, missing __all__ "
        "event exports) and exit",
    )
    p_lint.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diff, write nothing",
    )
    p_lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule subset to run (e.g. the "
        "determinism-taint pack CI uploads under its own SARIF "
        "category); default: all registered rules",
    )
    p_lint.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for git-changed files (the whole "
        "project graph is still analysed)",
    )
    p_lint.add_argument(
        "--base",
        default=None,
        metavar="REF",
        help="with --changed: also include files committed since the "
        "merge base with REF (e.g. origin/main — the PR-diff mode CI "
        "uses)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_tr = sub.add_parser(
        "trace", help="trace one device under sustained training"
    )
    p_tr.add_argument("device", help=f"one of {sorted(DEVICE_NAMES)}")
    p_tr.add_argument(
        "--model", default="lenet", help="zoo model (default lenet)"
    )
    p_tr.add_argument(
        "--samples", type=int, default=3000, help="samples per epoch"
    )
    p_tr.set_defaults(func=cmd_trace)

    p_srv = sub.add_parser(
        "serve",
        help="run the FL control-plane orchestrator (HTTP)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_srv.add_argument(
        "--port",
        type=int,
        default=8774,
        help="TCP port (0 = ephemeral; default 8774)",
    )
    p_srv.add_argument(
        "--scheduler",
        default="proportional",
        help="scheduler policy for training rounds",
    )
    p_srv.add_argument(
        "--fleet-size",
        type=int,
        default=256,
        help="registry capacity / synthetic fleet size",
    )
    p_srv.add_argument(
        "--shard-size", type=int, default=100, help="samples per shard"
    )
    p_srv.add_argument(
        "--cohort",
        type=int,
        default=None,
        help="cohort size per round (default: all eligible)",
    )
    p_srv.add_argument(
        "--min-soc",
        type=float,
        default=0.0,
        help="battery floor for scheduling eligibility",
    )
    p_srv.add_argument(
        "--stale-after",
        type=float,
        default=15.0,
        help="seconds of heartbeat silence before stale",
    )
    p_srv.add_argument(
        "--dead-after",
        type=float,
        default=45.0,
        help="seconds of heartbeat silence before dead",
    )
    p_srv.add_argument(
        "--monitor-interval",
        type=float,
        default=1.0,
        help="heartbeat monitor sweep cadence (seconds)",
    )
    p_srv.add_argument(
        "--seed", type=int, default=0, help="fleet/churn seed"
    )
    p_srv.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="N",
        help="smoke mode: drive N simulated devices over HTTP "
        "on an ephemeral port, then exit nonzero on failure",
    )
    p_srv.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="rounds to run in --simulate mode",
    )
    p_srv.add_argument(
        "--sim-horizon",
        type=float,
        default=120.0,
        help="simulated-clock horizon for the churn trace (s)",
    )
    p_srv.add_argument(
        "--metrics-out",
        default=None,
        help="write the final /metrics scrape to this file",
    )
    p_srv.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Fig. 2 — impact of IID data imbalance on FL accuracy."""

import numpy as np

from _util import record, run_once
from repro.experiments import fig2
from repro.experiments.flruns import FLRunConfig


def test_fig2_imbalance_accuracy(benchmark):
    cfg = fig2.Fig2Config(
        ratios=(0.0, 0.25, 0.5, 0.75, 1.0),
        n_users=10,
        repeats=2,
        fl=FLRunConfig(rounds=10),
    )
    result = run_once(benchmark, fig2.run, cfg)
    record(result)

    for ds in ("mnist_mini", "cifar10_mini"):
        fed = [
            r["accuracy"]
            for r in result.rows
            if r["dataset"] == ds and r["setting"] == "federated"
        ]
        central = [
            r["accuracy"]
            for r in result.rows
            if r["dataset"] == ds and r["setting"] == "centralized"
        ][0]
        # Paper shape: the accuracy-vs-imbalance curve is flat...
        assert max(fed) - min(fed) < 0.06, ds
        # ...and close to the centralized reference.
        assert min(fed) > central - 0.08, ds

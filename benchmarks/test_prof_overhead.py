"""Disabled-profiler overhead pin.

The phase profiler lives permanently in the hot paths (engine, fleet
runner, scheduler binding, serve router); its disabled fast path —
one attribute check plus a cached no-op context manager — must cost
less than 1% of an engine round sequence. Rather than differencing
two noisy end-to-end wall times (the instrumentation is *always*
compiled in, so there is no uninstrumented build to diff against),
the pin composes two direct measurements:

    overhead = per_call_cost(disabled phase) * phase_entries_per_run
               / bare_run_wall_time

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_prof_overhead.py -s``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticConfig, make_dataset
from repro.device.registry import make_device
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic
from repro.obs.prof import PROFILER, PhaseProfiler

RESULTS_DIR = Path(__file__).parent / "results"

N_USERS = 20
N_ROUNDS = 5
REPEATS = 5
CALLS = 200_000
BUDGET = 0.01  # 1% ceiling for the disabled instrumentation

DEVICE_NAMES = ("pixel2", "mate10", "nexus6p", "pixel2", "nexus6")


def _dataset():
    return make_dataset(
        SyntheticConfig(
            name="bench",
            shape=(1, 8, 8),
            num_classes=10,
            train_size=40_000,
            test_size=100,
            noise=1.0,
            seed=7,
        )
    )


def _run_engine(dataset, users):
    model = logistic(input_shape=dataset.input_shape, seed=1)
    devices = [
        make_device(DEVICE_NAMES[j % len(DEVICE_NAMES)], jitter=0.0)
        for j in range(N_USERS)
    ]
    sim = FederatedSimulation(
        dataset, model, users, devices=devices, config=SimulationConfig()
    )
    t0 = time.perf_counter()
    history = sim.run(N_ROUNDS, train=False)
    return time.perf_counter() - t0, history.makespans()


def _disabled_call_cost_s():
    probe = PhaseProfiler()  # fresh, disabled
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(CALLS):
            with probe.phase("x"):
                pass
        best = min(best, time.perf_counter() - t0)
    assert probe.stats == {}  # stayed disabled: nothing recorded
    return best / CALLS


def test_disabled_profiler_overhead_under_one_percent():
    dataset = _dataset()
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, N_USERS, rng)

    bare_s = min(_run_engine(dataset, users)[0] for _ in range(REPEATS))
    per_call_s = _disabled_call_cost_s()

    # count how many phase entries one run actually makes
    PROFILER.reset()
    PROFILER.enable()
    try:
        _, enabled_spans = _run_engine(dataset, users)
        phase_entries = PROFILER.total_count()
    finally:
        PROFILER.disable()
        PROFILER.reset()
    assert phase_entries > 0

    # profiling must never perturb the physics: same makespans with
    # the profiler on as off
    _, bare_spans = _run_engine(dataset, users)
    np.testing.assert_allclose(enabled_spans, bare_spans)

    overhead = per_call_s * phase_entries / bare_s

    lines = [
        "== prof_overhead: disabled PhaseProfiler cost on the engine",
        f"{N_USERS} users, {N_ROUNDS} timing-only rounds, "
        f"best of {REPEATS} repeats",
        f"bare engine      {bare_s * 1000:10.1f} ms",
        f"per disabled call{per_call_s * 1e9:10.1f} ns",
        f"phase entries    {phase_entries:10d} per run",
        f"overhead         {overhead * 100:+10.4f} %  "
        f"(budget {BUDGET:.0%})",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "prof_overhead.txt").write_text(text + "\n")

    assert overhead < BUDGET, (
        f"disabled-profiler overhead {overhead:.3%} exceeds "
        f"{BUDGET:.0%} budget"
    )

"""Fig. 1 — benchmark training performance on the mobile testbed.

Regenerates the per-batch time statistics of Fig. 1(a-b) and the
frequency/temperature stabilisation of Fig. 1(c).
"""

import numpy as np

from _util import record, run_once
from repro.experiments import fig1


def test_fig1_batch_time_and_freq_temp(benchmark):
    result = run_once(benchmark, fig1.run, fig1.Fig1Config(n_samples=3000))
    record(result)

    rows = {(r["model"], r["device"]): r for r in result.rows}
    # Paper shape (Fig. 1a): Pixel2 is the fastest LeNet device and the
    # Nexus 6P throttles under sustained load.
    lenet_means = {
        d: rows[("lenet", d)]["mean_batch_s"]
        for d in ("pixel2", "nexus6", "mate10", "nexus6p")
    }
    assert min(lenet_means, key=lenet_means.get) == "pixel2"
    assert rows[("lenet", "nexus6p")]["throttled"]
    # Fig. 1b: VGG6 flips Nexus6 vs Mate10.
    assert (
        rows[("vgg6", "mate10")]["mean_batch_s"]
        < rows[("vgg6", "nexus6")]["mean_batch_s"]
    )
    # Fig. 1c: every device stabilises below 60 C with the interactive
    # governor + thermal management.
    assert all(r["peak_temp_c"] < 60.0 for r in result.rows)


def test_fig1c_freq_temp_trace(benchmark):
    """The Fig. 1(c) series itself: frequency falls as temperature rises
    on the throttling device."""

    def series():
        trace = fig1.collect_trace("nexus6p", "vgg6", 3000)
        return fig1.freq_temp_series(trace, sample_every_s=5.0)

    s = run_once(benchmark, series)
    temps = s["temp_c"]
    freqs = s["freq_ghz"]
    assert temps.max() > 38.0
    # mean frequency after throttling is well below the cold-phase mean
    assert freqs[-10:].mean() < freqs[:3].mean()

"""Two system-level ablations the paper's design implies but does not
report.

1. **Shard granularity** (Sec. IV-A fixes "e.g. 100 samples/shard"):
   finer shards give Fed-LBAP a finer partition lattice and hence a
   (weakly) better bottleneck, at a scheduling cost that grows as
   O(ns log ns). The sweep quantifies the trade.

2. **Multi-round sustained heat**: the paper's FL runs 20-50 global
   epochs back to back. Devices do not cool between rounds, so an
   equal-share schedule drives the Nexus 6P into its sustained-load
   emergency stage *cumulatively* — per-round times degrade across
   rounds — while Fed-LBAP's small 6P allocations leave thermal
   headroom. Single-round (cold) comparisons understate Fed-LBAP's
   advantage.
"""

import time

import numpy as np

from _util import record, run_once
from repro.core import build_cost_matrix, equal_schedule, fed_lbap
from repro.device import TrainingWorkload, make_device
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.models import lenet, model_training_flops


def test_shard_granularity_tradeoff(benchmark):
    names = testbed_names(2)
    model = lenet()
    total_samples = 60_000

    def run_all():
        out = []
        curves = cached_time_curves(names, model)
        for d in (2000, 1000, 500, 250, 100):
            shards = total_samples // d
            t0 = time.perf_counter()
            cost = build_cost_matrix(curves, shards, d)
            sched, bottleneck = fed_lbap(cost, shards, d)
            elapsed_ms = (time.perf_counter() - t0) * 1000
            out.append((d, shards, bottleneck, elapsed_ms))
        return out

    rows = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_granularity",
        description="Fed-LBAP bottleneck and scheduling cost vs shard "
        "size (testbed 2, 60K LeNet)",
        columns=["shard_size", "n_shards", "bottleneck_s", "schedule_ms"],
    )
    for d, shards, bottleneck, ms in rows:
        result.add_row(
            shard_size=d,
            n_shards=shards,
            bottleneck_s=bottleneck,
            schedule_ms=ms,
        )
    record(result)
    bottlenecks = [r[2] for r in rows]
    # finer granularity never hurts the bottleneck...
    assert all(
        b <= a + 1e-9 for a, b in zip(bottlenecks, bottlenecks[1:])
    )
    # ...and even the finest sweep schedules in well under a second
    assert max(r[3] for r in rows) < 1000.0


def test_multiround_sustained_heat(benchmark):
    """Per-round makespans over consecutive rounds without cooling:
    Equal on VGG6 drives the Nexus 6Ps into the sustained-load
    emergency stage cumulatively — later rounds are catastrophically
    slower — while Fed-LBAP's small 6P allocations stay clear of it.
    (LeNet's power draw keeps the hot-state die below the emergency
    trip, so this effect is VGG-specific, matching the paper's
    "2 orders of magnitude" claim appearing in Fig. 5(b) only.)"""
    from repro.models import MNIST_SHAPE, vgg6

    names = testbed_names(2)
    model = vgg6(input_shape=MNIST_SHAPE)
    shards, d = 60, 500  # 30K samples per round
    flops = model_training_flops(model)
    n_rounds = 6

    def run_one_round(devices, sizes):
        times = []
        for dev, s in zip(devices, sizes):
            if s <= 0:
                times.append(0.0)
                continue
            w = TrainingWorkload(flops, int(s), 20)
            times.append(dev.run_workload(w, record=False).total_time_s)
        makespan = max(times)
        # synchronous barrier: fast devices idle (and cool) while
        # waiting; a short aggregation gap follows
        for dev, t in zip(devices, times):
            dev.idle(makespan - t + 1.0)
        return times, makespan

    def run_rounds(sizes):
        devices = [make_device(n, jitter=0.0) for n in names]
        return [
            run_one_round(devices, sizes)[1] for _ in range(n_rounds)
        ]

    def run_adaptive(curves):
        from repro.core import AdaptiveScheduler

        devices = [make_device(n, jitter=0.0) for n in names]
        ada = AdaptiveScheduler(
            initial_curves=curves,
            total_shards=shards,
            shard_size=d,
            forgetting=0.6,
            probe_every=0,
        )
        makespans = []
        for _ in range(n_rounds):
            sched = ada.next_schedule()
            times, makespan = run_one_round(
                devices, sched.samples_per_user()
            )
            makespans.append(makespan)
            ada.observe_round(sched, times)
        return makespans

    def run_all():
        curves = cached_time_curves(names, model)
        sched, _ = fed_lbap(
            build_cost_matrix(curves, shards, d), shards, d
        )
        equal = equal_schedule(len(names), shards, d)
        return {
            "equal": run_rounds(equal.samples_per_user()),
            "fed-lbap": run_rounds(sched.samples_per_user()),
            "adaptive": run_adaptive(curves),
        }

    out = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_multiround_heat",
        description="per-round makespan across back-to-back rounds "
        "(testbed 2, 30K VGG6; no cooling between rounds)",
        columns=["round", "equal_s", "fed_lbap_s", "adaptive_s"],
    )
    for r in range(n_rounds):
        result.add_row(
            round=r + 1,
            equal_s=out["equal"][r],
            fed_lbap_s=out["fed-lbap"][r],
            adaptive_s=out["adaptive"][r],
        )
    record(result)
    eq = out["equal"]
    lbap = out["fed-lbap"]
    ada = out["adaptive"]
    # Equal's later rounds are far worse than its first (the emergency
    # stage engages on the 6Ps).
    assert max(eq[1:]) > 3.0 * eq[0]
    # The *static* Fed-LBAP schedule eventually hits the cliff too —
    # its cold-profile 6P allocation accumulates sustained load.
    assert max(lbap) > 2.0 * lbap[0]
    # Closed-loop rescheduling is the fix: observing the blow-up, it
    # moves work off the degraded device and ends far below both.
    assert ada[-1] < 0.5 * lbap[-1]
    assert sum(ada) < sum(lbap) < sum(eq)

"""Closed-loop adaptive scheduling benchmark.

Extension of the paper's one-shot offline scheduling: Fed-LBAP re-run
every round over online RLS profiles updated from realized round times.
Three regimes on Testbed 2 (60K-sample LeNet rounds):

* **offline** — the paper's pipeline: one schedule from offline
  bootstrap profiles, reused forever;
* **adaptive-cold** — no offline profiling at all: uniform priors,
  learned purely from round feedback;
* **adaptive-wrong** — adversarial priors (the profile ordering is
  inverted) with probing enabled.

The adaptive loop should converge to within a few percent of the
offline schedule's makespan in a handful of rounds, from either start.
"""

import numpy as np

from _util import record, run_once
from repro.core import AdaptiveScheduler, build_cost_matrix, fed_lbap
from repro.experiments.realized import realized_times
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.models import lenet

NAMES = testbed_names(2)
MODEL = lenet()
SHARDS, D = 120, 500
ROUNDS = 6


def _drive(ada: AdaptiveScheduler) -> list:
    """Run the closed loop against the device simulator; return the
    realized makespan per round."""
    makespans = []
    for _ in range(ROUNDS):
        sched = ada.next_schedule()
        times = realized_times(sched.samples_per_user(), NAMES, MODEL)
        active = sched.samples_per_user() > 0
        makespans.append(float(times[active].max()))
        ada.observe_round(sched, times)
    return makespans


def test_adaptive_scheduling_convergence(benchmark):
    def run_all():
        curves = cached_time_curves(NAMES, MODEL)
        offline_sched, _ = fed_lbap(
            build_cost_matrix(curves, SHARDS, D), SHARDS, D
        )
        offline = float(
            realized_times(
                offline_sched.samples_per_user(), NAMES, MODEL
            ).max()
        )
        cold = _drive(
            AdaptiveScheduler(
                initial_curves=[
                    (lambda x: 30.0 + 0.001 * x) for _ in NAMES
                ],
                total_shards=SHARDS,
                shard_size=D,
                probe_every=2,
            )
        )
        # adversarial priors: invert the true ordering
        wrong = _drive(
            AdaptiveScheduler(
                initial_curves=[
                    (lambda x, c=c: c(6000) * 2 - 0.5 * c(x))
                    for c in reversed(curves)
                ],
                total_shards=SHARDS,
                shard_size=D,
                probe_every=2,
            )
        )
        return offline, cold, wrong

    offline, cold, wrong = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_adaptive",
        description="closed-loop Fed-LBAP vs the offline one-shot "
        "schedule (testbed 2, 60K LeNet, realized makespan)",
        columns=["round", "offline_s", "cold_start_s", "wrong_priors_s"],
    )
    for r in range(ROUNDS):
        result.add_row(
            round=r + 1,
            offline_s=offline,
            cold_start_s=cold[r],
            wrong_priors_s=wrong[r],
        )
    record(result)
    # The loop converges near the offline optimum from both starts.
    assert cold[-1] <= offline * 1.2
    assert wrong[-1] <= offline * 1.3
    # And it improves on its own first round substantially.
    assert cold[-1] < cold[0]

"""Table III — model accuracy per scheduler under IID data."""

import numpy as np

from _util import record, run_once
from repro.experiments import table3
from repro.experiments.flruns import FLRunConfig


def test_table3_iid_accuracy_grid(benchmark):
    cfg = table3.Table3Config(fl=FLRunConfig(rounds=10))
    result = run_once(benchmark, table3.run, cfg)
    record(result)

    losses = [r["lbap_loss_vs_best"] for r in result.rows]
    # Paper shape: load unbalancing costs no accuracy under IID data —
    # Fed-LBAP sits within training noise of the best baseline in every
    # cell and on average.
    assert max(losses) < 0.06
    assert float(np.mean(losses)) < 0.02

"""Fig. 3 — impact of non-IID data on model accuracy."""

from _util import record, run_once
from repro.experiments import fig3
from repro.experiments.flruns import FLRunConfig


def test_fig3_noniid_severity_and_outliers(benchmark):
    cfg = fig3.Fig3Config(
        dataset="cifar10_mini",
        nclass_values=(2, 4, 6, 8),
        repeats=3,
        fl=FLRunConfig(rounds=10),
    )
    result = run_once(benchmark, fig3.run, cfg)
    record(result)

    by = {r["setting"]: r["accuracy"] for r in result.rows}
    # Fig. 3(a): fewer classes per user -> lower accuracy, with a
    # substantial gap between the 2-class and 8-class extremes.
    assert by["8-class"] > by["2-class"] + 0.04
    assert by["8-class"] >= by["4-class"] - 0.02
    # Fig. 3(b): Missing ranks lowest — excluding a one-class outlier
    # that holds an otherwise-absent class costs accuracy.
    assert by["missing"] < by["separate"]
    assert by["missing"] < by["merge"]

"""Table II — per-epoch training time with communication overhead."""

from _util import record, run_once
from repro.experiments import table2


def test_table2_epoch_times(benchmark):
    result = run_once(benchmark, table2.run)
    record(result)

    wifi = [r for r in result.rows if r["link"] == "wifi"]
    # Simulated totals track the paper within 20% across the grid.
    for row in wifi:
        assert abs(row["total_s"] - row["paper_s"]) / row["paper_s"] < 0.2
    # Observation 3: communication is a small fraction (max ~15%, LTE+VGG6).
    assert max(r["comm_pct"] for r in result.rows) < 16.0
    assert min(r["comm_pct"] for r in result.rows) > 0.05
    # Observation 4-style straggler gap: the worst LeNet device needs
    # >60% more than the mean at 3K samples.
    lenet3k = [
        r["total_s"]
        for r in wifi
        if r["model"] == "lenet" and r["samples"] == 3000
    ]
    mean = sum(lenet3k) / len(lenet3k)
    assert (max(lenet3k) - mean) / mean > 0.4

"""Table V — model accuracy per scheduler under non-IID data."""

import numpy as np

from _util import record, run_once
from repro.experiments import table5
from repro.experiments.flruns import FLRunConfig


def test_table5_noniid_accuracy_grid(benchmark):
    cfg = table5.Table5Config(fl=FLRunConfig(rounds=10))
    result = run_once(benchmark, table5.run, cfg)
    record(result)

    losses = [r["minavg_loss_vs_best"] for r in result.rows]
    # Paper shape: Fed-MinAvg stays close to the best baseline (no
    # accuracy collapse from time-optimal scheduling); at mini scale the
    # per-cell training noise is a few points, so we bound the mean
    # tightly and each cell loosely.
    assert float(np.mean(losses)) < 0.04
    assert max(losses) < 0.12

    # Vertical trend: accuracy climbs (or holds) with more users for the
    # best baseline — the paper's "gradient diversity" observation.
    for ds in ("mnist", "cifar10"):
        rows = [
            r
            for r in result.rows
            if r["dataset"] == ds and r["model"] == "lenet"
        ]
        by_tb = {r["testbed"]: max(r["random"], r["equal"]) for r in rows}
        assert by_tb[3] > by_tb[1] - 0.05

"""Scheduler-subsystem performance pins.

OLAR's heap greedy is the subsystem's scalable path — O(n + D log n)
independent of the cost-matrix width — so it must stay fast at fleet
scale (n = 1000 users). The MinEnergy DP is exact but O(n D^2); its pin
is a testbed-scale budget documenting where it is meant to be used.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_scheduler_bench.py -s``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sched import SchedulingProblem, get_scheduler
from repro.sched.olar import olar_assign


def fleet_problem(n_users, total_shards, seed=0, with_energy=False):
    rng = np.random.default_rng(seed)
    intercepts = rng.uniform(0.5, 3.0, n_users)
    slopes = rng.uniform(0.05, 1.0, n_users)
    k = np.arange(1, total_shards + 1)
    time_cost = intercepts[:, None] + slopes[:, None] * k[None, :]
    energy_cost = None
    if with_energy:
        energy_cost = (
            rng.uniform(0.2, 2.0, n_users)[:, None] * k[None, :]
        )
    return SchedulingProblem(
        time_cost=time_cost,
        total_shards=total_shards,
        shard_size=100,
        energy_cost=energy_cost,
        rng=seed,
    )


class TestOlarScale:
    def test_olar_1000_users(self, benchmark):
        """Perf pin: n = 1000 users, D = 5000 shards in well under a
        second (the matrix build dominates, not the heap)."""
        problem = fleet_problem(1000, 5000)
        caps = problem.effective_capacities()

        def solve():
            return olar_assign(
                problem.time_cost, problem.total_shards, caps
            )

        counts = benchmark(solve)
        assert int(counts.sum()) == 5000
        t0 = time.perf_counter()
        solve()
        elapsed = time.perf_counter() - t0
        print(f"\nOLAR n=1000, D=5000: {elapsed * 1e3:.1f} ms")
        assert elapsed < 1.0, "OLAR regressed past its 1 s budget"

    def test_olar_still_optimal_at_scale(self):
        """Spot-check: the predicted makespan matches Fed-LBAP's exact
        threshold search on the same large instance."""
        problem = fleet_problem(1000, 2000, seed=1)
        olar = get_scheduler("olar").schedule(problem)
        lbap = get_scheduler("fed_lbap").schedule(problem)
        assert abs(
            olar.predicted_makespan_s - lbap.predicted_makespan_s
        ) < 1e-9


class TestMinEnergyBudget:
    def test_min_energy_testbed_scale(self, benchmark):
        """The exact DP stays interactive at testbed scale
        (n = 10 devices, D = 120 shards)."""
        problem = fleet_problem(10, 120, seed=2, with_energy=True)
        scheduler = get_scheduler("min_energy")

        assignment = benchmark(scheduler.schedule, problem)
        assert (
            assignment.schedule.total_shards == problem.total_shards
        )
        t0 = time.perf_counter()
        scheduler.schedule(problem)
        elapsed = time.perf_counter() - t0
        print(f"\nMinEnergy n=10, D=120: {elapsed * 1e3:.1f} ms")
        assert elapsed < 5.0, "MinEnergy DP regressed past its budget"

"""Table IV — the Fed-MinAvg schedules for S(I)-S(III) under the four
(alpha, beta) parameter points."""

from _util import record, run_once
from repro.experiments import table4


def test_table4_minavg_schedules(benchmark):
    result = run_once(
        benchmark, table4.run, table4.Table4Config(shard_size=100)
    )
    record(result)

    def row(scen, device):
        return [
            r
            for r in result.rows
            if r["scenario"] == scen and r["device"] == device
        ][0]

    # Every column allocates the full 50K CIFAR10 set.
    for scen in ("S1", "S2", "S3"):
        rows = [r for r in result.rows if r["scenario"] == scen]
        for col in ("p1", "p2", "p3", "p4"):
            assert abs(sum(r[col] for r in rows) - 50.0) < 0.2

    # Paper shapes:
    # S1 Pixel2 (unique class 7, only 2 classes): included only by beta.
    p2 = row("S1", "pixel2(2)")
    assert p2["p3"] > 0.0  # (alpha=100, beta=2)
    assert p2["p2"] == 0.0  # (alpha=5000, beta=0): excluded

    # S2's one-class Nexus6P(b) gets nothing at high alpha.
    n6pb = row("S2", "nexus6p(3)")
    assert n6pb["p2"] == 0.0 and n6pb["p4"] == 0.0

    # High alpha concentrates on the many-class devices.
    s3_rows = [r for r in result.rows if r["scenario"] == "S3"]
    nonzero_p1 = sum(1 for r in s3_rows if r["p1"] > 0)
    nonzero_p2 = sum(1 for r in s3_rows if r["p2"] > 0)
    assert nonzero_p2 <= nonzero_p1

"""Fig. 6 — effectiveness of alpha and beta on the S(I)-S(III)
scenarios: training time (top panels) and accuracy (bottom panels)."""

from _util import record, run_once
from repro.experiments import fig6
from repro.experiments.flruns import FLRunConfig


def test_fig6_alpha_beta_sweeps(benchmark):
    cfg = fig6.Fig6Config(fl=FLRunConfig(rounds=8))
    result = run_once(benchmark, fig6.run, cfg)
    record(result)

    def cell(scen, alpha, beta, key):
        return [
            r[key]
            for r in result.rows
            if r["scenario"] == scen
            and r["alpha"] == alpha
            and r["beta"] == beta
        ][0]

    for scen in ("S1", "S2", "S3"):
        # beta=0: training time trends up as alpha concentrates load on
        # fewer, class-rich devices.
        assert cell(scen, 5000.0, 0.0, "makespan_s") >= cell(
            scen, 100.0, 0.0, "makespan_s"
        )

    # S1/S2 hold unique-class outliers: beta=2 restores full coverage at
    # small alpha and lifts accuracy.
    for scen in ("S1", "S2"):
        assert cell(scen, 100.0, 2.0, "coverage") == 1.0
        assert cell(scen, 100.0, 2.0, "coverage") >= cell(
            scen, 100.0, 0.0, "coverage"
        )
        assert cell(scen, 100.0, 2.0, "accuracy") > cell(
            scen, 100.0, 0.0, "accuracy"
        ) - 0.02
        # high alpha excludes the unique-class holder: coverage falls
        assert cell(scen, 5000.0, 0.0, "coverage") < 1.0

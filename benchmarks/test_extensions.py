"""Extension benchmarks: the alternatives the paper discusses but does
not adopt, quantified against its own approach on the same substrate.

* **Hard straggler dropout** (ref [5], Sec. II-B): bounds round time
  but discards the stragglers' data — data-size scheduling (Fed-LBAP)
  achieves a comparable round time while using every sample.
* **Asynchronous aggregation** (Sec. II-B): more updates per unit time,
  but update counts skew heavily toward fast devices.
* **Decentralized topologies** (Sec. IV-A): Fed-MinAvg schedules plug
  into server-less gossip unchanged; denser graphs reach consensus
  faster.
* **Energy-aware capacities** (Sec. VI-A): battery budgets mapped into
  the C_j constraint of P2.
"""

import numpy as np
import pytest

from _util import record, run_once
from repro.core import build_cost_matrix, fed_lbap, fed_minavg
from repro.data import iid_partition, load_preset
from repro.device import (
    energy_capacity_shards,
    make_device,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.federated import (
    AsyncConfig,
    AsyncFederatedSimulation,
    DecentralizedConfig,
    DecentralizedSimulation,
    DropoutPolicy,
    FederatedSimulation,
    SimulationConfig,
    make_topology,
)
from repro.models import build_model, lenet


def test_dropout_vs_scheduling(benchmark):
    """Dropout shortens rounds but wastes straggler data; data-size
    scheduling matches the round time *and* keeps the data.

    Time side: full MNIST-scale LeNet on Testbed 2, Equal+deadline vs
    Fed-LBAP. Data side: scenario S(I), where the straggling device
    that dropout discards is also a unique-class holder — dropping it
    is the paper's 'Missing' case of Fig. 3(b).
    """
    from repro.experiments.flruns import FLRunConfig, accuracy_of_schedule
    from repro.experiments.realized import realized_times
    from repro.experiments.scenarios import scenario_classes
    from repro.federated.dropout import apply_deadline

    def run_all():
        out = {}
        # --- time: Testbed 2, 60K samples, equal split + deadline ---
        names = testbed_names(2)
        model = lenet()
        shards, d = 120, 500
        equal_sizes = np.full(len(names), shards // len(names)) * d
        times = realized_times(equal_sizes, names, model)
        active = list(range(len(names)))
        survivors, dropped, t_dropout = apply_deadline(
            times, active, DropoutPolicy(deadline_factor=1.5)
        )
        wasted = equal_sizes[dropped].sum() / equal_sizes.sum()
        curves = cached_time_curves(names, model)
        cost = build_cost_matrix(curves, shards, d)
        sched, _ = fed_lbap(cost, shards, d)
        t_lbap = realized_times(
            sched.samples_per_user(), names, model
        ).max()
        out["time"] = (t_dropout, t_lbap, float(wasted), len(dropped))

        # --- data: S(I): dropping the outlier loses class 7 entirely ---
        classes = scenario_classes("S1")
        fl = FLRunConfig(rounds=8)
        # dropout-of-outlier = equal shares with the outlier zeroed
        acc_drop = accuracy_of_schedule(
            "cifar10_mini", [1, 1, 0], classes, fl
        )
        minavg = fed_minavg(
            cached_time_curves(testbed_names(1), model),
            classes,
            total_shards=200,
            shard_size=250,
            num_classes=10,
            alpha=100.0,
            beta=2.0,
        )
        acc_sched = accuracy_of_schedule(
            "cifar10_mini", minavg.shard_counts, classes, fl
        )
        out["accuracy"] = (acc_drop, acc_sched)
        return out

    out = run_once(benchmark, run_all)
    t_dropout, t_lbap, wasted, n_dropped = out["time"]
    acc_drop, acc_sched = out["accuracy"]
    result = ExperimentResult(
        name="ext_dropout",
        description="hard straggler dropout [5] vs data-size scheduling",
        columns=["metric", "dropout", "scheduling"],
    )
    result.add_row(
        metric="round_time_s (testbed2, 60K lenet)",
        dropout=t_dropout,
        scheduling=t_lbap,
    )
    result.add_row(
        metric="training data wasted", dropout=wasted, scheduling=0.0
    )
    result.add_row(
        metric="accuracy (S1, outlier holds class 7)",
        dropout=acc_drop,
        scheduling=acc_sched,
    )
    record(result)
    assert n_dropped >= 1  # the Nexus 6Ps blow the deadline
    assert wasted > 0.2
    assert t_lbap <= t_dropout * 1.1  # scheduling matches dropout's time
    assert acc_sched > acc_drop + 0.02  # and keeps the unique class


def test_sync_vs_async(benchmark):
    """Async applies more updates per unit virtual time but skews toward
    fast devices — the trade-off behind the paper's sync choice."""
    dataset = load_preset("mnist_mini")
    names = ("pixel2", "nexus6", "nexus6p")

    def run_all():
        rng = np.random.default_rng(0)
        users = iid_partition(dataset, 3, rng)
        devices = [make_device(n, jitter=0.0) for n in names]
        model = build_model("logistic", dataset.input_shape, seed=1)
        sync = FederatedSimulation(
            dataset, model, users, devices=devices,
            config=SimulationConfig(lr=0.05, eval_every=4),
        )
        h = sync.run(4)
        horizon = h.total_time_s
        devices2 = [make_device(n, jitter=0.0) for n in names]
        model2 = build_model("logistic", dataset.input_shape, seed=1)
        asim = AsyncFederatedSimulation(
            dataset, model2, users, devices2,
            config=AsyncConfig(lr=0.05),
        )
        asim.run(horizon)
        return {
            "sync": (4 * len(names), sync.final_accuracy(), horizon),
            "async": (
                len(asim.updates),
                asim.final_accuracy(),
                horizon,
            ),
            "async_counts": asim.update_counts().tolist(),
        }

    out = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_async",
        description="sync FedAvg vs async staleness-weighted updates "
        "in the same virtual time",
        columns=["mode", "updates_applied", "accuracy", "horizon_s"],
    )
    for k in ("sync", "async"):
        u, a, t = out[k]
        result.add_row(mode=k, updates_applied=u, accuracy=a, horizon_s=t)
    result.add_note(f"async per-user update counts: {out['async_counts']}")
    record(result)
    counts = out["async_counts"]
    assert counts[0] > counts[2]  # pixel2 outpaces nexus6p
    assert out["async"][1] > 0.5  # still learns
    assert out["sync"][1] > 0.5


def test_decentralized_topologies(benchmark):
    """Gossip FL: denser topologies give tighter consensus at equal
    rounds; all reach useful accuracy without any server."""
    dataset = load_preset("mnist_mini")

    def run_all():
        out = {}
        for kind in ("ring", "random", "complete"):
            rng = np.random.default_rng(0)
            users = iid_partition(dataset, 6, rng)
            graph = make_topology(kind, 6, np.random.default_rng(1))
            model = build_model("logistic", dataset.input_shape, seed=1)
            sim = DecentralizedSimulation(
                dataset, model, users, graph,
                config=DecentralizedConfig(lr=0.05),
            )
            sim.run(6)
            out[kind] = (sim.mean_accuracy(), sim.consensus_distance())
        return out

    out = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_decentralized",
        description="server-less gossip FL across topologies "
        "(6 users, 6 rounds)",
        columns=["topology", "mean_accuracy", "consensus_distance"],
    )
    for k, (a, d) in out.items():
        result.add_row(topology=k, mean_accuracy=a, consensus_distance=d)
    record(result)
    assert all(a > 0.6 for a, _ in out.values())
    assert out["complete"][1] <= out["ring"][1]


def test_energy_aware_scheduling(benchmark):
    """Battery budgets as P2 capacities: a 2% budget caps what each
    device may take, and Fed-MinAvg routes the remainder elsewhere."""
    names = testbed_names(1)
    model = lenet()

    def run_all():
        caps = [
            energy_capacity_shards(
                make_device(n, jitter=0.0),
                model,
                shard_size=500,
                budget_fraction=0.02,
                max_shards=120,
            )
            for n in names
        ]
        curves = cached_time_curves(names, model)
        classes = [tuple(range(10))] * len(names)
        sched = fed_minavg(
            curves,
            classes,
            total_shards=min(sum(caps), 120),
            shard_size=500,
            num_classes=10,
            alpha=0.0,
            capacities=caps,
        )
        return caps, sched.shard_counts.tolist()

    caps, counts = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_energy",
        description="battery-budget (2%) capacities feeding P2",
        columns=["device", "capacity_shards", "scheduled_shards"],
    )
    for n, c, s in zip(names, caps, counts):
        result.add_row(device=n, capacity_shards=c, scheduled_shards=s)
    record(result)
    assert all(s <= c for s, c in zip(counts, caps))
    assert all(c > 0 for c in caps)


def test_no_congestion_assumption(benchmark):
    """Sec. IV-A assumes simultaneous transmissions never congest the
    server. The fair-share model quantifies where that holds: for the
    paper's testbeds (<= 10 devices) even VGG6 pushes stay device-link
    limited on a gigabit server, but a 32-device fleet saturates it and
    communication stops being negligible (Observation 3 inverts)."""
    from repro.network.congestion import congested_round_comm

    def run_all():
        out = []
        for n in (3, 10, 32, 64):
            t = congested_round_comm(
                model_size_mb=65.4, n_participants=n,
                device_mbps=85.0, server_mbps=1000.0,
            )
            # VGG6 testbed-2 compute round ~ 1900 s (Fed-LBAP)
            frac = t / (t + 1900.0)
            out.append((n, t, frac))
        return out

    rows = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_congestion",
        description="VGG6 upload tail vs participants under a 1 Gbps "
        "server (fair-share congestion)",
        columns=["participants", "upload_tail_s", "comm_fraction"],
    )
    for n, t, frac in rows:
        result.add_row(
            participants=n, upload_tail_s=t, comm_fraction=frac
        )
    record(result)
    by_n = {n: t for n, t, _ in rows}
    # the paper's regime: testbed sizes are uncongested
    assert by_n[10] == pytest.approx(by_n[3], rel=0.01)
    # the assumption's boundary: large fleets scale linearly
    assert by_n[64] > 1.8 * by_n[32]

"""Wall-time budget for the whole-program linter.

The single-parse project model keeps `repro lint` linear in tree size,
not rule count; this pins the full-repo run (project graph + all ten
rules, baseline applied) under a 10 second ceiling so the lint gate
stays cheap enough to run on every CI push and locally before every
commit.
"""

import time
from pathlib import Path

from repro.analysis import lint_repo

from ._util import run_once

REPO_ROOT = Path(__file__).resolve().parents[1]

#: hard ceiling for one full-repo lint, in seconds
LINT_BUDGET_S = 10.0


def test_full_repo_lint_under_budget(benchmark):
    start = time.perf_counter()
    report = run_once(benchmark, lint_repo, REPO_ROOT)
    elapsed_s = time.perf_counter() - start

    assert report.files_checked > 50
    assert len(report.rules_run) == 10
    assert elapsed_s < LINT_BUDGET_S, (
        f"full-repo lint took {elapsed_s:.2f}s, budget is "
        f"{LINT_BUDGET_S:.0f}s — did a rule add a re-parse or an "
        "O(files^2) pass?"
    )

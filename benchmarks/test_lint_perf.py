"""Wall-time budget for the whole-program linter.

The single-parse project model keeps `repro lint` linear in tree size,
not rule count — even now that every full-repo run builds per-function
CFGs, solves dataflow for the async rule pack, and resolves
interprocedural taint/purity summaries (cached once per invocation on
the project context) for the determinism pack. This pins the
full-repo run (project graph + all twenty-one rules, baseline applied)
under the shared :data:`repro.analysis.bench.LINT_BUDGET_S` ceiling so
the lint gate stays cheap enough to run on every CI push and locally
before every commit, and checks the committed ``BENCH_lint.json``
(written by ``repro bench lint``) still matches the schema that
:class:`repro.analysis.bench.LintBench` emits.
"""

import json
import time
from pathlib import Path

from repro.analysis import lint_repo
from repro.analysis.bench import LINT_BUDGET_S, LintBench, RuleTiming

from ._util import run_once

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_full_repo_lint_under_budget(benchmark):
    start = time.perf_counter()
    report = run_once(benchmark, lint_repo, REPO_ROOT)
    elapsed_s = time.perf_counter() - start

    assert report.files_checked > 50
    assert len(report.rules_run) == 21
    assert elapsed_s < LINT_BUDGET_S, (
        f"full-repo lint took {elapsed_s:.2f}s, budget is "
        f"{LINT_BUDGET_S:.0f}s — did a rule add a re-parse or an "
        "O(files^2) pass?"
    )


def test_committed_bench_lint_schema():
    """BENCH_lint.json (from `repro bench lint`) matches the
    LintBench/RuleTiming payload shape and the current rule set."""
    payload = json.loads(
        (REPO_ROOT / "BENCH_lint.json").read_text(encoding="utf-8")
    )
    assert payload["schema"] == 1
    assert payload["git_sha"]
    assert payload["budget_s"] == LINT_BUDGET_S
    assert payload["total_ms"] < LINT_BUDGET_S * 1000.0

    rules = payload["rules"]
    assert len(rules) == 21
    for entry in rules:
        timing = RuleTiming(**entry)  # field names match the payload
        assert timing.ms >= 0.0
        assert timing.findings == 0  # the committed repo lints clean

    bench = LintBench(
        files=payload["files"],
        project_graph_ms=payload["project_graph_ms"],
        rules=[RuleTiming(**e) for e in rules],
        total_ms=payload["total_ms"],
    )
    assert bench.to_payload(payload["git_sha"]) == payload

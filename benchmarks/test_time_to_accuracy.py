"""Time-to-accuracy: the end-to-end payoff of data-size scheduling.

The paper reports per-round time (Figs. 5/7) and final accuracy
(Tables III/V) separately; the deployment-relevant metric combines
them — virtual wall-clock time until the global model reaches a target
accuracy. Fed-LBAP's shorter rounds translate directly into earlier
convergence because (Table III) its unbalanced partitions learn just as
well per round.

Also covers two smaller end-to-end extensions:
* per-user link heterogeneity entering the LBAP cost matrix (Eq. 2's
  per-user T_u + T_d): an LTE-attached device gets less VGG6 data;
* governor sensitivity: the Fed-LBAP advantage persists under the
  modern schedutil governor, supporting the paper's claim that the
  approach works "while still using the default governor" whichever
  that is.
"""

import numpy as np

from _util import record, run_once
from repro.core import build_cost_matrix, comm_costs_for, fed_lbap
from repro.data import load_preset, partition_from_sizes
from repro.device import make_device
from repro.experiments.flruns import scale_counts
from repro.experiments.realized import realized_makespan
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.federated import FederatedSimulation, SimulationConfig
from repro.models import MNIST_SHAPE, build_model, lenet, vgg6
from repro.network import make_link


def _time_to_accuracy(schedule_sizes, names, dataset, target, seed=0):
    """Virtual seconds of synchronous FedAvg until test accuracy passes
    ``target`` (devices keep their thermal state across rounds)."""
    sizes = np.asarray(schedule_sizes)
    active = sizes > 0
    rng = np.random.default_rng(seed)
    users = partition_from_sizes(dataset, sizes[active], rng)
    devices = [
        make_device(n, jitter=0.0)
        for n, a in zip(names, active)
        if a
    ]
    model = build_model("logistic", dataset.input_shape, seed=1)
    sim = FederatedSimulation(
        dataset,
        model,
        users,
        devices=devices,
        config=SimulationConfig(lr=0.02, eval_every=1, seed=seed),
    )
    for _ in range(30):
        rec = sim.run_round()
        if rec.accuracy is not None and rec.accuracy >= target:
            return sim.history.total_time_s, rec.round_idx
    return sim.history.total_time_s, -1  # never reached


def test_time_to_accuracy(benchmark):
    """Fed-LBAP reaches the accuracy target in less virtual time than
    Equal, with the same number of rounds or fewer."""
    dataset = load_preset("mnist_mini")
    names = testbed_names(2)
    model = lenet()
    shards, d = 120, 500
    target = 0.94

    def run_all():
        curves = cached_time_curves(names, model)
        cost = build_cost_matrix(curves, shards, d)
        sched, _ = fed_lbap(cost, shards, d)
        # Replay allocation shapes on the mini dataset.
        mini = scale_counts(sched.shard_counts, 40) * 50
        equal = np.full(len(names), 40 // len(names) + 1)[: len(names)]
        equal = scale_counts(equal, 40) * 50
        # Virtual time per round is driven by the full-scale allocation;
        # scale round times by the realized makespans of each policy.
        t_lbap = realized_makespan(sched.samples_per_user(), names, model)
        t_equal = realized_makespan(
            np.full(len(names), shards // len(names)) * d, names, model
        )
        lbap_time, lbap_rounds = _time_to_accuracy(
            mini, names, dataset, target
        )
        eq_time, eq_rounds = _time_to_accuracy(
            equal, names, dataset, target
        )
        # Convert mini round counts into full-scale wall time.
        return {
            "fed-lbap": (lbap_rounds, lbap_rounds * t_lbap),
            "equal": (eq_rounds, eq_rounds * t_equal),
        }

    out = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_time_to_accuracy",
        description=f"virtual time to reach {0.94:.0%} accuracy "
        "(mnist, testbed 2, LeNet rounds)",
        columns=["policy", "rounds", "wall_time_s"],
    )
    for k, (r, t) in out.items():
        result.add_row(policy=k, rounds=r, wall_time_s=t)
    record(result)
    assert out["fed-lbap"][0] > 0 and out["equal"][0] > 0
    # Similar round counts (Table III) but far less wall time (Fig. 5).
    assert out["fed-lbap"][1] < 0.6 * out["equal"][1]


def test_link_heterogeneity_shifts_allocation(benchmark):
    """A device stuck on LTE pays ~50 s per VGG6 round in transfer
    alone; Eq. 2's per-user comm terms make Fed-LBAP shift its data to
    WiFi-attached peers."""
    names = testbed_names(1)
    model = vgg6(input_shape=MNIST_SHAPE)
    # Partial-participation rounds: 6K samples in 100-sample shards, the
    # regime where a 56-s LTE transfer is worth ~5 shards of compute.
    shards, d = 60, 100

    def run_all():
        curves = cached_time_curves(names, model)
        uniform = fed_lbap(
            build_cost_matrix(curves, shards, d), shards, d
        )[0]
        # pixel2 (index 2) drops to LTE; others stay on WiFi
        links = [make_link("wifi"), make_link("wifi"), make_link("lte")]
        comm = comm_costs_for(model, links)
        het = fed_lbap(
            build_cost_matrix(curves, shards, d, comm_costs=comm),
            shards,
            d,
        )[0]
        return (
            uniform.shard_counts.tolist(),
            het.shard_counts.tolist(),
            comm.tolist(),
        )

    uniform, het, comm = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_link_heterogeneity",
        description="Fed-LBAP allocation with per-user comm costs "
        "(VGG6; pixel2 on LTE)",
        columns=["device", "comm_s", "uniform_shards", "lte_shards"],
    )
    for n, c, u, h in zip(names, comm, uniform, het):
        result.add_row(device=n, comm_s=c, uniform_shards=u, lte_shards=h)
    record(result)
    # The LTE device keeps a smaller or equal share; someone else gains.
    assert het[2] <= uniform[2]
    assert sum(het) == sum(uniform) == shards


def test_governor_robustness(benchmark):
    """The Fed-LBAP speedup survives a governor change when the profile
    is built under the governor actually deployed — the framework is
    governor-agnostic, but profiles are governor-specific (a schedule
    built from interactive-governor profiles misfires on powersave,
    where nothing ever throttles)."""
    from repro.device.workload import TrainingWorkload
    from repro.models.flops import model_training_flops
    from repro.profiling import bootstrap_curve

    names = testbed_names(2)
    model = lenet()
    shards, d = 120, 500
    flops = model_training_flops(model)

    def makespan(sizes, governor):
        worst = 0.0
        for n, s in zip(names, sizes):
            if s <= 0:
                continue
            dev = make_device(n, governor=governor, jitter=0.0)
            t = dev.run_workload(
                TrainingWorkload(flops, int(s), 20), record=False
            ).total_time_s
            worst = max(worst, t)
        return worst

    def run_all():
        equal_sizes = np.full(len(names), shards // len(names)) * d
        out = {}
        for gov in ("interactive", "schedutil", "powersave"):
            # Profile under the governor that will actually run.
            curves = [
                bootstrap_curve(
                    make_device(n, governor=gov, jitter=0.0),
                    model,
                    (500, 1500, 3000, 6000, 12000),
                )
                for n in names
            ]
            sched = fed_lbap(
                build_cost_matrix(curves, shards, d), shards, d
            )[0]
            out[gov] = (
                makespan(equal_sizes, gov),
                makespan(sched.samples_per_user(), gov),
            )
        return out

    out = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_governor",
        description="Equal vs Fed-LBAP makespan under different "
        "governors (testbed 2, 60K LeNet)",
        columns=["governor", "equal_s", "fed_lbap_s", "speedup"],
    )
    for gov, (te, tl) in out.items():
        result.add_row(
            governor=gov, equal_s=te, fed_lbap_s=tl, speedup=te / tl
        )
    record(result)
    for gov, (te, tl) in out.items():
        assert tl < te, gov  # the advantage persists under every policy

"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Fed-LBAP's threshold search vs the classic exact LBAP solver and the
   brute-force oracle (same optimum, different asymptotics).
2. Linear vs quadratic step-2 profiling on a thermally-throttled device.
3. Thermal throttling on/off: where Fed-LBAP's advantage comes from.
4. Eq.-(6) discount semantics (disjoint / strict / coverage / unique).
5. Greedy Fed-MinAvg vs random placement under the same P2 objective.
"""

import dataclasses

import numpy as np
import pytest

from _util import record, run_once
from repro.core import (
    brute_force_makespan,
    equal_schedule,
    evaluate_makespan,
    fed_lbap,
    fed_minavg,
    random_schedule,
    solve_lbap_threshold_exact,
)
from repro.core.accuracy_cost import AccuracyCostTracker
from repro.device.device import MobileDevice
from repro.device.registry import build_spec
from repro.device.workload import TrainingWorkload
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import scenario_classes
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.models import MNIST_SHAPE, lenet, model_training_flops
from repro.profiling import bootstrap_curve
from repro.device.registry import make_device


def monotone_cost(rng, n, s):
    return np.cumsum(rng.uniform(0.1, 1.0, size=(n, s)), axis=1)


class TestLbapSolverAblation:
    def test_fed_lbap_matches_oracles(self, benchmark):
        """Same optimum as brute force on partition instances and as the
        Hopcroft-Karp LBAP on square assignment instances."""
        rng = np.random.default_rng(0)
        cost = monotone_cost(rng, 3, 6)

        def run_all():
            _, c_fed = fed_lbap(cost, 8)
            _, c_brute = brute_force_makespan(cost, 8)
            return c_fed, c_brute

        c_fed, c_brute = run_once(benchmark, run_all)
        assert c_fed == pytest.approx(c_brute)

    def test_square_instance_vs_exact_lbap(self, benchmark):
        """On the classic square LBAP (each user exactly one task of one
        shard) Fed-LBAP's relaxation can only do better or equal: it may
        assign several cheap tasks to one user."""
        rng = np.random.default_rng(1)
        cost = np.sort(rng.uniform(0, 10, size=(5, 5)), axis=1)

        def run_all():
            _, bottleneck_exact = solve_lbap_threshold_exact(cost)
            _, c_fed = fed_lbap(cost, 5)
            return bottleneck_exact, c_fed

        exact, fed = run_once(benchmark, run_all)
        assert fed <= exact + 1e-9

    def test_scaling_microbenchmark(self, benchmark):
        """Fed-LBAP at production scale (n=50 users, s=600 shards) runs
        in milliseconds — the O(ns log ns) claim in practice."""
        rng = np.random.default_rng(2)
        cost = monotone_cost(rng, 50, 600)
        sched, _ = benchmark(fed_lbap, cost, 600)
        assert sched.total_shards == 600


class TestProfilerAblation:
    def test_quadratic_step2_on_throttled_device(self, benchmark):
        """A quadratic time-vs-data fit halves the prediction error on
        the Nexus 6P, whose true curve is convex (cold -> hot)."""
        model = lenet()
        flops = model_training_flops(model)
        sizes = (500, 1500, 3000, 6000, 9000)

        def run_all():
            device = make_device("nexus6p", jitter=0.0)
            lin = bootstrap_curve(device, model, sizes)
            quad = bootstrap_curve(device, model, sizes, quadratic=True)
            errors = {"linear": [], "quadratic": []}
            for n in (1000, 4500, 7500):
                device.reset()
                truth = device.run_workload(
                    TrainingWorkload(flops, n, 20), record=False
                ).total_time_s
                errors["linear"].append(abs(lin(n) - truth) / truth)
                errors["quadratic"].append(abs(quad(n) - truth) / truth)
            return {k: float(np.mean(v)) for k, v in errors.items()}

        errors = run_once(benchmark, run_all)
        result = ExperimentResult(
            name="ablation_profiler",
            description="linear vs quadratic step-2 fit on nexus6p",
            columns=["fit", "mean_rel_error"],
        )
        for k, v in errors.items():
            result.add_row(fit=k, mean_rel_error=v)
        record(result)
        assert errors["quadratic"] < errors["linear"]


class TestThermalAblation:
    def test_throttling_drives_the_straggler_gap(self, benchmark):
        """With trip points removed, the Nexus 6P epoch time collapses
        back to near-linear, erasing most of Equal's makespan penalty —
        thermal behaviour, not raw clocks, creates the stragglers."""
        model = lenet()
        flops = model_training_flops(model)

        def epoch(spec, n):
            dev = MobileDevice(spec, jitter=0.0)
            return dev.run_workload(
                TrainingWorkload(flops, n, 20), record=False
            ).total_time_s

        def run_all():
            spec = build_spec("nexus6p")
            no_thermal = dataclasses.replace(
                spec,
                thermal=dataclasses.replace(spec.thermal, trip_points=()),
            )
            return {
                "throttled_10k": epoch(spec, 10_000),
                "unthrottled_10k": epoch(no_thermal, 10_000),
            }

        times = run_once(benchmark, run_all)
        result = ExperimentResult(
            name="ablation_thermal",
            description="nexus6p 10K-sample LeNet epoch with and "
            "without thermal trips",
            columns=["variant", "time_s"],
        )
        for k, v in times.items():
            result.add_row(variant=k, time_s=v)
        record(result)
        assert times["throttled_10k"] > 2.0 * times["unthrottled_10k"]


class TestSemanticsAblation:
    def test_eq6_semantics_change_outlier_inclusion(self, benchmark):
        """On S(I) only the 'disjoint' reading recovers the unique-class
        outlier at beta=2; the printed 'strict' condition cannot (the
        outlier shares class 8 with Mate10)."""
        classes = scenario_classes("S1")
        names = testbed_names(1)
        curves = cached_time_curves(names, lenet())

        def run_all():
            out = {}
            for sem in ("disjoint", "strict", "coverage", "unique"):
                sched = fed_minavg(
                    curves,
                    classes,
                    total_shards=500,
                    shard_size=100,
                    num_classes=10,
                    alpha=100.0,
                    beta=2.0,
                    semantics=sem,
                )
                out[sem] = (
                    int(sched.shard_counts[2]),
                    float(sched.meta["coverage"]),
                )
            return out

        out = run_once(benchmark, run_all)
        result = ExperimentResult(
            name="ablation_semantics",
            description="Eq.(6) discount semantics on S(I), "
            "alpha=100 beta=2",
            columns=["semantics", "outlier_shards", "coverage"],
        )
        for k, (shards, cov) in out.items():
            result.add_row(semantics=k, outlier_shards=shards, coverage=cov)
        record(result)
        assert out["disjoint"][1] == 1.0  # full class coverage
        assert out["strict"][0] <= out["disjoint"][0]


class TestGreedyAblation:
    def test_minavg_beats_random_on_p2_objective(self, benchmark):
        """Under the same cost model, the greedy allocation's P2
        objective (sum of times + accuracy costs of selected users) is
        lower than random/equal placements."""
        classes = scenario_classes("S2")
        names = testbed_names(2)
        curves = cached_time_curves(names, lenet())
        alpha, total, d = 500.0, 200, 250

        def objective(counts):
            tracker = AccuracyCostTracker(classes, 10, alpha, 0.0)
            val = 0.0
            for j, k in enumerate(counts):
                if k > 0:
                    val += curves[j](float(k * d))
                    val += tracker.scaled_cost(j)
                    tracker.record_assignment(j, int(k))
            return val

        def run_all():
            greedy = fed_minavg(
                curves, classes, total, d, 10, alpha=alpha
            )
            rng = np.random.default_rng(0)
            rand_vals = [
                objective(
                    random_schedule(len(names), total, d, rng).shard_counts
                )
                for _ in range(10)
            ]
            return {
                "greedy": objective(greedy.shard_counts),
                "random_mean": float(np.mean(rand_vals)),
                "equal": objective(
                    equal_schedule(len(names), total, d).shard_counts
                ),
            }

        vals = run_once(benchmark, run_all)
        result = ExperimentResult(
            name="ablation_greedy",
            description="P2 objective: Fed-MinAvg vs random/equal "
            "placement (S2, alpha=500)",
            columns=["scheduler", "objective"],
        )
        for k, v in vals.items():
            result.add_row(scheduler=k, objective=v)
        record(result)
        assert vals["greedy"] < vals["random_mean"]
        assert vals["greedy"] < vals["equal"]


class TestMinavgScaling:
    def test_minavg_microbenchmark(self, benchmark):
        """Fed-MinAvg at 600 shards x 10 users (full-MNIST scale)."""
        rng = np.random.default_rng(3)
        curves = [
            lambda x, s=s: s * x for s in rng.uniform(0.005, 0.05, 10)
        ]
        classes = [
            tuple(int(c) for c in rng.choice(10, size=4, replace=False))
            for _ in range(10)
        ]
        sched = benchmark(
            fed_minavg, curves, classes, 600, 100, 10, 200.0, 2.0
        )
        assert sched.total_shards == 600

    def test_minavg_affine_fast_path(self, benchmark):
        """The vectorised fast path on the same instance — compare the
        two benchmark rows for the speedup (typically 20-50x)."""
        from repro.core.minavg_fast import fed_minavg_affine

        rng = np.random.default_rng(3)
        slopes = rng.uniform(0.005, 0.05, 10)
        classes = [
            tuple(int(c) for c in rng.choice(10, size=4, replace=False))
            for _ in range(10)
        ]
        sched = benchmark(
            fed_minavg_affine,
            np.zeros(10),
            slopes,
            classes,
            600,
            100,
            10,
            200.0,
            2.0,
        )
        assert sched.total_shards == 600
        # identical output to the reference on this instance
        curves = [lambda x, s=s: s * x for s in slopes]
        ref = fed_minavg(curves, classes, 600, 100, 10, 200.0, 2.0)
        np.testing.assert_array_equal(
            sched.shard_counts, ref.shard_counts
        )

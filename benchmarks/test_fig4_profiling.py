"""Fig. 4 — two-step performance profiling."""

from _util import record, run_once
from repro.experiments import fig4


def test_fig4_two_step_profiler(benchmark):
    result = run_once(benchmark, fig4.run)
    record(result)

    r2s = [
        r["value"] for r in result.rows if str(r["quantity"]).startswith("r2")
    ]
    # Fig. 4(a): time is near-linear in (conv, dense) parameters.
    assert all(v > 0.95 for v in r2s)
    # Fig. 4(b): the step-2 curve tracks direct measurement with a small
    # gap for the held-out LeNet architecture.
    err = [
        r["value"] for r in result.rows if r["quantity"] == "mean_rel_error"
    ][0]
    assert err < 0.1


def test_fig4_profiler_on_throttling_device(benchmark):
    """Same pipeline on the Nexus 6P: fits remain usable (the paper
    notes 'a small gap' — throttling makes this the worst case)."""
    cfg = fig4.Fig4Config(device="nexus6p")
    result = run_once(benchmark, fig4.run, cfg)
    record_name = result.name + "_nexus6p"
    result.name = record_name
    record(result)
    err = [
        r["value"] for r in result.rows if r["quantity"] == "mean_rel_error"
    ][0]
    assert err < 0.5

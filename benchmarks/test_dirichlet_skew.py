"""Dirichlet label skew: the FL-literature-standard non-IID model,
applied to the paper's scheduling question.

The paper generates non-IIDness by class subsets (n-class); the wider
FL literature uses Dirichlet(conc) label skew. This benchmark bridges
the two: accuracy degrades as concentration falls (matching Fig. 3a's
severity axis), and Fed-MinAvg retains its makespan advantage when the
user class sets come from Dirichlet draws instead of n-class draws.
"""

import numpy as np

from _util import record, run_once
from repro.core.baselines import equal_schedule
from repro.data import dirichlet_noniid_partition, load_preset
from repro.experiments.flruns import FLRunConfig, train_partition
from repro.experiments.minavg_runs import best_alpha_schedule
from repro.experiments.realized import realized_makespan
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbeds import testbed_names
from repro.models import lenet


def test_dirichlet_severity_curve(benchmark):
    """Accuracy vs concentration: the Dirichlet analogue of Fig. 3(a)."""
    fl = FLRunConfig(rounds=10)

    def run_all():
        out = []
        for conc in (0.05, 0.2, 1.0, 10.0):
            accs = []
            for rep in range(2):
                dataset = load_preset("cifar10_mini")
                rng = np.random.default_rng(17 + 31 * rep)
                users = dirichlet_noniid_partition(
                    dataset, 8, conc, rng, min_size=10
                )
                accs.append(train_partition(dataset, users, fl))
            mean_classes = float(
                np.mean([u.num_classes() for u in users])
            )
            out.append((conc, mean_classes, float(np.mean(accs))))
        return out

    rows = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_dirichlet",
        description="accuracy vs Dirichlet concentration "
        "(cifar10_mini, 8 users)",
        columns=["concentration", "mean_classes_per_user", "accuracy"],
    )
    for conc, k, acc in rows:
        result.add_row(
            concentration=conc, mean_classes_per_user=k, accuracy=acc
        )
    record(result)
    accs = [r[2] for r in rows]
    # severity axis: more concentration -> more classes -> more accuracy
    assert accs[-1] > accs[0] + 0.03
    ks = [r[1] for r in rows]
    assert ks[-1] > ks[0]


def test_minavg_under_dirichlet_classes(benchmark):
    """Fed-MinAvg keeps its makespan win when user class sets come from
    Dirichlet draws rather than the paper's n-class construction."""
    names = testbed_names(2)
    model = lenet()
    shards, d = 120, 500

    def run_all():
        dataset = load_preset("mnist_mini")
        rng = np.random.default_rng(5)
        users = dirichlet_noniid_partition(
            dataset, len(names), 0.3, rng, min_size=10
        )
        classes = [u.classes for u in users]
        sched, _ = best_alpha_schedule(
            2, classes, "mnist", "lenet",
            alphas=(100.0, 1000.0), beta=0.0, shard_size=d,
        )
        t_minavg = realized_makespan(
            sched.samples_per_user(), names, model
        )
        equal = equal_schedule(len(names), shards, d)
        t_equal = realized_makespan(
            equal.samples_per_user(), names, model
        )
        return t_minavg, t_equal, [len(c) for c in classes]

    t_minavg, t_equal, class_counts = run_once(benchmark, run_all)
    result = ExperimentResult(
        name="ext_dirichlet_sched",
        description="Fed-MinAvg vs Equal under Dirichlet(0.3) class "
        "sets (testbed 2, 60K LeNet)",
        columns=["scheduler", "makespan_s"],
    )
    result.add_row(scheduler="equal", makespan_s=t_equal)
    result.add_row(scheduler="fed-minavg", makespan_s=t_minavg)
    result.add_note(f"classes per user: {class_counts}")
    record(result)
    assert t_minavg < t_equal

"""Shared helpers for the benchmark harness.

Each benchmark reproduces one paper table/figure: it runs the experiment
once under pytest-benchmark timing, prints the paper-style rows, and
archives them under ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a benchmark run.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(result) -> None:
    """Print and archive an ExperimentResult."""
    text = result.to_table()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are seconds-long deterministic simulations; repeated
    rounds would only burn time without adding information.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)

"""Engine overhead micro-benchmark.

The event-driven ``RoundEngine`` replaced the seed's hand-rolled round
loop. This benchmark pins the cost of that indirection (EventBus
emissions, strategy/topology objects, history plumbing): a 20-user
timing-only round sequence must run within 5% of a bare loop that
calls the device/link substrates directly, exactly as the pre-engine
``FederatedSimulation`` did.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_engine_overhead.py -s``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticConfig, make_dataset
from repro.device.registry import make_device
from repro.device.workload import TrainingWorkload
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic
from repro.models.flops import model_training_flops

RESULTS_DIR = Path(__file__).parent / "results"

N_USERS = 20
N_ROUNDS = 5
REPEATS = 5
BUDGET = 0.05  # relative overhead ceiling

DEVICE_NAMES = ("pixel2", "mate10", "nexus6p", "pixel2", "nexus6")


def _dataset():
    return make_dataset(
        SyntheticConfig(
            name="bench",
            shape=(1, 8, 8),
            num_classes=10,
            train_size=40_000,
            test_size=100,
            noise=1.0,
            seed=7,
        )
    )


def _fleet():
    return [
        make_device(DEVICE_NAMES[j % len(DEVICE_NAMES)], jitter=0.0)
        for j in range(N_USERS)
    ]


def _seed_loop_rounds(dataset, model, users, devices, n_rounds,
                      aggregation_s=1.0):
    """The pre-engine timing loop, verbatim: dispatch every data-holding
    client, barrier on the straggler, idle the rest, advance the clock."""
    flops = model_training_flops(model)
    clock_s = 0.0
    makespans = []
    for _ in range(n_rounds):
        eligible = [j for j, u in enumerate(users) if u.size > 0]
        times = np.zeros(len(users))
        for j in eligible:
            workload = TrainingWorkload(
                flops_per_sample=flops,
                n_samples=users[j].size,
                batch_size=20,
                epochs=1,
                model_name=model.name,
            )
            times[j] = devices[j].run_workload(
                workload, record=False
            ).total_time_s
        makespan = float(times[eligible].max())
        for j, user in enumerate(users):
            wait = makespan - times[j] + aggregation_s
            if user.size > 0 and wait > 0:
                devices[j].idle(wait)
        clock_s += makespan
        makespans.append(makespan)
    return makespans


def _time_seed(dataset, users):
    model = logistic(input_shape=dataset.input_shape, seed=1)
    devices = _fleet()
    t0 = time.perf_counter()
    makespans = _seed_loop_rounds(dataset, model, users, devices, N_ROUNDS)
    return time.perf_counter() - t0, makespans


def _time_engine(dataset, users):
    model = logistic(input_shape=dataset.input_shape, seed=1)
    sim = FederatedSimulation(
        dataset, model, users, devices=_fleet(),
        config=SimulationConfig(),
    )
    t0 = time.perf_counter()
    history = sim.run(N_ROUNDS, train=False)
    return time.perf_counter() - t0, history.makespans()


def test_engine_overhead_under_budget():
    dataset = _dataset()
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, N_USERS, rng)

    seed_times, engine_times = [], []
    seed_spans = engine_spans = None
    for _ in range(REPEATS):
        t, seed_spans = _time_seed(dataset, users)
        seed_times.append(t)
        t, engine_spans = _time_engine(dataset, users)
        engine_times.append(t)

    # identical physics: both loops drive the same device simulations
    np.testing.assert_allclose(engine_spans, seed_spans)

    seed_best = min(seed_times)
    engine_best = min(engine_times)
    overhead = (engine_best - seed_best) / seed_best

    lines = [
        "== engine_overhead: event-driven RoundEngine vs seed-style loop",
        f"{N_USERS} users, {N_ROUNDS} timing-only rounds, "
        f"best of {REPEATS} repeats",
        f"seed loop     {seed_best * 1000:8.1f} ms",
        f"round engine  {engine_best * 1000:8.1f} ms",
        f"overhead      {overhead * 100:+8.2f} %  (budget {BUDGET:.0%})",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "engine_overhead.txt").write_text(text + "\n")

    assert overhead < BUDGET, (
        f"engine overhead {overhead:.1%} exceeds {BUDGET:.0%} budget"
    )


def _time_engine_with_obs(dataset, users):
    from repro.obs import ObsRecorder

    model = logistic(input_shape=dataset.input_shape, seed=1)
    sim = FederatedSimulation(
        dataset, model, users, devices=_fleet(),
        config=SimulationConfig(),
    )
    recorder = ObsRecorder(trace=True)
    sim.events.subscribe(recorder)
    t0 = time.perf_counter()
    history = sim.run(N_ROUNDS, train=False)
    elapsed = time.perf_counter() - t0
    recorder.finish_spans()
    assert recorder.n_events > 0
    return elapsed, history.makespans()


def test_obs_recorder_overhead_under_budget():
    """A full ObsRecorder (metrics + span tracing + energy ledger)
    subscribed to the bus must stay within 5% of the bare engine."""
    dataset = _dataset()
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, N_USERS, rng)

    bare_times, obs_times = [], []
    bare_spans = obs_spans = None
    for _ in range(REPEATS):
        t, bare_spans = _time_engine(dataset, users)
        bare_times.append(t)
        t, obs_spans = _time_engine_with_obs(dataset, users)
        obs_times.append(t)

    # observation must not perturb the physics
    np.testing.assert_allclose(obs_spans, bare_spans)

    bare_best = min(bare_times)
    obs_best = min(obs_times)
    overhead = (obs_best - bare_best) / bare_best

    lines = [
        "== obs_overhead: engine + ObsRecorder vs bare engine",
        f"{N_USERS} users, {N_ROUNDS} timing-only rounds, "
        f"best of {REPEATS} repeats, metrics + tracing on",
        f"bare engine     {bare_best * 1000:8.1f} ms",
        f"with recorder   {obs_best * 1000:8.1f} ms",
        f"overhead        {overhead * 100:+8.2f} %  (budget {BUDGET:.0%})",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.txt").write_text(text + "\n")

    assert overhead < BUDGET, (
        f"obs overhead {overhead:.1%} exceeds {BUDGET:.0%} budget"
    )

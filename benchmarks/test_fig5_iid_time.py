"""Fig. 5 — computation time per global update, IID data.

The headline result: Fed-LBAP vs Proportional/Random/Equal across all
(testbed, dataset, model) combinations.
"""

import numpy as np

from _util import record, run_once
from repro.experiments import fig5


def test_fig5_iid_makespan_grid(benchmark):
    result = run_once(
        benchmark, fig5.run, fig5.Fig5Config(random_repeats=3)
    )
    record(result)

    # Fed-LBAP wins every cell.
    for row in result.rows:
        best = min(row["proportional"], row["random"], row["equal"])
        assert row["fed-lbap"] <= best, row

    # Largest gains on testbed 2 (worst-case Nexus6P stragglers),
    # especially for VGG6 where the sustained-load cliff engages.
    speedups = {
        (r["dataset"], r["model"], r["testbed"]): r["speedup"]
        for r in result.rows
    }
    assert speedups[("mnist", "vgg6", 2)] > 3.0
    vs_equal = {
        (r["dataset"], r["model"], r["testbed"]): r["equal"] / r["fed-lbap"]
        for r in result.rows
    }
    assert vs_equal[("mnist", "vgg6", 2)] > 5.0

    # Fed-LBAP exploits added devices: time falls from testbed 1 -> 3.
    for ds in ("mnist", "cifar10"):
        for model in ("lenet", "vgg6"):
            t1 = [
                r["fed-lbap"]
                for r in result.rows
                if r["dataset"] == ds
                and r["model"] == model
                and r["testbed"] == 1
            ][0]
            t3 = [
                r["fed-lbap"]
                for r in result.rows
                if r["dataset"] == ds
                and r["model"] == model
                and r["testbed"] == 3
            ][0]
            assert t3 < t1, (ds, model)

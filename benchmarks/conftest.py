"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Make the sibling _util module importable regardless of rootdir layout.
sys.path.insert(0, str(Path(__file__).parent))

"""Fig. 7 — computation time per global update, non-IID data."""

import numpy as np

from _util import record, run_once
from repro.experiments import fig7


def test_fig7_noniid_makespan_grid(benchmark):
    result = run_once(
        benchmark, fig7.run, fig7.Fig7Config(permutations=2)
    )
    record(result)

    # Fed-MinAvg keeps an overall speedup despite the non-IID
    # constraints (paper: 1.3-8x depending on testbed/dataset).
    for row in result.rows:
        assert row["speedup"] > 1.0, row

    speedups = {
        (r["dataset"], r["model"], r["testbed"]): r["speedup"]
        for r in result.rows
    }
    # Straggler testbed 2 shows the biggest LeNet gains.
    assert speedups[("mnist", "lenet", 2)] > speedups[("mnist", "lenet", 1)]
    # Mean speedup across the grid is comfortably above 1.
    assert float(np.mean(list(speedups.values()))) > 1.3

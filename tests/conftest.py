"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, make_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, quick-to-train dataset shared across tests."""
    return make_dataset(
        SyntheticConfig(
            name="tiny",
            shape=(1, 8, 8),
            num_classes=10,
            train_size=600,
            test_size=200,
            noise=1.0,
            seed=42,
        )
    )


@pytest.fixture(scope="session")
def tiny_rgb_dataset():
    """A small 3-channel dataset for conv tests."""
    return make_dataset(
        SyntheticConfig(
            name="tiny_rgb",
            shape=(3, 8, 8),
            num_classes=10,
            train_size=400,
            test_size=150,
            noise=2.0,
            seed=43,
        )
    )

"""CLI tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 810" in out
        assert "testbeds" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_trace_unknown_device(self, capsys):
        assert main(["trace", "iphone"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_run_archives_results(self, tmp_path, capsys):
        assert (
            main(["run", "table4", "--out", str(tmp_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "table4" in out
        assert (tmp_path / "table4.txt").exists()

    def test_trace_produces_plots(self, capsys):
        assert (
            main(
                ["trace", "pixel2", "--model", "lenet", "--samples", "600"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "die temperature" in out
        assert "per-batch training time" in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table2", "table3", "table4", "table5",
        }
        assert set(EXPERIMENTS) == expected

    def test_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig5.txt").write_text("== fig5: demo\nrow\n")
        (results / "ablation_x.txt").write_text("== ablation_x: demo\n")
        out_file = tmp_path / "report.txt"
        assert (
            main(
                [
                    "report",
                    "--results",
                    str(results),
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        text = out_file.read_text()
        assert "REPRODUCTION REPORT" in text
        # paper artifact ordered before the ablation
        assert text.index("fig5") < text.index("ablation_x")

    def test_report_missing_dir(self, tmp_path, capsys):
        assert (
            main(["report", "--results", str(tmp_path / "nope")]) == 2
        )

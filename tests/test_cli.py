"""CLI tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 810" in out
        assert "testbeds" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_trace_unknown_device(self, capsys):
        assert main(["trace", "iphone"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_run_archives_results(self, tmp_path, capsys):
        assert (
            main(["run", "table4", "--out", str(tmp_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "table4" in out
        assert (tmp_path / "table4.txt").exists()

    def test_trace_produces_plots(self, capsys):
        assert (
            main(
                ["trace", "pixel2", "--model", "lenet", "--samples", "600"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "die temperature" in out
        assert "per-batch training time" in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table2", "table3", "table4", "table5",
        }
        assert set(EXPERIMENTS) == expected

    def test_report_command(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig5.txt").write_text("== fig5: demo\nrow\n")
        (results / "ablation_x.txt").write_text("== ablation_x: demo\n")
        out_file = tmp_path / "report.txt"
        assert (
            main(
                [
                    "report",
                    "--results",
                    str(results),
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        text = out_file.read_text()
        assert "REPRODUCTION REPORT" in text
        # paper artifact ordered before the ablation
        assert text.index("fig5") < text.index("ablation_x")

    def test_report_missing_dir(self, tmp_path, capsys):
        assert (
            main(["report", "--results", str(tmp_path / "nope")]) == 2
        )


class TestTelemetryFlag:
    @pytest.fixture()
    def stub_experiment(self, tiny_dataset, monkeypatch):
        """A fast fake experiment that drives a real FederatedSimulation,
        so --telemetry exercises the genuine global-bus wiring."""
        import numpy as np

        import repro.cli as cli
        from repro.data.partition import iid_partition
        from repro.device.registry import make_device
        from repro.experiments.runner import ExperimentResult
        from repro.federated.simulation import FederatedSimulation
        from repro.models import logistic

        class _Stub:
            @staticmethod
            def run():
                rng = np.random.default_rng(0)
                users = iid_partition(tiny_dataset, 2, rng)
                devices = [
                    make_device("pixel2", jitter=0.0) for _ in range(2)
                ]
                model = logistic(
                    input_shape=tiny_dataset.input_shape, seed=1
                )
                sim = FederatedSimulation(
                    tiny_dataset, model, users, devices=devices
                )
                sim.run(2, train=False)
                result = ExperimentResult(
                    name="stub",
                    description="tiny event-stream fixture",
                    columns=["rounds"],
                )
                result.add_row(rounds=2)
                return result

        monkeypatch.setitem(cli.EXPERIMENTS, "stub", _Stub)
        return _Stub

    def test_run_with_telemetry_writes_jsonl(
        self, stub_experiment, tmp_path, capsys
    ):
        import json

        path = tmp_path / "out.jsonl"
        assert main(["run", "stub", "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "note: telemetry:" in out
        assert "events ->" in out

        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds.count("round_completed") == 2
        assert kinds.count("client_dispatched") == 4

    def test_run_without_telemetry_writes_nothing(
        self, stub_experiment, tmp_path, capsys
    ):
        assert main(["run", "stub"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert list(tmp_path.iterdir()) == []


class TestSchedCommands:
    def test_sched_list(self, capsys):
        assert main(["sched", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fed_lbap", "fed_minavg", "olar", "min_energy",
                     "equal", "random", "proportional"):
            assert name in out

    def test_sched_compare_runs_all_on_testbed_a(self, capsys):
        """Acceptance: `repro sched compare --testbed A` prints a
        makespan/energy row for every registered scheduler."""
        assert (
            main(
                [
                    "sched", "compare",
                    "--testbed", "A",
                    "--samples", "6000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "makespan_s" in out and "energy_j" in out
        from repro.sched import available_schedulers

        for name in available_schedulers():
            assert name in out
        assert "error:" not in out

    def test_sched_compare_scheduler_subset_and_device_testbed(
        self, capsys
    ):
        assert (
            main(
                [
                    "sched", "compare",
                    "--testbed", "nexus6,pixel2",
                    "--schedulers", "olar,equal",
                    "--samples", "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "olar" in out and "equal" in out
        assert "fed_minavg" not in out
        assert "2 devices" in out

    def test_sched_compare_writes_telemetry(self, tmp_path, capsys):
        import json

        path = tmp_path / "sched.jsonl"
        assert (
            main(
                [
                    "sched", "compare",
                    "--testbed", "1",
                    "--schedulers", "olar,fed_lbap",
                    "--samples", "6000",
                    "--telemetry", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry" in out
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == [
            "telemetry_meta",
            "schedule_computed",
            "schedule_computed",
        ]
        assert events[1]["scheduler"] == "olar"
        assert events[1]["predicted_makespan_s"] > 0

    def test_sched_compare_unknown_testbed(self, capsys):
        assert main(["sched", "compare", "--testbed", "z9"]) == 2
        assert "unknown devices" in capsys.readouterr().err

    def test_sched_compare_unknown_scheduler(self, capsys):
        assert (
            main(
                [
                    "sched", "compare",
                    "--schedulers", "sjf",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "unknown schedulers" in err
        assert "olar" in err  # lists what IS available

    def test_sched_compare_failure_still_flushes_telemetry(
        self, tmp_path, capsys, monkeypatch
    ):
        """A run dying mid-comparison exits 1 with a clean message and
        leaves a fully parseable (non-truncated) JSONL behind."""
        import json

        import repro.sched as sched_mod

        real_compare = sched_mod.compare

        def exploding_compare(problem, names, bus=None, **kw):
            real_compare(problem, ["olar"], bus=bus)
            raise RuntimeError("solver crashed mid-run")

        monkeypatch.setattr(sched_mod, "compare", exploding_compare)
        path = tmp_path / "crash.jsonl"
        status = main(
            [
                "sched", "compare",
                "--testbed", "1",
                "--samples", "6000",
                "--telemetry", str(path),
            ]
        )
        assert status == 1
        captured = capsys.readouterr()
        assert "error: RuntimeError: solver crashed mid-run" in captured.err
        assert "telemetry" in captured.out
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert len(events) == 2
        assert events[0]["event"] == "telemetry_meta"
        assert events[1]["event"] == "schedule_computed"


class TestObsCommands:
    @pytest.fixture()
    def run_jsonl(self, tmp_path):
        """A telemetry capture from the shared synthetic stream."""
        import json

        from tests.obs.conftest import SYNTHETIC_EVENTS

        path = tmp_path / "run.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"event": "telemetry_meta", "schema_version": 2}
                )
                + "\n"
            )
            for event in SYNTHETIC_EVENTS:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return path

    def test_summary(self, run_jsonl, capsys):
        assert main(["obs", "summary", str(run_jsonl)]) == 0
        out = capsys.readouterr().out
        assert "== run ==" in out
        assert "rounds: 2" in out
        assert "== clients ==" in out
        assert "olar" in out

    def test_summary_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "summary", str(missing)]) == 2
        assert "no telemetry file" in capsys.readouterr().err

    def test_summary_warns_on_corrupt_lines(self, run_jsonl, capsys):
        with run_jsonl.open("a", encoding="utf-8") as fh:
            fh.write('{"torn')
        assert main(["obs", "summary", str(run_jsonl)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt" in captured.err

    def test_export_prom(self, run_jsonl, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "obs", "export-prom", str(run_jsonl),
                    "--out", str(out_path),
                ]
            )
            == 0
        )
        text = out_path.read_text()
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_rounds_total 2" in text
        assert 'schema_version="2"' in text
        # without --out the exposition goes to stdout
        capsys.readouterr()
        assert main(["obs", "export-prom", str(run_jsonl)]) == 0
        assert "repro_rounds_total 2" in capsys.readouterr().out

    def test_export_trace(self, run_jsonl, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "obs", "export-trace", str(run_jsonl),
                    "--out", str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "round 1" in names
        assert "client 0" in names

    def test_run_with_obs_flag_prints_dashboard(
        self, tmp_path, capsys, monkeypatch, tiny_dataset
    ):
        """--obs alone (no --telemetry) captures and summarises."""
        import numpy as np

        import repro.cli as cli
        from repro.data.partition import iid_partition
        from repro.device.registry import make_device
        from repro.experiments.runner import ExperimentResult
        from repro.federated.simulation import FederatedSimulation
        from repro.models import logistic

        class _Stub:
            @staticmethod
            def run():
                rng = np.random.default_rng(0)
                users = iid_partition(tiny_dataset, 2, rng)
                devices = [
                    make_device("pixel2", jitter=0.0) for _ in range(2)
                ]
                model = logistic(
                    input_shape=tiny_dataset.input_shape, seed=1
                )
                sim = FederatedSimulation(
                    tiny_dataset, model, users, devices=devices
                )
                sim.run(2, train=False)
                result = ExperimentResult(
                    name="stub",
                    description="tiny event-stream fixture",
                    columns=["rounds"],
                )
                result.add_row(rounds=2)
                return result

        monkeypatch.setitem(cli.EXPERIMENTS, "stub", _Stub)
        assert main(["run", "stub", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "== run ==" in out
        assert "rounds: 2" in out
        assert list(tmp_path.iterdir()) == []  # no file side effects


class TestFleetCommands:
    def test_sched_compare_fleet_size(self, capsys):
        """`--fleet-size` swaps the testbed for a synthetic columnar
        fleet and reports the vectorized matrix-build time."""
        assert (
            main(
                [
                    "sched", "compare",
                    "--fleet-size", "200",
                    "--schedulers", "proportional,equal",
                    "--samples", "20000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthetic fleet: 200 devices" in out
        assert "cost matrices built in" in out
        assert "proportional" in out and "equal" in out
        # the n column reports the instance's cohort size
        assert "  200  " in out or " 200 " in out

    def test_sched_compare_fleet_size_draws_cohort(self, capsys):
        """A large fleet is never scheduled whole: the instance is a
        seeded uniform cohort (``--cohort``, default 512), so the cost
        matrix stays O(cohort x shards) regardless of population."""
        assert (
            main(
                [
                    "sched", "compare",
                    "--fleet-size", "5000",
                    "--cohort", "32",
                    "--schedulers", "proportional",
                    "--samples", "20000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthetic fleet: 5000 devices" in out
        assert "cohort 32" in out
        assert "  32  " in out or " 32 " in out

    def test_bench_fleet_smoke(self, tmp_path, capsys):
        """The CI smoke: one small n, JSON out with sha + timings."""
        import json

        out_path = tmp_path / "BENCH_fleet.json"
        assert (
            main(
                [
                    "bench", "fleet",
                    "--ns", "64,128",
                    "--rounds", "2",
                    "--cohort", "16",
                    "--schedulers", "proportional",
                    "--out", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "rounds/s" in out
        assert "swept 2 cells" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == 1
        assert doc["git_sha"]
        assert [r["n"] for r in doc["results"]] == [64, 128]
        for row in doc["results"]:
            assert row["scheduler"] == "proportional"
            assert row["build_ms"] >= 0
            assert row["solve_ms"] >= 0
            assert row["rounds_per_sec"] > 0

    def test_bench_fleet_rejects_bad_ns(self, capsys):
        assert main(["bench", "fleet", "--ns", "ten"]) == 2
        assert "cannot parse" in capsys.readouterr().err
        assert main(["bench", "fleet", "--ns", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_bench_fleet_rejects_unknown_scheduler(self, capsys):
        assert (
            main(
                ["bench", "fleet", "--ns", "8", "--schedulers", "sjf"]
            )
            == 2
        )
        assert "unknown schedulers" in capsys.readouterr().err

    def test_bench_fleet_rejects_unknown_sampler(self, capsys):
        assert (
            main(
                ["bench", "fleet", "--ns", "8", "--sampler", "magic"]
            )
            == 2
        )
        assert "unknown sampler" in capsys.readouterr().err


class TestObsProf:
    """`repro obs prof`: the profiler CLI over a real fleet workload."""

    def test_text_profile(self, capsys):
        assert main(["obs", "prof", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "== phase profile" in out
        # the fleet runner's phases all show up in the tree
        for phase in ("cohort", "solve", "dispatch"):
            assert phase in out

    def test_json_profile_to_file(self, tmp_path):
        import json

        out_path = tmp_path / "prof.json"
        assert (
            main(
                [
                    "obs",
                    "prof",
                    "--rounds",
                    "1",
                    "--format",
                    "json",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["schema"] == 1
        paths = {p["path"] for p in payload["phases"]}
        assert "solve" in paths and "cohort" in paths
        assert all(p["count"] >= 1 for p in payload["phases"])

    def test_trace_includes_counter_track(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "prof.trace.json"
        assert (
            main(
                [
                    "obs",
                    "prof",
                    "--rounds",
                    "1",
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        counters = [
            e for e in doc["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters, "no profiler counter events in trace"
        assert any(e["name"].startswith("prof/") for e in counters)

    def test_profiler_left_disabled(self):
        from repro.obs.prof import PROFILER

        assert main(["obs", "prof", "--rounds", "1"]) == 0
        assert PROFILER.enabled is False
        assert not PROFILER.stats

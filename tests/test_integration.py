"""End-to-end integration tests: the full pipeline of the paper.

profile -> cost matrix -> schedule -> materialize -> federated train ->
evaluate, for both the IID (Fed-LBAP) and non-IID (Fed-MinAvg) paths,
all on the simulated substrate.
"""

import numpy as np
import pytest

from repro.core import (
    build_cost_matrix,
    equal_schedule,
    evaluate_makespan,
    fed_lbap,
    fed_minavg,
)
from repro.data import load_preset, materialize_schedule, partition_from_sizes
from repro.device import make_device
from repro.experiments.flruns import scale_counts
from repro.experiments.realized import realized_times
from repro.experiments.testbeds import cached_time_curves, testbed_names
from repro.federated import FederatedSimulation, SimulationConfig
from repro.models import build_model, lenet
from repro.network import make_link


class TestIidPipeline:
    def test_profile_schedule_train_evaluate(self):
        """The quickstart path, asserted end to end."""
        names = testbed_names(1)
        model = lenet()
        shards, d = 60, 500

        # 1. profile + schedule
        curves = cached_time_curves(names, model)
        cost = build_cost_matrix(curves, shards, d)
        sched, bottleneck = fed_lbap(cost, shards, d)
        assert sched.total_shards == shards

        # 2. predicted vs realized makespan agree within profile error
        realized = realized_times(sched.samples_per_user(), names, model)
        active = sched.samples_per_user() > 0
        assert realized[active].max() == pytest.approx(
            bottleneck, rel=0.25
        )

        # 3. beats Equal on realized makespan
        eq = equal_schedule(len(names), shards, d)
        eq_real = realized_times(eq.samples_per_user(), names, model)
        assert realized[active].max() < eq_real.max()

        # 4. replay the allocation on the mini dataset and train
        dataset = load_preset("mnist_mini")
        sizes = scale_counts(sched.shard_counts, 40) * 50
        rng = np.random.default_rng(0)
        users = partition_from_sizes(dataset, sizes[sizes > 0], rng)
        devices = [
            make_device(n, jitter=0.0)
            for n, s in zip(names, sizes)
            if s > 0
        ]
        links = [make_link("wifi") for _ in devices]
        fl_model = build_model("logistic", dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            dataset,
            fl_model,
            users,
            devices=devices,
            links=links,
            config=SimulationConfig(lr=0.05, eval_every=6),
        )
        history = sim.run(6)
        assert history.final_accuracy > 0.85
        assert history.total_time_s > 0


class TestNonIidPipeline:
    def test_minavg_schedule_respects_classes_end_to_end(self):
        names = testbed_names(1)
        model = lenet()
        # class-disjoint users: the beta discount can subsidise each of
        # them, so full coverage is achievable (partially-overlapping
        # users are outside the "disjoint" discount's reach — see the
        # semantics ablation)
        classes = [(0, 1, 2, 3), (4, 5, 6), (7, 8, 9)]
        curves = cached_time_curves(names, model)

        sched = fed_minavg(
            curves,
            classes,
            total_shards=40,
            shard_size=50,
            num_classes=10,
            alpha=50.0,
            beta=2.0,
        )
        assert sched.meta["coverage"] == 1.0

        dataset = load_preset("mnist_mini")
        users = materialize_schedule(
            dataset, sched.shard_counts, classes, shard_size=50
        )
        # every user's data stays inside its class set
        for u, cs in zip(users, classes):
            if u.size:
                labels = set(dataset.y_train[u.indices].tolist())
                assert labels <= set(cs)

        fl_model = build_model("logistic", dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            dataset,
            fl_model,
            users,
            config=SimulationConfig(lr=0.05, eval_every=6),
        )
        sim.run(6)
        # full coverage -> all 10 classes learnable
        assert sim.final_accuracy() > 0.8

    def test_makespan_evaluation_matches_curve_math(self):
        names = testbed_names(1)
        model = lenet()
        curves = cached_time_curves(names, model)
        sched = fed_minavg(
            curves,
            [(0,), (1,), (2,)],
            total_shards=30,
            shard_size=500,
            num_classes=10,
            alpha=0.0,
        )
        cost = evaluate_makespan(sched, curves)
        samples = sched.samples_per_user()
        expected = max(
            curves[j](float(s)) for j, s in enumerate(samples) if s > 0
        )
        assert cost.makespan_s == pytest.approx(expected)


class TestAtScale:
    def test_twenty_user_federation(self):
        """Scalability smoke: a 20-device fleet, 600-shard Fed-LBAP
        schedule, realized evaluation — the paper's target deployment
        scale, in seconds of wall time."""
        names = tuple(
            ["nexus6"] * 6
            + ["nexus6p"] * 4
            + ["mate10"] * 5
            + ["pixel2"] * 5
        )
        model = lenet()
        curves = cached_time_curves(names, model)
        cost = build_cost_matrix(curves, 600, 100)
        sched, bottleneck = fed_lbap(cost, 600, 100)
        assert sched.total_shards == 600
        times = realized_times(sched.samples_per_user(), names, model)
        active = sched.samples_per_user() > 0
        realized = times[active].max()
        # realized within profile error of the predicted bottleneck
        assert realized == pytest.approx(bottleneck, rel=0.3)
        # and comfortably below what Equal would realize
        eq = equal_schedule(len(names), 600, 100)
        eq_real = realized_times(eq.samples_per_user(), names, model)
        assert realized < eq_real.max()

"""Golden-output tests: every rule fires on its bad fixture and stays
silent on its good twin.

Fixtures live under ``tests/analysis/fixtures/`` and are linted *as
if* they sat at an in-scope path (``lint_source`` takes the pretend
module path), so the scoping logic is exercised alongside the rule.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def run_fixture(name: str, module: str, rule_id: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, module, rule_ids=[rule_id])


CASES = [
    # (fixture, pretend module path, rule, expected finding lines)
    (
        "rng_bad.py",
        "src/repro/device/rng_bad.py",
        "no-unseeded-rng",
        [9, 10, 11],
    ),
    (
        "rng_good.py",
        "src/repro/device/rng_good.py",
        "no-unseeded-rng",
        [],
    ),
    (
        "wall_clock_bad.py",
        "src/repro/engine/wall_clock_bad.py",
        "no-wall-clock",
        [8, 9],
    ),
    (
        "wall_clock_good.py",
        "src/repro/engine/wall_clock_good.py",
        "no-wall-clock",
        [],
    ),
    (
        "serve_clock_bad.py",
        "src/repro/engine/serve_clock_bad.py",
        "no-wall-clock",
        [8, 9],
    ),
    (
        "serve_clock_good.py",
        "src/repro/serve/serve_clock_good.py",
        "no-wall-clock",
        [],
    ),
    (
        "float_eq_bad.py",
        "src/repro/core/float_eq_bad.py",
        "no-float-equality",
        [5, 7, 9],
    ),
    (
        "float_eq_good.py",
        "src/repro/core/float_eq_good.py",
        "no-float-equality",
        [],
    ),
    (
        "events_bad.py",
        "src/repro/engine/events.py",
        "event-schema-sync",
        [21, 21, 26, 27, 33, 36],
    ),
    (
        "events_good.py",
        "src/repro/engine/events.py",
        "event-schema-sync",
        [],
    ),
    (
        "fleet_loop_bad.py",
        "src/repro/engine/fleet_loop_bad.py",
        "no-python-loop-over-fleet",
        [6, 8, 9, 11],
    ),
    (
        "fleet_loop_good.py",
        "src/repro/sched/fleet_loop_good.py",
        "no-python-loop-over-fleet",
        [],
    ),
]


@pytest.mark.parametrize(
    "fixture,module,rule_id,lines",
    CASES,
    ids=[c[0].replace(".py", "") for c in CASES],
)
def test_fixture_golden_lines(fixture, module, rule_id, lines):
    findings = run_fixture(fixture, module, rule_id)
    assert [f.line for f in findings] == sorted(lines)
    assert all(f.rule_id == rule_id for f in findings)
    assert all(f.path == module for f in findings)


def test_out_of_scope_module_is_ignored():
    # the same bad RNG code outside src/repro is nobody's business
    source = (FIXTURES / "rng_bad.py").read_text(encoding="utf-8")
    assert lint_source(source, "examples/demo.py") == []
    # and the CLI is exempt from the RNG rule (seeds enter there)
    assert (
        lint_source(source, "src/repro/cli.py", ["no-unseeded-rng"])
        == []
    )


def test_wall_clock_scope_excludes_device_package():
    source = (FIXTURES / "wall_clock_bad.py").read_text(encoding="utf-8")
    assert (
        lint_source(
            source, "src/repro/device/clock.py", ["no-wall-clock"]
        )
        == []
    )


def test_serve_clock_seam_scope():
    # repro.serve is in wall-clock scope: a direct time.time() in the
    # http layer is flagged like anywhere else in the stack...
    source = (FIXTURES / "wall_clock_bad.py").read_text(encoding="utf-8")
    findings = lint_source(
        source, "src/repro/serve/httpd_bad.py", ["no-wall-clock"]
    )
    assert [f.line for f in findings] == [8, 9]
    # ...except in the seam module itself, the one sanctioned reader
    assert (
        lint_source(
            source, "src/repro/serve/clock.py", ["no-wall-clock"]
        )
        == []
    )
    # and the seam's message names the seam, not perf_counter
    seam = run_fixture(
        "serve_clock_bad.py",
        "src/repro/engine/serve_clock_bad.py",
        "no-wall-clock",
    )
    assert all("repro.serve" in f.message for f in seam)


def test_fleet_loop_scope_is_engine_and_sched_only():
    # the store itself may loop (it builds the per-class arrays), and
    # so may anything outside the two hot-path packages
    source = (FIXTURES / "fleet_loop_bad.py").read_text(encoding="utf-8")
    for module in (
        "src/repro/fleet/store.py",
        "src/repro/obs/recorder.py",
    ):
        assert (
            lint_source(source, module, ["no-python-loop-over-fleet"])
            == []
        )


def test_import_aliases_are_resolved():
    source = (
        "import numpy.random as nr\n"
        "import random as rnd\n"
        "x = nr.rand(3)\n"
        "y = rnd.random()\n"
    )
    findings = lint_source(
        source, "src/repro/core/aliased.py", ["no-unseeded-rng"]
    )
    assert [f.line for f in findings] == [3, 4]


def test_messages_carry_the_fix():
    findings = run_fixture(
        "wall_clock_bad.py",
        "src/repro/engine/wall_clock_bad.py",
        "no-wall-clock",
    )
    assert "time.perf_counter" in findings[0].message

"""SARIF exporter: golden document over the bad-fixture corpus,
minimal schema-shape validation, and line-shift-stable fingerprints."""

import json
from pathlib import Path

from repro.analysis import (
    lint_repo,
    render_sarif,
    sarif_payload,
)
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden" / "bad_fixtures.sarif"

#: same corpus the CLI exit-code tests use (see test_repo_and_cli.py)
BAD_FIXTURES = [
    ("rng_bad.py", "src/repro/device/rng_bad.py"),
    ("wall_clock_bad.py", "src/repro/engine/wall_clock_bad.py"),
    ("float_eq_bad.py", "src/repro/core/float_eq_bad.py"),
    ("events_bad.py", "src/repro/engine/events.py"),
    ("async_lock_bad.py", "src/repro/serve/ledger.py"),
]


def corpus_repo(tmp_path: Path) -> Path:
    for fixture, dest in BAD_FIXTURES:
        target = tmp_path / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            (FIXTURES / fixture).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
    return tmp_path


def test_sarif_golden(tmp_path):
    """The rendered document matches the checked-in golden byte for
    byte — regenerate with
    ``python -m pytest tests/analysis/test_sarif.py --force-regen``
    by hand (rewrite the file from the assertion message) whenever a
    rule message or the exporter changes on purpose."""
    report = lint_repo(corpus_repo(tmp_path), use_baseline=False)
    rendered = render_sarif(report)
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_sarif_schema_shape(tmp_path):
    report = lint_repo(corpus_repo(tmp_path), use_baseline=False)
    doc = sarif_payload(report)

    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"

    rules = driver["rules"]
    ids = [r["id"] for r in rules]
    assert len(ids) == len(set(ids)), "duplicate rule metadata"
    for meta in rules:
        assert meta["shortDescription"]["text"]
        assert meta["defaultConfiguration"]["level"] in (
            "error",
            "warning",
        )

    results = run["results"]
    assert results, "corpus must produce findings"
    for res in results:
        assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        uri = res["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert not uri.startswith("/"), "uris must be repo-relative"
        (fp,) = res["partialFingerprints"].values()
        assert fp.startswith(res["ruleId"] + ":")


def violation_repo(tmp_path: Path, prefix: str = "") -> Path:
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        prefix + "import time\nT = time.time()\n", encoding="utf-8"
    )
    return tmp_path


def test_sarif_fingerprint_survives_line_shift(tmp_path):
    a = violation_repo(tmp_path / "a")
    b = violation_repo(tmp_path / "b", prefix="# header\n# header\n\n")

    def one_result(root):
        report = lint_repo(root, use_baseline=False)
        (res,) = sarif_payload(report)["runs"][0]["results"]
        return res

    ra, rb = one_result(a), one_result(b)
    line = lambda r: r["locations"][0]["physicalLocation"]["region"][
        "startLine"
    ]
    assert line(ra) != line(rb)  # the violation really did move
    assert ra["partialFingerprints"] == rb["partialFingerprints"]


def test_cli_sarif_format(tmp_path, capsys):
    root = violation_repo(tmp_path)
    assert (
        main(["lint", "--root", str(root), "--format", "sarif"]) == 1
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == SARIF_VERSION
    (res,) = doc["runs"][0]["results"]
    assert res["ruleId"] == "no-wall-clock"

"""registry-doc-drift: scheduler registry vs README vs tests/sched."""

from pathlib import Path

from repro.analysis import lint_repo

SCHED_MODULE = '''\
from .registry import register


@register("alpha")
class AlphaScheduler:
    pass


@register("beta")
class BetaScheduler:
    pass
'''


def make_repo(
    tmp_path: Path, readme_names=("alpha",), tested_names=("alpha",)
) -> Path:
    pkg = tmp_path / "src" / "repro" / "sched"
    pkg.mkdir(parents=True)
    (pkg / "adapters.py").write_text(SCHED_MODULE, encoding="utf-8")
    rows = "\n".join(f"| `{n}` | demo |" for n in readme_names)
    (tmp_path / "README.md").write_text(
        f"# Demo\n\n| scheduler | notes |\n|---|---|\n{rows}\n",
        encoding="utf-8",
    )
    tdir = tmp_path / "tests" / "sched"
    tdir.mkdir(parents=True)
    body = "\n".join(
        f'def test_{n}():\n    get_scheduler("{n}")\n\n'
        for n in tested_names
    )
    (tdir / "test_demo.py").write_text(body or "\n", encoding="utf-8")
    return tmp_path


def test_documented_and_tested_registry_is_clean(tmp_path):
    root = make_repo(
        tmp_path,
        readme_names=("alpha", "beta"),
        tested_names=("alpha", "beta"),
    )
    report = lint_repo(root, rule_ids=["registry-doc-drift"])
    assert report.findings == []
    assert report.exit_code == 0


def test_missing_readme_row_and_test_are_flagged(tmp_path):
    root = make_repo(tmp_path)  # beta neither documented nor tested
    report = lint_repo(root, rule_ids=["registry-doc-drift"])
    messages = [f.message for f in report.findings]
    assert len(messages) == 2
    assert any("README" in m and "'beta'" in m for m in messages)
    assert any("tests/sched" in m and "'beta'" in m for m in messages)
    # findings point at the registration site
    assert all(
        f.path == "src/repro/sched/adapters.py"
        for f in report.findings
    )
    assert report.exit_code == 1


def test_backtick_mention_required_in_readme(tmp_path):
    # a bare-word mention is not a table row; only `name` counts
    root = make_repo(
        tmp_path, readme_names=("alpha",), tested_names=("alpha", "beta")
    )
    readme = (root / "README.md").read_text(encoding="utf-8")
    (root / "README.md").write_text(
        readme + "\nbeta is mentioned without backticks\n",
        encoding="utf-8",
    )
    report = lint_repo(root, rule_ids=["registry-doc-drift"])
    assert len(report.findings) == 1
    assert "README" in report.findings[0].message

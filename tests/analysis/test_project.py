"""The whole-program model: symbol table, import graph, call graph,
and the single-parse guarantee of the lint pipeline."""

from collections import Counter
from pathlib import Path

from repro.analysis import (
    build_project,
    lint_repo,
    set_parse_listener,
)
from repro.analysis.project import (
    ConstantInfo,
    FunctionInfo,
    module_name_for,
    usage_tokens,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_tree(tmp_path: Path, files: dict) -> Path:
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
    return tmp_path


MINI = {
    "src/repro/__init__.py": "",
    "src/repro/core/__init__.py": (
        "from .schedule import Schedule\n\n__all__ = [\"Schedule\"]\n"
    ),
    "src/repro/core/schedule.py": (
        "N_USERS = 4\n"
        "\n"
        "\n"
        "class Schedule:\n"
        "    def cost(self, makespan_s: float = 0.0) -> float:\n"
        "        return makespan_s\n"
    ),
    "src/repro/sched/__init__.py": "from . import olar\n",
    "src/repro/sched/base.py": (
        "from ..core.schedule import Schedule\n"
        "\n"
        "\n"
        "class Scheduler:\n"
        "    def schedule(self, problem) -> \"Schedule\":\n"
        "        raise NotImplementedError\n"
    ),
    "src/repro/sched/olar.py": (
        "from .base import Scheduler\n"
        "\n"
        "\n"
        "class Olar(Scheduler):\n"
        "    def schedule(self, problem, greedy=True):\n"
        "        return helper(problem)\n"
        "\n"
        "\n"
        "def helper(problem):\n"
        "    return problem\n"
    ),
}


def build_mini(tmp_path: Path):
    root = write_tree(tmp_path, MINI)
    files = sorted((root / "src").rglob("*.py"))
    ctx, errors = build_project(root, files)
    assert errors == []
    assert ctx.graph is not None
    return ctx, ctx.graph


def test_module_name_for():
    assert module_name_for("src/repro/sched/base.py") == "repro.sched.base"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("tests/test_x.py") is None
    assert module_name_for("src/repro/data.json") is None


def test_symbol_table(tmp_path):
    _, graph = build_mini(tmp_path)
    sched = graph.modules["repro.core.schedule"]
    assert isinstance(sched.constants["N_USERS"], ConstantInfo)
    cls = sched.classes["Schedule"]
    cost = cls.methods["cost"]
    assert isinstance(cost, FunctionInfo)
    assert cost.params == ("self", "makespan_s")
    assert cost.n_defaults == 1
    assert cost.required_params == ("self",)
    assert cost.returns == "float"
    init = graph.modules["repro.core"]
    assert init.exports == ("Schedule",)


def test_relative_imports_resolve(tmp_path):
    _, graph = build_mini(tmp_path)
    base = graph.modules["repro.sched.base"]
    # `from ..core.schedule import Schedule` inside repro/sched/base.py
    assert base.bindings["Schedule"] == "repro.core.schedule.Schedule"
    assert "repro.core.schedule" in graph.import_edges["repro.sched.base"]


def test_import_closure_includes_package_ancestors(tmp_path):
    _, graph = build_mini(tmp_path)
    closure = graph.import_closure(["repro.sched.olar"])
    # importing a submodule executes its package __init__ first, and
    # repro.sched/__init__ imports olar
    assert "repro.sched" in closure
    assert "repro.sched.base" in closure
    assert "repro.core.schedule" in closure


def test_cross_module_subclass_resolution(tmp_path):
    _, graph = build_mini(tmp_path)
    olar_mod = graph.modules["repro.sched.olar"]
    olar = olar_mod.classes["Olar"]
    assert graph.inherits_from("repro.sched.olar", olar, "Scheduler")
    assert not graph.inherits_from("repro.sched.olar", olar, "Protocol")
    found = graph.find_method("repro.sched.olar", olar, "schedule")
    assert found is not None
    assert found[2].params[:2] == ("self", "problem")


def test_resolve_symbol_follows_reexports(tmp_path):
    _, graph = build_mini(tmp_path)
    # repro.core re-exports Schedule from repro.core.schedule
    resolved = graph.resolve_symbol("repro.core", "Schedule")
    assert resolved is not None
    module, name = resolved
    assert module.name == "repro.core.schedule"
    assert name == "Schedule"


def test_call_sites_resolve_through_bindings(tmp_path):
    _, graph = build_mini(tmp_path)
    olar_mod = graph.modules["repro.sched.olar"]
    targets = [dotted for dotted, _ in olar_mod.calls]
    assert "repro.sched.olar.helper" in targets
    resolved = graph.resolve_call_target(
        "repro.sched.olar", "repro.sched.olar.helper"
    )
    assert resolved is not None
    assert resolved[1].name == "helper"


def test_usage_tokens_exclude_imports_and_all():
    source = (
        "from x import alpha\n"
        "import beta\n"
        "__all__ = [\n"
        "    \"gamma\",\n"
        "]\n"
        "value = delta()\n"
    )
    tokens = usage_tokens(source, None)
    assert "delta" in tokens
    assert "alpha" not in tokens
    assert "gamma" not in tokens


def test_lint_repo_parses_each_file_exactly_once_mini(tmp_path):
    root = write_tree(tmp_path, MINI)
    counts: Counter = Counter()
    set_parse_listener(lambda module: counts.update([module]))
    try:
        report = lint_repo(root)
    finally:
        set_parse_listener(None)
    assert report.files_checked == len(MINI)
    assert len(counts) == report.files_checked
    assert set(counts.values()) == {1}


def test_lint_repo_parses_each_file_exactly_once_real_repo():
    """The single-parse guarantee on this very checkout: every source
    file goes through the one parse seam exactly once per invocation,
    no matter how many rules consume the tree."""
    counts: Counter = Counter()
    set_parse_listener(lambda module: counts.update([module]))
    try:
        report = lint_repo(REPO_ROOT)
    finally:
        set_parse_listener(None)
    assert report.files_checked > 50
    assert len(counts) == report.files_checked
    most_parsed, n = counts.most_common(1)[0]
    assert n == 1, f"{most_parsed} parsed {n} times"

"""Baseline workflow: suppress, shrink-only, stale detection."""

from pathlib import Path

from repro.analysis import (
    apply_baseline,
    lint_repo,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding

BAD_ENGINE_FILE = "import time\n\nT0 = time.time()\n"
GOOD_ENGINE_FILE = "import time\n\nT0 = time.perf_counter()\n"


def make_repo(tmp_path: Path, source: str) -> Path:
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "clock.py").write_text(source, encoding="utf-8")
    return tmp_path


def test_baseline_suppresses_known_findings(tmp_path):
    root = make_repo(tmp_path, BAD_ENGINE_FILE)
    first = lint_repo(root)
    assert first.exit_code == 1
    assert len(first.findings) == 1

    write_baseline(root / "lint-baseline.json", first.findings)
    second = lint_repo(root)
    assert second.exit_code == 0
    assert second.findings == []
    assert second.suppressed == 1


def test_fixed_finding_makes_baseline_stale(tmp_path):
    root = make_repo(tmp_path, BAD_ENGINE_FILE)
    write_baseline(
        root / "lint-baseline.json", lint_repo(root).findings
    )
    # fix the violation but leave the baseline entry behind
    (root / "src" / "repro" / "engine" / "clock.py").write_text(
        GOOD_ENGINE_FILE, encoding="utf-8"
    )
    report = lint_repo(root)
    assert report.findings == []
    assert report.stale_baseline  # debt may only shrink
    assert report.exit_code == 1


def test_no_baseline_flag_shows_everything(tmp_path):
    root = make_repo(tmp_path, BAD_ENGINE_FILE)
    write_baseline(
        root / "lint-baseline.json", lint_repo(root).findings
    )
    report = lint_repo(root, use_baseline=False)
    assert len(report.findings) == 1
    assert report.exit_code == 1


def test_roundtrip_and_counts(tmp_path):
    f = Finding(
        rule_id="no-wall-clock",
        path="src/repro/engine/clock.py",
        line=3,
        message="m",
        code="T0 = time.time()",
    )
    path = tmp_path / "b.json"
    write_baseline(path, [f, f])
    budget = load_baseline(path)
    assert budget[f.fingerprint()] == 2

    # two findings consume the budget exactly; a third is kept
    kept, stale = apply_baseline([f, f, f], budget)
    assert len(kept) == 1
    assert stale == []
    # under-consumed budget is reported stale
    kept, stale = apply_baseline([f], budget)
    assert kept == []
    assert stale == [f.fingerprint()]


def test_baseline_survives_line_shifts_and_formatting(tmp_path):
    root = make_repo(tmp_path, BAD_ENGINE_FILE)
    write_baseline(
        root / "lint-baseline.json", lint_repo(root).findings
    )
    # move the violation down and change its indentation-insensitive
    # whitespace; the context-keyed fingerprint must still match
    (root / "src" / "repro" / "engine" / "clock.py").write_text(
        "import time\n\n\n# moved\nT0  =  time.time()\n",
        encoding="utf-8",
    )
    report = lint_repo(root)
    assert report.findings == []
    assert report.stale_baseline == []
    assert report.suppressed == 1
    assert report.exit_code == 0


def test_legacy_code_key_is_migrated_on_load(tmp_path):
    import json

    root = make_repo(tmp_path, BAD_ENGINE_FILE)
    # a pre-normalisation baseline entry: raw source under "code"
    (root / "lint-baseline.json").write_text(
        json.dumps(
            {
                "suppressions": [
                    {
                        "rule": "no-wall-clock",
                        "path": "src/repro/engine/clock.py",
                        "code": "T0 =   time.time()",
                        "count": 1,
                    }
                ]
            }
        ),
        encoding="utf-8",
    )
    budget = load_baseline(root / "lint-baseline.json")
    (fp,) = budget
    assert fp[2] == "T0 = time.time()"  # normalised on load
    report = lint_repo(root)
    assert report.findings == []
    assert report.suppressed == 1
    assert report.exit_code == 0

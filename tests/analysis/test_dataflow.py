"""Worklist-solver tests: convergence on cyclic CFGs and stock lattices."""

from __future__ import annotations

import ast
import textwrap
from typing import FrozenSet

import pytest

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    MAX_ITERATIONS,
    ForwardAnalysis,
    MaySuspend,
    ReachingDefinitions,
    solve_forward,
    unit_facts,
)


def _cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


# ---------------------------------------------------------------------------
# reaching definitions


def test_reaching_defs_joins_both_branch_bindings():
    cfg = _cfg(
        """
        def f(x):
            if x:
                y = 1
            else:
                y = 2
            return y
        """
    )
    rd = ReachingDefinitions(params=("x",))
    entry = solve_forward(cfg, rd)
    # the join block (if.after) sees both bindings of y, plus the param
    after = next(b for b in cfg.blocks if b.label == "if.after")
    names = sorted(entry[after.idx])
    assert ("x", 0) in names
    assert [n for n, _ in names].count("y") == 2


def test_reaching_defs_converges_on_loop_and_kills_rebinding():
    cfg = _cfg(
        """
        def f(n):
            i = 0
            while i < n:
                i = i + 1
            return i
        """
    )
    entry = solve_forward(cfg, ReachingDefinitions(params=("n",)))
    head = next(b for b in cfg.blocks if b.label == "while.head")
    # both the init and the in-loop rebinding reach the loop head
    i_defs = {ln for name, ln in entry[head.idx] if name == "i"}
    assert len(i_defs) == 2
    # but inside the body, after the rebinding executes, only one remains
    body = next(b for b in cfg.blocks if b.label == "while.body")
    facts = list(unit_facts(ReachingDefinitions(("n",)), cfg, body.idx, entry[body.idx]))
    (before_rebind, rebind_stmt) = facts[0]
    assert isinstance(rebind_stmt, ast.Assign)
    after_rebind = ReachingDefinitions(("n",)).transfer(before_rebind, rebind_stmt)
    assert len({ln for name, ln in after_rebind if name == "i"}) == 1


# ---------------------------------------------------------------------------
# may-suspend


def test_may_suspend_is_false_before_and_true_after_await():
    cfg = _cfg(
        """
        async def f(q):
            x = 1
            y = await q.get()
            return x + y
        """
    )
    entry = solve_forward(cfg, MaySuspend())
    assert entry[cfg.entry] is False
    # the block after the await (the resume block) has suspended
    resume = next(b for b in cfg.blocks if b.label == "resume")
    assert entry[resume.idx] is True


def test_may_suspend_stays_false_in_sync_function():
    cfg = _cfg(
        """
        def f(n):
            total = 0
            for i in range(n):
                total += i
            return total
        """
    )
    entry = solve_forward(cfg, MaySuspend())
    assert all(fact is False for fact in entry.values())


# ---------------------------------------------------------------------------
# solver behaviour


class _Diverging(ForwardAnalysis[FrozenSet[int]]):
    """Deliberately non-monotone: grows the fact on every transfer."""

    def __init__(self) -> None:
        self.tick = 0

    def initial(self, cfg: CFG) -> FrozenSet[int]:
        return frozenset()

    def bottom(self) -> FrozenSet[int]:
        return frozenset()

    def join(self, a: FrozenSet[int], b: FrozenSet[int]) -> FrozenSet[int]:
        return a | b

    def transfer(self, fact: FrozenSet[int], unit: object) -> FrozenSet[int]:
        self.tick += 1
        return fact | {self.tick}


def test_solver_caps_runaway_lattices():
    cfg = _cfg(
        """
        def f(n):
            while n:
                n = n - 1
        """
    )
    with pytest.raises(RuntimeError, match=str(MAX_ITERATIONS)):
        solve_forward(cfg, _Diverging())


def test_unit_facts_replays_transfer_through_a_block():
    cfg = _cfg(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    rd = ReachingDefinitions()
    entry = solve_forward(cfg, rd)
    pairs = list(unit_facts(rd, cfg, cfg.entry, entry[cfg.entry]))
    # before the first assign: nothing; before the second: {a}
    assert pairs[0][0] == frozenset()
    assert {name for name, _ in pairs[1][0]} == {"a"}
    assert {name for name, _ in pairs[2][0]} == {"a", "b"}

"""Fixture-pair and surface tests for the determinism-taint rule pack.

Each taint rule has a ``*_bad.py`` fixture whose golden finding lines
are pinned (multi-hop flows an AST-only rule cannot see) and a
``*_good.py`` twin that must stay clean. On top sit the reporting
surfaces: propagation chains in text output and SARIF ``codeFlows``,
the ``--rules`` subset flag CI uses for the taint category, and
byte-stable JSON across dict-ordering perturbations.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    format_findings,
    lint_repo,
    lint_source,
    sarif_payload,
)
from repro.analysis.taintrules import (
    EnvDependentConfig,
    HostTimeTaint,
    ImpureScheduler,
    RngTaintEscape,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

# (fixture stem, pretend module of the bad twin, rule, golden lines)
PAIRS = [
    (
        "taint_hosttime",
        "src/repro/engine/{stem}.py",
        HostTimeTaint.id,
        [26, 27, 28, 29],
    ),
    (
        "taint_rng",
        "src/repro/fleet/{stem}.py",
        RngTaintEscape.id,
        [27, 28, 29],
    ),
    (
        "taint_env",
        "src/repro/fleet/{stem}.py",
        EnvDependentConfig.id,
        [15, 19, 23, 24],
    ),
]


def _lint_fixture(stem: str, kind: str, module_tpl: str, rule_id: str):
    name = f"{stem}_{kind}"
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    if rule_id == EnvDependentConfig.id and kind == "good":
        # the good twin lives *inside* an entry layer on purpose
        module = "src/repro/serve/app.py"
    else:
        module = module_tpl.format(stem=name)
    return source, lint_source(source, module, rule_ids=[rule_id])


@pytest.mark.parametrize("stem,module_tpl,rule_id,lines", PAIRS)
def test_bad_fixture_golden_lines(stem, module_tpl, rule_id, lines):
    _, findings = _lint_fixture(stem, "bad", module_tpl, rule_id)
    assert [f.line for f in findings] == lines, [
        f.message for f in findings
    ]
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("stem,module_tpl,rule_id,lines", PAIRS)
def test_good_fixture_is_clean(stem, module_tpl, rule_id, lines):
    _, findings = _lint_fixture(stem, "good", module_tpl, rule_id)
    assert findings == []


def test_findings_carry_the_full_propagation_chain():
    """The seeded-bug demo: the helper return, the instance attribute
    and the local are each one hop an AST matcher cannot follow."""
    _, findings = _lint_fixture(
        "taint_hosttime", "bad", "src/repro/engine/{stem}.py",
        HostTimeTaint.id,
    )
    by_line = {f.line: f for f in findings}
    labels = [s.label for s in by_line[27].flow]
    assert labels == [
        "time.perf_counter",
        "wall",
        "RoundCompleted.time_s",
    ]
    for f in findings:
        assert f.flow, "every taint finding must carry its chain"
        assert f"(flow: {f.render_flow()})" in f.message


def test_rng_chain_walks_through_class_state():
    _, findings = _lint_fixture(
        "taint_rng", "bad", "src/repro/fleet/{stem}.py",
        RngTaintEscape.id,
    )
    commit = [f for f in findings if "commit" in f.message]
    assert len(commit) == 1
    labels = [s.label for s in commit[0].flow]
    assert labels[0] == "numpy.random.default_rng()"
    assert "self._rng" in labels
    assert labels[-1] == "self.registry.commit(...)"


def test_text_format_renders_flow_lines():
    source = (FIXTURES / "taint_hosttime_bad.py").read_text(
        encoding="utf-8"
    )
    module = "src/repro/engine/taint_hosttime_bad.py"
    findings = lint_source(source, module, rule_ids=[HostTimeTaint.id])
    from repro.analysis.runner import LintReport

    text = format_findings(
        LintReport(
            findings=findings,
            files_checked=1,
            rules_run=(HostTimeTaint.id,),
        )
    )
    assert "flow: time.perf_counter -> wall" in text


def test_inline_allow_suppresses_taint_rules():
    source = textwrap.dedent(
        """
        import time


        def f(bus):
            wall = time.perf_counter()
            bus.emit(wall)  # lint: allow[host-time-taint]
        """
    )
    module = "src/repro/engine/demo.py"
    assert (
        lint_source(source, module, rule_ids=[HostTimeTaint.id]) == []
    )


def test_host_time_rule_exempts_sanctioned_domains():
    source = (FIXTURES / "taint_hosttime_bad.py").read_text(
        encoding="utf-8"
    )
    for module in (
        "src/repro/obs/prof.py",
        "src/repro/perf/harness.py",
        "src/repro/cli.py",
        "examples/scratch.py",
    ):
        assert (
            lint_source(source, module, rule_ids=[HostTimeTaint.id])
            == []
        ), module


# ---------------------------------------------------------------------------
# impure-scheduler (project rule, mini-repo fixtures)
# ---------------------------------------------------------------------------

SCHED_COMMON = {
    "src/repro/__init__.py": "",
    "src/repro/sched/__init__.py": "from . import impls\n",
    "src/repro/sched/registry.py": (
        "def register(name):\n"
        "    def deco(cls):\n"
        "        return cls\n"
        "    return deco\n"
    ),
    "src/repro/sched/base.py": (
        "class Assignment:\n"
        "    pass\n"
        "\n"
        "\n"
        "class Scheduler:\n"
        "    def schedule(self, problem) -> \"Assignment\":\n"
        "        raise NotImplementedError\n"
    ),
}


def sched_repo(tmp_path: Path, fixture: str) -> Path:
    files = {
        **SCHED_COMMON,
        "src/repro/sched/impls.py": (FIXTURES / fixture).read_text(
            encoding="utf-8"
        ),
    }
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
    return tmp_path


def impure_findings(root: Path):
    report = lint_repo(root, use_baseline=False)
    assert report.parse_errors == []
    return [
        f for f in report.findings if f.rule_id == ImpureScheduler.id
    ]


def test_impure_scheduler_caught_two_hops_away(tmp_path):
    root = sched_repo(tmp_path, "sched_purity_bad.py")
    (finding,) = impure_findings(root)
    assert finding.path == "src/repro/sched/impls.py"
    assert "Sticky" in finding.message
    assert "must be pure" in finding.message
    assert "writes self._hist" in finding.message
    assert [s.label for s in finding.flow] == [
        "_note()",
        "self._hist.append",
    ]


def test_pure_scheduler_certifies_clean(tmp_path):
    root = sched_repo(tmp_path, "sched_purity_good.py")
    assert impure_findings(root) == []


def test_every_registered_repo_scheduler_certifies():
    """The certificate over this very checkout: all registered
    schedulers stay cacheable (also implied by the repo lint gate,
    asserted here so a regression names the rule directly)."""
    report = lint_repo(REPO_ROOT, rule_ids=[ImpureScheduler.id])
    assert [f.render() for f in report.findings] == []


# ---------------------------------------------------------------------------
# reporting surfaces: SARIF codeFlows, --rules, byte-stable JSON
# ---------------------------------------------------------------------------


def taint_repo(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "engine" / "runner.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        (FIXTURES / "taint_hosttime_bad.py").read_text(
            encoding="utf-8"
        ),
        encoding="utf-8",
    )
    return tmp_path


def test_sarif_exports_code_flows(tmp_path):
    report = lint_repo(
        taint_repo(tmp_path),
        rule_ids=[HostTimeTaint.id],
        use_baseline=False,
    )
    assert report.findings
    doc = sarif_payload(report)
    results = doc["runs"][0]["results"]
    assert results
    for res, finding in zip(results, report.findings):
        (code_flow,) = res["codeFlows"]
        (thread,) = code_flow["threadFlows"]
        texts = [
            loc["location"]["message"]["text"]
            for loc in thread["locations"]
        ]
        assert texts == [s.label for s in finding.flow]
        for loc in thread["locations"]:
            phys = loc["location"]["physicalLocation"]
            assert phys["region"]["startLine"] >= 1
            assert not phys["artifactLocation"]["uri"].startswith("/")


def test_cli_rules_flag_scopes_the_run(tmp_path, capsys):
    root = str(taint_repo(tmp_path))
    assert (
        main(["lint", "--root", root, "--rules", HostTimeTaint.id]) == 1
    )
    out = capsys.readouterr().out
    assert "host-time-taint" in out
    assert "1 rules" in out.splitlines()[-1]
    # the same tree is quiet under an unrelated rule...
    assert (
        main(["lint", "--root", root, "--rules", "no-float-equality"])
        == 0
    )
    capsys.readouterr()
    # ...and an unknown id is a usage error, not a silent no-op
    assert main(["lint", "--root", root, "--rules", "no-such"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_json_output_is_byte_stable_across_hash_seeds(tmp_path):
    """`repro lint --format json` must not leak dict/set iteration
    order: two interpreters with different hash seeds, same bytes."""
    root = taint_repo(tmp_path)
    env_file = root / "src" / "repro" / "fleet" / "cfg.py"
    env_file.parent.mkdir(parents=True, exist_ok=True)
    env_file.write_text(
        (FIXTURES / "taint_env_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )

    def run(seed: str) -> bytes:
        env = dict(
            os.environ,
            PYTHONHASHSEED=seed,
            PYTHONPATH=str(REPO_ROOT / "src"),
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "lint",
                "--root",
                str(root),
                "--format",
                "json",
            ],
            capture_output=True,
            env=env,
        )
        assert proc.returncode == 1, proc.stderr.decode()
        return proc.stdout

    first = run("0")
    assert json.loads(first)["findings"], "corpus must produce findings"
    assert first == run("4242")

"""Cross-module rules, each exercised on purpose-built mini repos:
event-dispatch-exhaustiveness, scheduler-contract, unit-consistency
(cross-call flow) and dead-public-api."""

from pathlib import Path

from repro.analysis import lint_repo, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def write_tree(tmp_path: Path, files: dict) -> Path:
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
    return tmp_path


def lint_rule(root: Path, rule_id: str):
    """Full lint, findings filtered to the rule under test."""
    report = lint_repo(root, use_baseline=False)
    assert report.parse_errors == []
    return [f for f in report.findings if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# event-dispatch-exhaustiveness
# ---------------------------------------------------------------------------

EVENTS_PY = (
    "class EngineEvent:\n"
    "    pass\n"
    "\n"
    "\n"
    "class TickEvent(EngineEvent):\n"
    "    kind: str = \"tick\"\n"
    "\n"
    "\n"
    "class DoneEvent(EngineEvent):\n"
    "    kind: str = \"done\"\n"
)

RECORDER_OK = (
    "from ..engine.events import DoneEvent, TickEvent\n"
    "\n"
    "\n"
    "class ObsRecorder:\n"
    "    def __call__(self, event):\n"
    "        if isinstance(event, TickEvent):\n"
    "            return \"tick\"\n"
    "        if isinstance(event, DoneEvent):\n"
    "            return \"done\"\n"
    "        return None\n"
    "\n"
    "    def add_dict(self, payload):\n"
    "        kind = payload[\"kind\"]\n"
    "        if kind == \"telemetry_meta\":\n"
    "            return None\n"
    "        if kind == \"tick\":\n"
    "            return \"tick\"\n"
    "        if kind == \"done\":\n"
    "            return \"done\"\n"
    "        return None\n"
)


def event_repo(tmp_path: Path, recorder: str) -> Path:
    return write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/engine/__init__.py": "",
            "src/repro/engine/events.py": EVENTS_PY,
            "src/repro/obs/__init__.py": "",
            "src/repro/obs/recorder.py": recorder,
        },
    )


def test_event_dispatch_clean(tmp_path):
    root = event_repo(tmp_path, RECORDER_OK)
    assert lint_rule(root, "event-dispatch-exhaustiveness") == []


def test_event_dispatch_missing_isinstance_branch(tmp_path):
    broken = RECORDER_OK.replace(
        "        if isinstance(event, DoneEvent):\n"
        "            return \"done\"\n",
        "",
    )
    root = event_repo(tmp_path, broken)
    findings = lint_rule(root, "event-dispatch-exhaustiveness")
    assert len(findings) == 1
    assert "DoneEvent" in findings[0].message
    assert "__call__" in findings[0].message
    assert findings[0].path == "src/repro/obs/recorder.py"


def test_event_dispatch_missing_replay_kind(tmp_path):
    broken = RECORDER_OK.replace(
        "        if kind == \"done\":\n"
        "            return \"done\"\n",
        "",
    )
    root = event_repo(tmp_path, broken)
    findings = lint_rule(root, "event-dispatch-exhaustiveness")
    assert len(findings) == 1
    assert "'done'" in findings[0].message
    assert "add_dict" in findings[0].message


def test_event_dispatch_unknown_replay_kind(tmp_path):
    broken = RECORDER_OK.replace(
        "        if kind == \"done\":",
        "        if kind == \"done\":\n"
        "            return \"done\"\n"
        "        if kind == \"legacy_tick\":",
    )
    root = event_repo(tmp_path, broken)
    findings = lint_rule(root, "event-dispatch-exhaustiveness")
    assert len(findings) == 1
    assert "'legacy_tick'" in findings[0].message
    assert "never run" in findings[0].message


def test_event_dispatch_nonexistent_target(tmp_path):
    broken = RECORDER_OK.replace(
        "from ..engine.events import DoneEvent, TickEvent\n",
        "from ..engine.events import DoneEvent, GhostEvent, TickEvent\n",
    ).replace(
        "        if isinstance(event, TickEvent):",
        "        if isinstance(event, GhostEvent):\n"
        "            return \"ghost\"\n"
        "        if isinstance(event, TickEvent):",
    )
    root = event_repo(tmp_path, broken)
    findings = lint_rule(root, "event-dispatch-exhaustiveness")
    assert len(findings) == 1
    assert "GhostEvent" in findings[0].message
    assert "does not exist" in findings[0].message


def test_event_dispatch_silent_without_consumers(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/engine/__init__.py": "",
            "src/repro/engine/events.py": EVENTS_PY,
        },
    )
    assert lint_rule(root, "event-dispatch-exhaustiveness") == []


# ---------------------------------------------------------------------------
# scheduler-contract
# ---------------------------------------------------------------------------

SCHED_COMMON = {
    "src/repro/__init__.py": "",
    "src/repro/sched/__init__.py": "from . import impls\n",
    "src/repro/sched/registry.py": (
        "def register(name):\n"
        "    def deco(cls):\n"
        "        return cls\n"
        "    return deco\n"
    ),
    "src/repro/sched/base.py": (
        "class Assignment:\n"
        "    pass\n"
        "\n"
        "\n"
        "class Scheduler:\n"
        "    def schedule(self, problem) -> \"Assignment\":\n"
        "        raise NotImplementedError\n"
    ),
    "src/repro/sched/bench.py": (
        "from . import registry\n"
        "\n"
        "\n"
        "def compare(problem, names):\n"
        "    return [registry.register(n) for n in names]\n"
    ),
}

IMPLS_OK = (
    "from .base import Assignment, Scheduler\n"
    "from .registry import register\n"
    "\n"
    "\n"
    "@register(\"good\")\n"
    "class Good(Scheduler):\n"
    "    def schedule(self, problem, greedy=True) -> Assignment:\n"
    "        return Assignment()\n"
)


def sched_repo(tmp_path: Path, impls: str, extra: dict = None) -> Path:
    files = {**SCHED_COMMON, "src/repro/sched/impls.py": impls}
    files.update(extra or {})
    return write_tree(tmp_path, files)


def test_scheduler_contract_clean(tmp_path):
    root = sched_repo(tmp_path, IMPLS_OK)
    assert lint_rule(root, "scheduler-contract") == []


def test_scheduler_contract_not_a_subclass(tmp_path):
    impls = (
        "from .base import Assignment\n"
        "from .registry import register\n"
        "\n"
        "\n"
        "@register(\"rogue\")\n"
        "class Rogue:\n"
        "    def schedule(self, problem) -> Assignment:\n"
        "        return Assignment()\n"
    )
    root = sched_repo(tmp_path, impls)
    findings = lint_rule(root, "scheduler-contract")
    assert len(findings) == 1
    assert "does not subclass" in findings[0].message
    assert "Rogue" in findings[0].message


def test_scheduler_contract_missing_schedule(tmp_path):
    impls = (
        "from .registry import register\n"
        "\n"
        "\n"
        "@register(\"hollow\")\n"
        "class Hollow:\n"
        "    pass\n"
    )
    root = sched_repo(tmp_path, impls)
    messages = [
        f.message for f in lint_rule(root, "scheduler-contract")
    ]
    assert any("neither defines nor inherits" in m for m in messages)


def test_scheduler_contract_bad_signature(tmp_path):
    impls = IMPLS_OK.replace(
        "def schedule(self, problem, greedy=True) -> Assignment:",
        "def schedule(self, problem, horizon) -> Assignment:",
    )
    root = sched_repo(tmp_path, impls)
    findings = lint_rule(root, "scheduler-contract")
    assert len(findings) == 1
    assert "does not match" in findings[0].message
    assert "defaults" in findings[0].message


def test_scheduler_contract_bad_return_annotation(tmp_path):
    impls = IMPLS_OK.replace("-> Assignment:", "-> dict:")
    root = sched_repo(tmp_path, impls)
    findings = lint_rule(root, "scheduler-contract")
    assert len(findings) == 1
    assert "'dict'" in findings[0].message
    assert "Assignment" in findings[0].message


def test_scheduler_contract_unreachable_from_bench(tmp_path):
    orphan = IMPLS_OK.replace('"good"', '"orphan"').replace(
        "class Good", "class Orphan"
    )
    root = sched_repo(
        tmp_path, IMPLS_OK, {"src/repro/sched/orphan.py": orphan}
    )
    findings = lint_rule(root, "scheduler-contract")
    assert len(findings) == 1
    assert "Orphan" in findings[0].message
    assert "never imports" in findings[0].message
    assert findings[0].path == "src/repro/sched/orphan.py"


# ---------------------------------------------------------------------------
# unit-consistency
# ---------------------------------------------------------------------------


def test_unit_fixture_bad():
    source = (FIXTURES / "unit_bad.py").read_text(encoding="utf-8")
    findings = lint_source(
        source, "src/repro/engine/unit_bad.py", ["unit-consistency"]
    )
    assert len(findings) == 4
    verbs = " ".join(f.message for f in findings)
    assert "added/subtracted" in verbs
    assert "compared against" in verbs
    assert "assigned from" in verbs


def test_unit_fixture_good():
    source = (FIXTURES / "unit_good.py").read_text(encoding="utf-8")
    assert (
        lint_source(
            source,
            "src/repro/engine/unit_good.py",
            ["unit-consistency"],
        )
        == []
    )


def test_unit_rule_scoped_to_simulation_packages():
    source = "total = makespan_s + energy_j\n"
    assert (
        lint_source(
            source, "src/repro/plots/render.py", ["unit-consistency"]
        )
        == []
    )
    assert (
        len(
            lint_source(
                source, "src/repro/core/cost.py", ["unit-consistency"]
            )
        )
        == 1
    )


def test_unit_cross_call_flow(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/engine/__init__.py": "",
            "src/repro/engine/clockwork.py": (
                "def wait(delay_s):\n"
                "    return delay_s\n"
            ),
            "src/repro/engine/driver.py": (
                "from .clockwork import wait\n"
                "\n"
                "\n"
                "def run(energy_j):\n"
                "    positional = wait(energy_j)\n"
                "    keyword = wait(delay_s=energy_j)\n"
                "    return positional, keyword\n"
            ),
        },
    )
    findings = lint_rule(root, "unit-consistency")
    assert len(findings) == 2
    for f in findings:
        assert f.path == "src/repro/engine/driver.py"
        assert "'delay_s'" in f.message
        assert "repro.engine.clockwork.wait" in f.message


def test_unit_conversion_via_multiplication_is_exempt():
    source = "solve_ms = wait_s * 1000.0\n"
    assert (
        lint_source(
            source, "src/repro/engine/x.py", ["unit-consistency"]
        )
        == []
    )


# ---------------------------------------------------------------------------
# dead-public-api
# ---------------------------------------------------------------------------


def dead_api_repo(tmp_path: Path, test_body: str) -> Path:
    return write_tree(
        tmp_path,
        {
            "src/repro/__init__.py": "",
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/mod.py": (
                "__all__ = [\"used\", \"dead\"]\n"
                "\n"
                "\n"
                "def used():\n"
                "    return 1\n"
                "\n"
                "\n"
                "def dead():\n"
                "    return 2\n"
            ),
            "tests/test_use.py": test_body,
        },
    )


def test_dead_public_api_flags_unreferenced_export(tmp_path):
    root = dead_api_repo(
        tmp_path,
        "from repro.pkg.mod import used\n\nvalue = used()\n",
    )
    findings = lint_rule(root, "dead-public-api")
    assert len(findings) == 1
    assert "'dead'" in findings[0].message
    assert findings[0].path == "src/repro/pkg/mod.py"
    assert findings[0].line == 8  # the def line, not the __all__ line


def test_dead_public_api_import_alone_is_not_a_reference(tmp_path):
    # importing `dead` without ever naming it again still counts as dead
    root = dead_api_repo(
        tmp_path,
        "from repro.pkg.mod import dead, used\n\nvalue = used()\n",
    )
    findings = lint_rule(root, "dead-public-api")
    assert len(findings) == 1
    assert "'dead'" in findings[0].message


def test_dead_public_api_clean_when_all_exports_referenced(tmp_path):
    root = dead_api_repo(
        tmp_path,
        "from repro.pkg.mod import dead, used\n\n"
        "value = used() + dead()\n",
    )
    assert lint_rule(root, "dead-public-api") == []


def test_dead_public_api_inline_allow(tmp_path):
    root = dead_api_repo(
        tmp_path,
        "from repro.pkg.mod import used\n\nvalue = used()\n",
    )
    mod = root / "src/repro/pkg/mod.py"
    mod.write_text(
        mod.read_text(encoding="utf-8").replace(
            "def dead():",
            "def dead():  # lint: allow[dead-public-api]",
        ),
        encoding="utf-8",
    )
    assert lint_rule(root, "dead-public-api") == []

"""metric-doc-drift: repro.obs metric catalog vs docs/observability.md."""

from pathlib import Path

from repro.analysis import lint_repo

OBS_MODULE = '''\
from .metrics import register_metric

ALPHA = register_metric("repro_alpha_total", "counter", "alpha things")
BETA = register_metric(
    "repro_beta_seconds",
    "histogram",
    "beta latency",
    buckets=(1.0, 5.0),
)
'''


def make_repo(tmp_path: Path, documented=("repro_alpha_total",)) -> Path:
    pkg = tmp_path / "src" / "repro" / "obs"
    pkg.mkdir(parents=True)
    (pkg / "catalog.py").write_text(OBS_MODULE, encoding="utf-8")
    if documented is not None:
        rows = "\n".join(f"| `{n}` | demo |" for n in documented)
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "observability.md").write_text(
            f"# Metrics\n\n| metric | notes |\n|---|---|\n{rows}\n",
            encoding="utf-8",
        )
    return tmp_path


def test_fully_documented_catalog_is_clean(tmp_path):
    root = make_repo(
        tmp_path, documented=("repro_alpha_total", "repro_beta_seconds")
    )
    report = lint_repo(root, rule_ids=["metric-doc-drift"])
    assert report.findings == []
    assert report.exit_code == 0


def test_undocumented_metric_is_flagged(tmp_path):
    root = make_repo(tmp_path)  # beta not documented
    report = lint_repo(root, rule_ids=["metric-doc-drift"])
    (finding,) = report.findings
    assert "'repro_beta_seconds'" in finding.message
    assert "docs/observability.md" in finding.message
    assert finding.path == "src/repro/obs/catalog.py"
    assert report.exit_code == 1


def test_missing_doc_file_is_flagged_once(tmp_path):
    root = make_repo(tmp_path, documented=None)
    report = lint_repo(root, rule_ids=["metric-doc-drift"])
    (finding,) = report.findings
    assert "does not exist" in finding.message


def test_backtick_mention_required(tmp_path):
    # a bare-word mention is not documentation; only `name` counts
    root = make_repo(tmp_path, documented=("repro_alpha_total",))
    doc = root / "docs" / "observability.md"
    doc.write_text(
        doc.read_text(encoding="utf-8")
        + "\nrepro_beta_seconds mentioned without backticks\n",
        encoding="utf-8",
    )
    report = lint_repo(root, rule_ids=["metric-doc-drift"])
    assert len(report.findings) == 1
    assert "'repro_beta_seconds'" in report.findings[0].message


def test_real_repo_catalog_is_documented():
    """The live catalog and the live doc must agree right now."""
    root = Path(__file__).resolve().parents[2]
    report = lint_repo(root, rule_ids=["metric-doc-drift"])
    assert report.findings == []

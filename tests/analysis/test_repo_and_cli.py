"""The gate itself: the repo lints clean, and the CLI exit codes are
wired so CI can block on them."""

import json
from pathlib import Path

import pytest

from repro.analysis import available_rules, lint_repo
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture, in-scope destination inside a pretend checkout)
BAD_FIXTURES = [
    ("rng_bad.py", "src/repro/device/rng_bad.py"),
    ("wall_clock_bad.py", "src/repro/engine/wall_clock_bad.py"),
    ("float_eq_bad.py", "src/repro/core/float_eq_bad.py"),
    ("events_bad.py", "src/repro/engine/events.py"),
    ("async_lock_bad.py", "src/repro/serve/ledger.py"),
]


def test_repo_is_lint_clean():
    """`repro lint` must exit 0 on this very checkout."""
    report = lint_repo(REPO_ROOT)
    assert [f.render() for f in report.findings] == []
    assert report.parse_errors == []
    assert report.stale_baseline == []
    assert report.exit_code == 0
    assert report.files_checked > 50
    assert set(available_rules()) <= set(report.rules_run)


def test_cli_lint_clean_on_repo(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


@pytest.mark.parametrize("fixture,dest", BAD_FIXTURES)
def test_cli_exits_nonzero_on_bad_fixture(tmp_path, fixture, dest, capsys):
    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        (FIXTURES / fixture).read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    assert main(["lint", "--root", str(tmp_path)]) == 1
    assert "error[" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\nT = time.time()\n", encoding="utf-8")
    assert main(["lint", "--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "no-wall-clock"
    assert finding["line"] == 2


def test_cli_list_rules(capsys):
    assert main(["lint", "--root", str(REPO_ROOT), "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in available_rules():
        assert rid in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\nT = time.time()\n", encoding="utf-8")
    assert main(["lint", "--root", str(tmp_path)]) == 1
    assert main(["lint", "--root", str(tmp_path), "--write-baseline"]) == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    assert main(["lint", "--root", str(tmp_path)]) == 0
    capsys.readouterr()


def test_cli_rejects_non_repo_root(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path)]) == 2
    assert "src/repro" in capsys.readouterr().err


def git(cwd, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_cli_changed_scopes_reporting_to_dirty_files(tmp_path, capsys):
    """--changed reports only findings in git-dirty files, while the
    project graph (and the project rules) still see the whole tree."""
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    committed = pkg / "old_clock.py"
    committed.write_text(
        "import time\nT = time.time()\n", encoding="utf-8"
    )
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")

    # full lint sees the committed violation...
    assert main(["lint", "--root", str(tmp_path)]) == 1
    assert "old_clock" in capsys.readouterr().out

    # ...but --changed with a clean tree reports nothing
    assert main(["lint", "--root", str(tmp_path), "--changed"]) == 0
    capsys.readouterr()

    # an untracked violating file is in scope, the committed one is not
    fresh = pkg / "new_clock.py"
    fresh.write_text("import time\nU = time.time()\n", encoding="utf-8")
    assert main(["lint", "--root", str(tmp_path), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "new_clock" in out
    assert "old_clock" not in out


def test_cli_changed_base_diffs_against_merge_base(tmp_path, capsys):
    """--changed --base REF scopes to files changed since REF — the
    CI PR job's view — even when the working tree itself is clean."""
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    old = pkg / "old_clock.py"
    old.write_text("import time\nT = time.time()\n", encoding="utf-8")
    git(tmp_path, "init", "-q", "-b", "main")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "seed")

    git(tmp_path, "checkout", "-qb", "feature")
    new = pkg / "new_clock.py"
    new.write_text("import time\nU = time.time()\n", encoding="utf-8")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-qm", "add clock")

    # committed on the branch => plain --changed sees a clean tree...
    assert main(["lint", "--root", str(tmp_path), "--changed"]) == 0
    capsys.readouterr()
    # ...but diffing against main scopes to the branch's files
    args = ["lint", "--root", str(tmp_path), "--changed", "--base", "main"]
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "new_clock" in out
    assert "old_clock" not in out


def test_cli_changed_outside_git_repo_errors(tmp_path, capsys):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    assert main(["lint", "--root", str(tmp_path), "--changed"]) == 2
    assert "git" in capsys.readouterr().err


def test_cli_version(capsys):
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out

"""The gate itself: the repo lints clean, and the CLI exit codes are
wired so CI can block on them."""

import json
from pathlib import Path

import pytest

from repro.analysis import available_rules, lint_repo
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture, in-scope destination inside a pretend checkout)
BAD_FIXTURES = [
    ("rng_bad.py", "src/repro/device/rng_bad.py"),
    ("wall_clock_bad.py", "src/repro/engine/wall_clock_bad.py"),
    ("float_eq_bad.py", "src/repro/core/float_eq_bad.py"),
    ("events_bad.py", "src/repro/engine/events.py"),
]


def test_repo_is_lint_clean():
    """`repro lint` must exit 0 on this very checkout."""
    report = lint_repo(REPO_ROOT)
    assert [f.render() for f in report.findings] == []
    assert report.parse_errors == []
    assert report.stale_baseline == []
    assert report.exit_code == 0
    assert report.files_checked > 50
    assert set(available_rules()) <= set(report.rules_run)


def test_cli_lint_clean_on_repo(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


@pytest.mark.parametrize("fixture,dest", BAD_FIXTURES)
def test_cli_exits_nonzero_on_bad_fixture(tmp_path, fixture, dest, capsys):
    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        (FIXTURES / fixture).read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    assert main(["lint", "--root", str(tmp_path)]) == 1
    assert "error[" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\nT = time.time()\n", encoding="utf-8")
    assert main(["lint", "--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "no-wall-clock"
    assert finding["line"] == 2


def test_cli_list_rules(capsys):
    assert main(["lint", "--root", str(REPO_ROOT), "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in available_rules():
        assert rid in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text("import time\nT = time.time()\n", encoding="utf-8")
    assert main(["lint", "--root", str(tmp_path)]) == 1
    assert main(["lint", "--root", str(tmp_path), "--write-baseline"]) == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    assert main(["lint", "--root", str(tmp_path)]) == 0
    capsys.readouterr()


def test_cli_rejects_non_repo_root(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path)]) == 2
    assert "src/repro" in capsys.readouterr().err

"""Framework-level behaviour: registry, suppression, fingerprints."""

import pytest

from repro.analysis import (
    Finding,
    Severity,
    available_rules,
    lint_source,
    rule_class,
)

EXPECTED_RULES = {
    "event-schema-sync",
    "metric-doc-drift",
    "no-float-equality",
    "no-unseeded-rng",
    "no-wall-clock",
    "registry-doc-drift",
}


def test_all_expected_rules_registered():
    assert EXPECTED_RULES <= set(available_rules())


def test_every_rule_has_a_description():
    for rid in available_rules():
        cls = rule_class(rid)
        assert cls.id == rid
        assert cls.description


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", "src/repro/core/x.py", ["no-such-rule"])


def test_inline_allow_comment_suppresses():
    flagged = "t = time.time()\n"
    allowed = "t = time.time()  # lint: allow[no-wall-clock]\n"
    prefix = "import time\n"
    module = "src/repro/core/t.py"
    assert len(lint_source(prefix + flagged, module)) == 1
    assert lint_source(prefix + allowed, module) == []


def test_inline_allow_is_per_rule():
    # an allow for a different rule must not silence this one
    source = (
        "import time\n"
        "t = time.time()  # lint: allow[no-float-equality]\n"
    )
    findings = lint_source(source, "src/repro/core/t.py")
    assert [f.rule_id for f in findings] == ["no-wall-clock"]


def test_fingerprint_survives_line_shifts():
    body = "import time\nt = time.time()\n"
    shifted = "import time\n\n\n# a comment\nt = time.time()\n"
    module = "src/repro/core/t.py"
    (a,) = lint_source(body, module)
    (b,) = lint_source(shifted, module)
    assert a.line != b.line
    assert a.fingerprint() == b.fingerprint()


def test_findings_are_sorted_and_renderable():
    source = (
        "import time\n"
        "a = time.time()\n"
        "b = 1.0 == x\n"
        "c = time.time_ns()\n"
    )
    findings = lint_source(source, "src/repro/engine/multi.py")
    assert [f.line for f in findings] == [2, 3, 4]
    for f in findings:
        assert f.severity is Severity.ERROR
        rendered = f.render()
        assert rendered.startswith(f"{f.path}:{f.line}:")
        assert f.rule_id in rendered


def test_finding_to_dict_is_json_shaped():
    f = Finding(
        rule_id="no-wall-clock",
        path="src/repro/core/x.py",
        line=3,
        message="m",
        code="t = time.time()",
    )
    d = f.to_dict()
    assert d["rule"] == "no-wall-clock"
    assert d["severity"] == "error"
    assert d["line"] == 3

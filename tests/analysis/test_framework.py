"""Framework-level behaviour: registry, suppression, fingerprints,
and the rule-table drift gate over the docs."""

from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    FileRule,
    ProjectRule,
    Rule,
    Severity,
    available_rules,
    lint_source,
    rule_class,
)
from repro.analysis.asyncrules import (
    BlockingCallInAsync,
    LockAcrossAwait,
    SharedFleetMutation,
    TaskLeak,
    UnawaitedCoroutine,
)
from repro.analysis.taintrules import (
    EnvDependentConfig,
    HostTimeTaint,
    ImpureScheduler,
    RngTaintEscape,
)
from repro.analysis.rules import (
    BenchPayloadSchema,
    DeadPublicApi,
    EventDispatchExhaustiveness,
    EventSchemaSync,
    MetricDocDrift,
    NoFloatEquality,
    NoPythonLoopOverFleet,
    NoUnseededRng,
    NoWallClock,
    RegistryDocDrift,
    SchedulerContract,
    UnitConsistency,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the complete rule set — id -> implementing class; adding a rule
#: without extending this table (and the docs, see the drift test
#: below) is a test failure by design
EXPECTED_RULES = {
    "bench-payload-schema": BenchPayloadSchema,
    "blocking-call-in-async": BlockingCallInAsync,
    "dead-public-api": DeadPublicApi,
    "env-dependent-config": EnvDependentConfig,
    "event-dispatch-exhaustiveness": EventDispatchExhaustiveness,
    "event-schema-sync": EventSchemaSync,
    "host-time-taint": HostTimeTaint,
    "impure-scheduler": ImpureScheduler,
    "lock-across-await": LockAcrossAwait,
    "metric-doc-drift": MetricDocDrift,
    "no-float-equality": NoFloatEquality,
    "no-python-loop-over-fleet": NoPythonLoopOverFleet,
    "no-unseeded-rng": NoUnseededRng,
    "no-wall-clock": NoWallClock,
    "registry-doc-drift": RegistryDocDrift,
    "rng-taint-escape": RngTaintEscape,
    "scheduler-contract": SchedulerContract,
    "shared-fleet-mutation": SharedFleetMutation,
    "task-leak": TaskLeak,
    "unawaited-coroutine": UnawaitedCoroutine,
    "unit-consistency": UnitConsistency,
}


def test_registry_is_exactly_the_expected_rules():
    assert set(available_rules()) == set(EXPECTED_RULES)
    for rid, cls in EXPECTED_RULES.items():
        assert rule_class(rid) is cls
        assert issubclass(cls, Rule)
        assert issubclass(cls, (FileRule, ProjectRule))


def test_docs_table_lists_every_rule():
    """docs/static-analysis.md must name every registered rule —
    the docs-side half of the registry drift gate."""
    docs = (REPO_ROOT / "docs" / "static-analysis.md").read_text(
        encoding="utf-8"
    )
    for rid in available_rules():
        assert f"`{rid}`" in docs, (
            f"rule {rid!r} is registered but missing from "
            "docs/static-analysis.md"
        )


def test_every_rule_has_a_description():
    for rid in available_rules():
        cls = rule_class(rid)
        assert cls.id == rid
        assert cls.description


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", "src/repro/core/x.py", ["no-such-rule"])


def test_inline_allow_comment_suppresses():
    flagged = "t = time.time()\n"
    allowed = "t = time.time()  # lint: allow[no-wall-clock]\n"
    prefix = "import time\n"
    module = "src/repro/core/t.py"
    assert len(lint_source(prefix + flagged, module)) == 1
    assert lint_source(prefix + allowed, module) == []


def test_inline_allow_is_per_rule():
    # an allow for a different rule must not silence this one
    source = (
        "import time\n"
        "t = time.time()  # lint: allow[no-float-equality]\n"
    )
    findings = lint_source(source, "src/repro/core/t.py")
    assert [f.rule_id for f in findings] == ["no-wall-clock"]


def test_fingerprint_survives_line_shifts():
    body = "import time\nt = time.time()\n"
    shifted = "import time\n\n\n# a comment\nt = time.time()\n"
    module = "src/repro/core/t.py"
    (a,) = lint_source(body, module)
    (b,) = lint_source(shifted, module)
    assert a.line != b.line
    assert a.fingerprint() == b.fingerprint()


def test_findings_are_sorted_and_renderable():
    source = (
        "import time\n"
        "a = time.time()\n"
        "b = 1.0 == x\n"
        "c = time.time_ns()\n"
    )
    findings = lint_source(source, "src/repro/engine/multi.py")
    assert [f.line for f in findings] == [2, 3, 4]
    for f in findings:
        assert f.severity is Severity.ERROR
        rendered = f.render()
        assert rendered.startswith(f"{f.path}:{f.line}:")
        assert f.rule_id in rendered


def test_finding_to_dict_is_json_shaped():
    f = Finding(
        rule_id="no-wall-clock",
        path="src/repro/core/x.py",
        line=3,
        message="m",
        code="t = time.time()",
    )
    d = f.to_dict()
    assert d["rule"] == "no-wall-clock"
    assert d["severity"] == "error"
    assert d["line"] == 3

"""Bad: fire-and-forget tasks with no retained handle.

The event loop keeps only a weak reference to tasks, so these can be
garbage-collected mid-flight and their exceptions are never observed.
"""

import asyncio


async def heartbeat(device_id):
    return device_id


async def launch(device_id):
    asyncio.create_task(heartbeat(device_id))  # handle dropped


async def launch_legacy(device_id):
    task = asyncio.ensure_future(heartbeat(device_id))  # never read
    return device_id

"""Fixture: unit-suffixed names mixing dimensions (all flagged)."""


def total(compute_s, energy_j):
    bad_sum = compute_s + energy_j
    if compute_s > energy_j:
        bad_sum = 0.0
    time_s = energy_j
    acc_ms = 0.0
    acc_ms += compute_s
    return bad_sum, time_s, acc_ms

"""Bad: serve-side code writing fleet columns outside DeviceRegistry.

Direct column stores bypass the registry's bookkeeping and race with
the control loop; the alias through a local name must still be caught.
"""


async def retire(registry, row):
    registry.fleet.alive[row] = False  # direct column store


async def drain_battery(registry, row, joules):
    store = registry.fleet  # alias of the shared store
    store.battery_j[row] = store.battery_j[row] - joules


def reset_capacity(fleet, rows):
    fleet.capacity_j = rows  # rebinding a column wholesale

"""Good: the sanctioned host-timing patterns.

Host cost lives in ``_ms``-suffixed names and event fields (the
documented convention), the virtual clock advances by simulated
durations only, and event timestamps come from ``self.clock_s``.
"""

import time

from repro.engine.events import RoundCompleted


def _elapsed_ms(t0):
    return (time.perf_counter() - t0) * 1e3


class Runner:
    def __init__(self, bus):
        self.bus = bus
        self.clock_s = 0.0

    def finish_round(self, idx, makespan_s):
        t0 = time.perf_counter()
        self.clock_s += makespan_s
        build_ms = _elapsed_ms(t0)
        ev = RoundCompleted(
            round_idx=idx, time_s=self.clock_s, solve_ms=build_ms
        )
        self.bus.emit(ev)

"""Bad: coroutine objects created but never awaited or scheduled."""


async def checkpoint(round_id):
    return round_id


async def run_round(round_id):
    checkpoint(round_id)  # bare statement: body never runs
    return round_id


async def run_batch(round_id):
    pending = checkpoint(round_id)  # assigned, then never read
    return round_id

"""Bad: a registered scheduler caching state on self.

``schedule`` looks pure at its own level; the mutation hides two hops
away in ``_note`` — only interprocedural effect lifting catches it.
(Copied into a mini repo as ``src/repro/sched/impls.py`` by the
impure-scheduler tests.)
"""

from .base import Assignment, Scheduler
from .registry import register


@register("sticky")
class Sticky(Scheduler):
    def __init__(self):
        self._hist = []

    def schedule(self, problem) -> Assignment:
        out = Assignment()
        self._note(out)
        return out

    def _note(self, out):
        self._hist.append(out)

"""Good fixture: control-plane code on the injected clock seam."""

from repro.serve.clock import now


def stamp(now_fn=now):
    # inside repro.serve the seam is the sanctioned clock
    return now_fn() - now()

"""Bad: unseeded-RNG draws laundered into events and the registry.

The draws hide behind a helper return and an instance attribute; by
the time the values reach ``CohortSelected``, ``emit`` and the model
registry's ``commit`` they are several hops from ``default_rng()``.
"""

from numpy.random import default_rng

from repro.engine.events import CohortSelected


def _jitter(scale):
    rng = default_rng()
    return rng.normal() * scale


class Selector:
    def __init__(self, bus, registry):
        self.bus = bus
        self.registry = registry
        self._rng = default_rng()

    def pick(self, idx):
        noise = _jitter(0.5)
        chosen = self._rng.integers(0, 10)
        ev = CohortSelected(round_idx=idx, count=chosen)
        self.bus.emit(noise)
        self.registry.commit(chosen)
        return ev

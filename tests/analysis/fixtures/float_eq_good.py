"""Good fixture: tolerance and ordering comparisons."""

import math


def checks(x, a, b):
    if math.isclose(x, 0.5):
        return 1
    if a <= 0.0:
        return 2
    return int(a) == int(b) and b >= 1.0

"""Bad fixture: host wall-clock reads in simulated-time code."""

import time
from datetime import datetime


def stamp():
    t0 = time.time()
    now = datetime.now()
    return t0, now

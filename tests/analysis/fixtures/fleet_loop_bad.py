"""Bad: Python-level loops over FleetStore columns in a hot path."""


def drain(runner, fleet):
    total = 0.0
    for s in fleet.soc():
        total += s
    sizes = [int(d) for d in fleet.data_size]
    for dev in runner.fleet.as_devices():
        dev.idle(1.0)
    socs = {j: s for j, s in enumerate(fleet.battery_j)}
    return total, sizes, socs

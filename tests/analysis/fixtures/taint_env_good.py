"""Good: env reads confined to an entry layer.

Linted as if at ``src/repro/serve/app.py`` — the bootstrap may read
the environment, but the value is passed onward explicitly and never
reaches the event stream.
"""

import os

from repro.engine.events import RoundCompleted


def bootstrap():
    shard = int(os.environ.get("REPRO_SHARD", "1024"))
    return shard


def announce(bus, idx, clock_s):
    bus.emit(RoundCompleted(round_idx=idx, time_s=clock_s))

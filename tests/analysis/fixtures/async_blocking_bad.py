"""Bad: coroutines calling event-loop-blocking APIs directly."""

import time
import urllib.request


async def pump(interval_s):
    while True:
        time.sleep(interval_s)


async def fetch(url):
    return urllib.request.urlopen(url)


async def snapshot(path):
    with open(path) as fh:
        return fh.read()

"""Good fixture: seeded Generator-era randomness only."""

import numpy as np


def sample(seed: int):
    rng = np.random.default_rng(seed)
    gen = np.random.Generator(np.random.PCG64(seed))
    return rng.random(3), gen.standard_normal(3)

"""Bad fixture: simulation code consuming the serve wall-clock seam."""

from repro.serve import clock
from repro.serve.clock import now


def stamp():
    t0 = clock.now()
    t1 = now()
    return t0, t1

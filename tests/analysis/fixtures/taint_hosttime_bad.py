"""Bad: host-clock values laundered into the simulated domain.

Every ``perf_counter`` read here is legal on its own (host-cost
measurement) — the violations are where the values *end up*: an
``EngineEvent`` field, a raw ``emit`` payload, and virtual-clock
arithmetic, three assignments and a helper call away from the read.
"""

import time

from repro.engine.events import RoundCompleted


def _elapsed_s(t0):
    return time.perf_counter() - t0


class Runner:
    def __init__(self, bus):
        self.bus = bus
        self.clock_s = 0.0
        self._started = time.perf_counter()

    def finish_round(self, idx):
        wall = _elapsed_s(self._started)
        self.clock_s += wall
        ev = RoundCompleted(round_idx=idx, time_s=wall)
        self.bus.emit(ev)
        self.bus.emit({"wall_s": wall})

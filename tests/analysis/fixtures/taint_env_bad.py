"""Bad: environment reads inside the deterministic core.

Configuration must arrive as explicit arguments; reads here make
behaviour machine-dependent, and the tag even flows into the event
stream.
"""

import os
from os import getenv

from repro.engine.events import RoundCompleted


def shard_size():
    return int(os.environ.get("REPRO_SHARD", "1024"))


def debug_mode():
    return getenv("REPRO_DEBUG") is not None


def tag_round(bus, idx):
    tag = os.environ["REPRO_TAG"]
    bus.emit(RoundCompleted(round_idx=idx, note=tag))

"""Good: every spawned task is retained, awaited, or group-scoped."""

import asyncio


async def heartbeat(device_id):
    return device_id


async def launch(tasks, device_id):
    task = asyncio.create_task(heartbeat(device_id))
    tasks.add(task)
    task.add_done_callback(tasks.discard)


async def launch_and_wait(device_id):
    task = asyncio.create_task(heartbeat(device_id))
    return await task


async def launch_grouped(device_ids):
    async with asyncio.TaskGroup() as tg:
        for device_id in device_ids:
            tg.create_task(heartbeat(device_id))

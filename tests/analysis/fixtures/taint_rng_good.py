"""Good: seeded generators, and rebinding as the sanitizer.

``default_rng(seed)`` carries only the seed's taint; rebinding the
scratch unseeded generator to a seeded one *before* any draw means
every value reaching a sink is replayable.
"""

from numpy.random import default_rng

from repro.engine.events import CohortSelected


def _jitter(seed, scale):
    rng = default_rng(seed)
    return rng.normal() * scale


class Selector:
    def __init__(self, bus, registry, seed):
        self.bus = bus
        self.registry = registry
        self.seed = seed
        self._rng = default_rng(seed)

    def pick(self, idx):
        rng = default_rng()  # lint: allow[no-unseeded-rng]
        rng = default_rng(self.seed)
        noise = _jitter(self.seed, 0.5)
        chosen = rng.integers(0, 10)
        ev = CohortSelected(round_idx=idx, count=chosen)
        self.bus.emit(noise)
        self.registry.commit(chosen)
        return ev

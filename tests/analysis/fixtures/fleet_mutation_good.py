"""Good: fleet columns are read freely; writes go through the registry."""


class DeviceRegistry:
    def __init__(self, fleet):
        self.fleet = fleet

    def retire(self, row):
        self.fleet.alive[row] = False  # the registry owns its store

    def drain_battery(self, row, joules):
        self.fleet.battery_j[row] = self.fleet.battery_j[row] - joules


async def survivors(registry):
    return [row for row in range(registry.fleet.size) if registry.fleet.alive[row]]


async def rebind_local(registry, other):
    store = registry.fleet
    store = other  # alias killed before the write
    store.alive[0] = False

"""Bad fixture: every event-schema-sync violation."""

from dataclasses import dataclass
from typing import Callable, ClassVar

__all__ = ["EngineEvent", "GoodEvent"]


class EngineEvent:
    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class GoodEvent(EngineEvent):
    kind: ClassVar[str] = "good"

    round_idx: int


@dataclass(frozen=True)
class MissingKind(EngineEvent):
    round_idx: int


@dataclass(frozen=True)
class DuplicateKind(EngineEvent):
    kind: ClassVar[str] = "good"

    time_s: float


@dataclass(frozen=True)
class BadField(EngineEvent):
    kind: ClassVar[str] = "bad_field"

    callback: Callable[[], None]

"""Good: the same registry, releasing its lock before any suspension.

Same statements as the bad twin, reordered so no await happens
inside the critical section.
"""

import asyncio


class DeviceLedger:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._round = 0

    async def advance(self, settle_s):
        await self._lock.acquire()
        self._round += 1
        self._lock.release()
        await asyncio.sleep(settle_s)  # lock already released
        return self._round

    async def drain(self, queue):
        async with self._lock:
            self._round += 1
        item = await queue.get()  # awaited outside the with block
        return item  # same statements as the bad twin, reordered

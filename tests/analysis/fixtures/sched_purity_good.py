"""Good: a registered scheduler whose schedule() is pure.

Local mutation (building the ranking list) is fine; nothing reachable
from ``self``, a module global or an argument is ever written.
(Copied into a mini repo as ``src/repro/sched/impls.py`` by the
impure-scheduler tests.)
"""

from .base import Assignment, Scheduler
from .registry import register


@register("stateless")
class Stateless(Scheduler):
    def schedule(self, problem) -> Assignment:
        order = self._rank(problem)
        return Assignment(order)

    def _rank(self, problem):
        order = []
        order.append(problem)
        return order

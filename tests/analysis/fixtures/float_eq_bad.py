"""Bad fixture: rounding-dependent float comparisons."""


def checks(x, a, b):
    if x == 0.5:
        return 1
    if a / b != 1.0:
        return 2
    return float(x) == a

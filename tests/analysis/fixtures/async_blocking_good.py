"""Good: async equivalents, and blocking work behind an executor hop.

The executor forms pass the blocking callable as a *reference* —
nothing blocking is called on the event loop itself.
"""

import asyncio
import urllib.request


async def pump(interval_s):
    while True:
        await asyncio.sleep(interval_s)


async def fetch(url):
    return await asyncio.to_thread(fetch_one, url)


async def fetch_via_loop(loop, url):
    return await loop.run_in_executor(None, fetch_one, url)


def fetch_one(url):
    return urllib.request.urlopen(url)

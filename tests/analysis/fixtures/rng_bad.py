"""Bad fixture: every legacy global-state RNG spelling."""

import random

import numpy as np


def sample():
    a = np.random.rand(3)
    rng = np.random.default_rng()
    b = random.random()
    return a, rng, b

"""Good: every coroutine object is awaited, gathered or scheduled."""

import asyncio


async def checkpoint(round_id):
    return round_id


async def run_round(round_id):
    await checkpoint(round_id)
    return round_id


async def run_batch(round_ids):
    pending = [checkpoint(r) for r in round_ids]
    return await asyncio.gather(*pending)


async def run_background(tasks, round_id):
    handle = checkpoint(round_id)
    tasks.append(asyncio.ensure_future(handle))

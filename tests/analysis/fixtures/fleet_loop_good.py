"""Good: vectorized fleet access; per-class loops stay legal."""

import numpy as np


def drain(fleet, idx):
    total = float(fleet.soc(idx).sum())
    bases = [c.time_base_s for c in fleet.classes]
    legacy = [d for d in fleet.as_devices()]  # lint: allow[no-python-loop-over-fleet]
    for _ in range(3):
        total += float(np.sum(fleet.data_size[idx]))
    return total, bases, legacy

"""Fixture: consistent units, explicit conversions (nothing flagged)."""


def total(compute_s, comm_s, energy_j):
    total_s = compute_s + comm_s
    solve_ms = total_s * 1000.0
    if total_s > comm_s:
        total_s = comm_s
    energy_total_j = energy_j + energy_j
    return total_s, solve_ms, energy_total_j

"""Good fixture: telemetry-safe event taxonomy."""

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

__all__ = ["EngineEvent", "RoundDone", "ClientSeen"]


class EngineEvent:
    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RoundDone(EngineEvent):
    kind: ClassVar[str] = "round_done"

    round_idx: int
    makespan_s: float
    accuracy: Optional[float]


@dataclass(frozen=True)
class ClientSeen(EngineEvent):
    kind: ClassVar[str] = "client_seen"

    client_id: int
    shard_counts: Tuple[int, ...]

"""Bad: a serve-shaped registry that suspends while holding its lock.

Statement-for-statement this is the same code as the good twin —
only the ORDER differs, so an AST-level (flow-insensitive) check
cannot tell them apart.
"""

import asyncio


class DeviceLedger:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._round = 0

    async def advance(self, settle_s):
        await self._lock.acquire()
        self._round += 1
        await asyncio.sleep(settle_s)  # suspends with the lock held
        self._lock.release()
        return self._round

    async def drain(self, queue):
        async with self._lock:
            self._round += 1
            item = await queue.get()  # every waiter stalls behind us
        return item

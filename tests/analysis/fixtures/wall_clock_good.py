"""Good fixture: monotonic duration clock only."""

import time


def measure():
    t0 = time.perf_counter()
    return time.perf_counter() - t0

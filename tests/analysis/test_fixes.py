"""Autofix engine: each fixer's rewrite, idempotence, suppression,
good fixtures untouched, and the --fix / --fix --dry-run CLI."""

from pathlib import Path

from repro.analysis import (
    FIXABLE_RULES,
    FixResult,
    apply_fixes,
    fix_source,
    lint_repo,
)
from repro.analysis.fixes import FileFix
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

RNG_MODULE = "src/repro/device/rng.py"
CLOCK_MODULE = "src/repro/engine/clock.py"
EVENTS_MODULE = "src/repro/engine/events.py"
SERVE_MODULE = "src/repro/serve/pump.py"


def test_fixable_rules_are_registered_subset():
    from repro.analysis import available_rules

    assert set(FIXABLE_RULES) <= set(available_rules())


# ---------------------------------------------------------------------------
# individual fixers
# ---------------------------------------------------------------------------


def test_fix_unseeded_rng():
    source = (
        "import numpy as np\n"
        "\n"
        "gen = np.random.default_rng()\n"
        "ok = np.random.default_rng(42)\n"
    )
    fixed, n = fix_source(source, RNG_MODULE)
    assert n == 1
    assert "np.random.default_rng(0)" in fixed
    assert "default_rng(42)" in fixed


def test_fix_wall_clock():
    source = (
        "import time\n"
        "\n"
        "start = time.time()\n"
        "nanos = time.time_ns()\n"
    )
    fixed, n = fix_source(source, CLOCK_MODULE)
    assert n == 2
    assert "time.perf_counter()" in fixed
    assert "time.perf_counter_ns()" in fixed
    assert "time.time()" not in fixed


def test_fix_wall_clock_leaves_bare_calls_alone():
    # `from time import time; time()` needs an import rewrite too,
    # which is not mechanical — the rule still reports it, --fix skips
    source = "from time import time\n\nstart = time()\n"
    fixed, n = fix_source(source, CLOCK_MODULE)
    assert n == 0
    assert fixed == source


def test_fix_missing_all_multiline():
    source = (
        "__all__ = [\n"
        "    \"EngineEvent\",\n"
        "    \"TickEvent\",\n"
        "]\n"
        "\n"
        "\n"
        "class EngineEvent:\n"
        "    pass\n"
        "\n"
        "\n"
        "class TickEvent(EngineEvent):\n"
        "    kind: str = \"tick\"\n"
        "\n"
        "\n"
        "class DoneEvent(EngineEvent):\n"
        "    kind: str = \"done\"\n"
    )
    fixed, n = fix_source(source, EVENTS_MODULE)
    assert n == 1
    assert "    \"DoneEvent\",\n]" in fixed


def test_fix_missing_all_single_line():
    source = (
        "__all__ = [\"EngineEvent\"]\n"
        "\n"
        "\n"
        "class EngineEvent:\n"
        "    pass\n"
        "\n"
        "\n"
        "class DoneEvent(EngineEvent):\n"
        "    kind: str = \"done\"\n"
    )
    fixed, n = fix_source(source, EVENTS_MODULE)
    assert n == 1
    assert "__all__ = [\"EngineEvent\", \"DoneEvent\"]" in fixed


def test_fix_blocking_sleep_rewrites_and_imports_asyncio():
    source = (
        "import time\n"
        "\n"
        "\n"
        "async def pump(interval_s):\n"
        "    time.sleep(interval_s)\n"
    )
    fixed, n = fix_source(source, SERVE_MODULE)
    assert n >= 1
    assert "await asyncio.sleep(interval_s)" in fixed
    assert "import asyncio\n" in fixed
    assert "time.sleep" not in fixed


def test_fix_blocking_sleep_skips_nested_sync_defs():
    # a time.sleep inside a nested *sync* def must not gain an await
    source = (
        "import asyncio\n"
        "import time\n"
        "\n"
        "\n"
        "async def pump(loop):\n"
        "    def blocking_tick():\n"
        "        time.sleep(1)\n"
        "    await loop.run_in_executor(None, blocking_tick)\n"
    )
    fixed, n = fix_source(source, SERVE_MODULE)
    assert n == 0
    assert fixed == source


def test_fix_honours_inline_allow():
    source = (
        "import numpy as np\n"
        "\n"
        "gen = np.random.default_rng()  # lint: allow[no-unseeded-rng]\n"
    )
    fixed, n = fix_source(source, RNG_MODULE)
    assert n == 0
    assert fixed == source


def test_fix_is_scoped_like_the_rules():
    # plots/ is outside the no-wall-clock banned packages
    source = "import time\n\nstart = time.time()\n"
    fixed, n = fix_source(source, "src/repro/plots/render.py")
    assert n == 0
    assert fixed == source


def test_fixes_are_idempotent_on_bad_fixtures():
    for fixture, module in [
        ("rng_bad.py", RNG_MODULE),
        ("wall_clock_bad.py", CLOCK_MODULE),
        ("events_bad.py", EVENTS_MODULE),
        ("async_blocking_bad.py", SERVE_MODULE),
    ]:
        source = (FIXTURES / fixture).read_text(encoding="utf-8")
        once, n1 = fix_source(source, module)
        twice, n2 = fix_source(once, module)
        assert n1 > 0, fixture
        assert n2 == 0, fixture
        assert twice == once, fixture


def test_good_fixtures_are_untouched():
    for fixture in sorted(FIXTURES.glob("*_good.py")):
        source = fixture.read_text(encoding="utf-8")
        fixed, n = fix_source(
            source, f"src/repro/engine/{fixture.name}"
        )
        assert n == 0, fixture.name
        assert fixed == source, fixture.name


# ---------------------------------------------------------------------------
# apply_fixes + CLI
# ---------------------------------------------------------------------------


def clock_repo(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "engine" / "clock.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        "import time\n\nstart = time.time()\n", encoding="utf-8"
    )
    return tmp_path


def test_apply_fixes_dry_run_writes_nothing(tmp_path):
    root = clock_repo(tmp_path)
    target = root / "src" / "repro" / "engine" / "clock.py"
    before = target.read_text(encoding="utf-8")

    result = apply_fixes(root, dry_run=True)
    assert isinstance(result, FixResult)
    assert result.dry_run
    assert result.n_edits == 1
    assert target.read_text(encoding="utf-8") == before

    (fix,) = result.fixes
    assert isinstance(fix, FileFix)
    diff = result.diff()
    assert "a/src/repro/engine/clock.py" in diff
    assert "-start = time.time()" in diff
    assert "+start = time.perf_counter()" in diff


def test_apply_fixes_writes_and_converges(tmp_path):
    root = clock_repo(tmp_path)
    result = apply_fixes(root)
    assert result.n_edits == 1
    # the violation is gone, a second pass has nothing to do
    assert apply_fixes(root).n_edits == 0
    assert lint_repo(root, use_baseline=False).findings == []


def test_cli_fix_dry_run_then_fix(tmp_path, capsys):
    root = clock_repo(tmp_path)
    target = root / "src" / "repro" / "engine" / "clock.py"
    before = target.read_text(encoding="utf-8")

    assert main(["lint", "--root", str(root), "--fix", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "dry run" in out
    assert "+start = time.perf_counter()" in out
    assert target.read_text(encoding="utf-8") == before

    assert main(["lint", "--root", str(root), "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fixed src/repro/engine/clock.py" in out
    assert "perf_counter" in target.read_text(encoding="utf-8")

    assert main(["lint", "--root", str(root)]) == 0
    capsys.readouterr()


def test_cli_dry_run_requires_fix(tmp_path, capsys):
    root = clock_repo(tmp_path)
    assert main(["lint", "--root", str(root), "--dry-run"]) == 2
    assert "--fix" in capsys.readouterr().err

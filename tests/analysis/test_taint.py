"""Engine-level tests for the interprocedural taint lattice.

These drive :mod:`repro.analysis.taint` directly — sources,
propagation through containers and tuple unpacking, the seeded
generator and ``_ms`` sanitizers, flow-sensitive kills, summary
resolution over both providers, and the documented cycle cut-off —
independently of the reporting rules layered on top.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Dict, List

from repro.analysis import (
    FileContext,
    build_cfg,
    build_project,
    solve_forward,
    unit_facts,
)
from repro.analysis.taint import (
    ENV,
    EMPTY_SUMMARY,
    HOST_TIME,
    ID_ADDR,
    ITER_ORDER,
    RNG,
    TAINT_KINDS,
    FnTaint,
    LocalSummaries,
    ProjectSummaries,
    SummaryProvider,
    TaintEngine,
    TaintFlow,
    TaintMap,
    class_attr_taints,
    project_summaries,
    summaries_for,
)


def _ctx(source: str, module: str = "src/repro/core/mod.py") -> FileContext:
    source = textwrap.dedent(source)
    return FileContext(
        module=module, source=source, tree=ast.parse(source)
    )


def _func(ctx: FileContext, name: str, owner: str = None):
    body = ctx.tree.body
    if owner is not None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == owner:
                body = stmt.body
                break
    for stmt in body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == name
        ):
            return stmt
    raise AssertionError(f"no function {name!r}")


def returned_taints(
    source: str, func: str = "f", owner: str = None
) -> List[TaintMap]:
    """Flow-sensitive taint of each ``return`` expression, in order."""
    ctx = _ctx(source)
    node = _func(ctx, func, owner)
    engine = TaintEngine(ctx, owner)
    seeds: Dict[str, TaintMap] = {}
    if owner is not None:
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == owner:
                seeds = class_attr_taints(ctx, stmt, engine.summaries)
    flow = TaintFlow(engine, seed_names=seeds)
    cfg = build_cfg(node)
    entry = solve_forward(cfg, flow)
    out: List[TaintMap] = []
    for block in cfg.blocks:
        for fact, unit in unit_facts(
            flow, cfg, block.idx, entry[block.idx]
        ):
            if isinstance(unit, ast.Return) and unit.value is not None:
                out.append(
                    engine.expr_taint(unit.value, flow.lookup_for(fact))
                )
    return out


def kinds(taint: TaintMap) -> set:
    return set(taint)


# -- sources -----------------------------------------------------------------


def test_source_table_covers_every_kind():
    assert TAINT_KINDS == (HOST_TIME, RNG, ENV, ID_ADDR, ITER_ORDER)
    (t,) = returned_taints(
        "import time\n\n\ndef f():\n    return time.perf_counter()\n"
    )
    assert kinds(t) == {HOST_TIME}
    (t,) = returned_taints(
        "import os\n\n\ndef f():\n    return os.getenv('X')\n"
    )
    assert kinds(t) == {ENV}
    (t,) = returned_taints("def f(x):\n    return id(x)\n")
    assert kinds(t) == {ID_ADDR}
    (t,) = returned_taints("def f():\n    return {1, 2, 3}\n")
    assert kinds(t) == {ITER_ORDER}
    (t,) = returned_taints(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    assert kinds(t) == {RNG}


def test_serve_clock_seam_is_a_host_time_source():
    (t,) = returned_taints(
        """
        from repro.serve import clock


        def f():
            return clock.now()
        """
    )
    assert kinds(t) == {HOST_TIME}


# -- propagation -------------------------------------------------------------


def test_tuple_unpack_is_pairwise_precise():
    source = """
        import time


        def f():
            a, b = time.perf_counter(), 1.0
            return a


        def g():
            a, b = time.perf_counter(), 1.0
            return b
    """
    (ta,) = returned_taints(source, "f")
    (tb,) = returned_taints(source, "g")
    assert kinds(ta) == {HOST_TIME}
    assert kinds(tb) == set()


def test_unpack_from_opaque_value_taints_every_target():
    (t,) = returned_taints(
        """
        import time


        def f():
            pair = (time.perf_counter(), 1.0)
            a, b = pair
            return b
        """
    )
    # non-literal RHS: no element mapping, so the whole taint spreads
    assert kinds(t) == {HOST_TIME}


def test_taint_flows_through_containers_and_subscripts():
    (t,) = returned_taints(
        """
        import time


        def f():
            t0 = time.perf_counter()
            box = {"wall": t0}
            xs = [box]
            return xs[0]
        """
    )
    assert kinds(t) == {HOST_TIME}
    chain = [s.label for s in t[HOST_TIME]]
    assert chain[0] == "time.perf_counter"
    assert "xs" in chain


def test_branch_join_is_a_may_union():
    (t,) = returned_taints(
        """
        import time


        def f(fast):
            if fast:
                v = 0.0
            else:
                v = time.perf_counter()
            return v
        """
    )
    assert kinds(t) == {HOST_TIME}


def test_walrus_in_branch_header_binds():
    returns = returned_taints(
        """
        import time


        def f():
            if (t0 := time.perf_counter()) > 0:
                return t0
            return 0.0
        """
    )
    # one return per branch: the walrus target is tainted inside the
    # taken branch, the constant fallthrough stays clean
    assert sorted(kinds(t) == {HOST_TIME} for t in returns) == [
        False,
        True,
    ]


# -- sanitizers --------------------------------------------------------------


def test_seeded_generator_rebind_sanitizes_later_draws():
    clean = """
        from numpy.random import default_rng


        def f(seed):
            rng = default_rng()
            rng = default_rng(seed)
            x = rng.normal()
            return x
    """
    dirty = """
        from numpy.random import default_rng


        def f(seed):
            rng = default_rng()
            x = rng.normal()
            rng = default_rng(seed)
            return x
    """
    (t_clean,) = returned_taints(clean)
    (t_dirty,) = returned_taints(dirty)
    # same statement multiset — only the flow-sensitive order differs
    assert kinds(t_clean) == set()
    assert kinds(t_dirty) == {RNG}


def test_order_insensitive_folds_strip_iter_order():
    source = """
        def f(xs):
            s = set(xs)
            return sorted(s)


        def g(xs):
            s = set(xs)
            return len(s)


        def h(xs):
            s = set(xs)
            return s
    """
    (t,) = returned_taints(source, "f")
    assert ITER_ORDER not in t
    (t,) = returned_taints(source, "g")
    assert ITER_ORDER not in t
    (t,) = returned_taints(source, "h")
    assert ITER_ORDER in t


def test_ms_binding_stops_host_time():
    (t,) = returned_taints(
        """
        import time


        def f(t0):
            solve_ms = (time.perf_counter() - t0) * 1e3
            return solve_ms
        """
    )
    assert kinds(t) == set()


# -- summaries ---------------------------------------------------------------


def test_local_summary_carries_source_and_param_flow():
    ctx = _ctx(
        """
        import time


        def lag(t0):
            return time.perf_counter() - t0
        """
    )
    provider = summaries_for(ctx)
    assert isinstance(provider, LocalSummaries)
    assert isinstance(provider, SummaryProvider)
    summary = provider.get("lag")
    assert isinstance(summary, FnTaint)
    assert HOST_TIME in summary.returns_map()
    assert summary.param_flow == frozenset({0})


def test_ms_named_function_summary_is_sanctioned():
    ctx = _ctx(
        """
        import time


        def build_ms(t0):
            return (time.perf_counter() - t0) * 1e3


        def plain():
            return 3.0
        """
    )
    provider = LocalSummaries(ctx)
    assert HOST_TIME not in provider.get("build_ms").returns_map()
    assert provider.get("plain") is EMPTY_SUMMARY


def test_helper_laundering_resolves_through_local_summaries():
    (t,) = returned_taints(
        """
        import time


        def _wall():
            return time.perf_counter()


        def f():
            v = _wall()
            return v
        """
    )
    assert kinds(t) == {HOST_TIME}


def test_bound_method_laundering_resolves_via_self():
    (t,) = returned_taints(
        """
        import time


        class Prof:
            def _read(self):
                return time.perf_counter()

            def snap(self):
                return self._read()
        """,
        func="snap",
        owner="Prof",
    )
    assert kinds(t) == {HOST_TIME}


def test_recursive_cycle_terminates_and_underapproximates():
    ctx = _ctx(
        """
        import time


        def ping(n):
            if n:
                return pong(n - 1)
            return time.perf_counter()


        def pong(n):
            return ping(n)
        """
    )
    provider = LocalSummaries(ctx)
    # the entry function still reports its own source...
    assert HOST_TIME in provider.get("ping").returns_map()
    # ...while the back edge resolved to the empty summary — the
    # documented cycle blind spot (under-approximation, not divergence)
    assert provider.get("pong").returns_map() == {}


def test_project_summaries_resolve_across_modules(tmp_path):
    files = {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/timing.py": (
            "import time\n"
            "\n"
            "\n"
            "def wall():\n"
            "    return time.perf_counter()\n"
        ),
        "src/repro/core/use.py": (
            "from .timing import wall\n"
            "\n"
            "\n"
            "def grab():\n"
            "    return wall()\n"
        ),
    }
    paths = []
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
        paths.append(path)
    project, errors = build_project(tmp_path, paths)
    assert errors == []
    provider = project_summaries(project)
    assert isinstance(provider, ProjectSummaries)
    # cached: the project context hands back one shared provider
    assert project_summaries(project) is provider
    wall = provider.get("repro.core.timing.wall")
    assert HOST_TIME in wall.returns_map()
    grab = provider.get("repro.core.use.grab")
    assert HOST_TIME in grab.returns_map()


# -- class attribute seeds ---------------------------------------------------


def test_class_attr_taints_cross_method():
    ctx = _ctx(
        """
        import time


        class Prof:
            def start(self):
                self._t0 = time.perf_counter()

            def stop(self):
                return self._t0
        """
    )
    cls = ctx.tree.body[-1]
    seeds = class_attr_taints(ctx, cls)
    assert set(seeds) == {"self._t0"}
    assert HOST_TIME in seeds["self._t0"]
    (t,) = returned_taints(ctx.source, func="stop", owner="Prof")
    assert kinds(t) == {HOST_TIME}


def test_class_attr_ms_convention_is_sanctioned():
    ctx = _ctx(
        """
        import time


        class Prof:
            def start(self):
                self.build_ms = time.perf_counter() * 1e3
        """
    )
    cls = ctx.tree.body[-1]
    assert class_attr_taints(ctx, cls) == {}

"""bench-payload-schema: committed BENCH_*.json payloads and the
profiler phase table must stay trustworthy."""

import json
from pathlib import Path

from repro.analysis import lint_repo
from repro.analysis.rules import BenchPayloadSchema

INSTRUMENTED = '''\
from ..obs.prof import PROFILER


def run_round(scheduler, instance):
    with PROFILER.phase("solve"):
        return scheduler.schedule(instance)


def micro_probe(prof):
    # a *local* profiler is exempt: only the global PROFILER names
    # form the documented phase surface
    with prof.phase("x"):
        pass
'''


def make_repo(
    tmp_path: Path,
    payload=None,
    payload_text=None,
    documented=("solve",),
) -> Path:
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "runner.py").write_text(INSTRUMENTED, encoding="utf-8")
    if payload is not None:
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
    if payload_text is not None:
        (tmp_path / "BENCH_demo.json").write_text(
            payload_text, encoding="utf-8"
        )
    if documented is not None:
        docs = tmp_path / "docs"
        docs.mkdir()
        rows = "\n".join(f"| `{n}` | demo |" for n in documented)
        (docs / "observability.md").write_text(
            f"# Phases\n\n| phase | notes |\n|---|---|\n{rows}\n",
            encoding="utf-8",
        )
    return tmp_path


def _lint(root):
    return lint_repo(root, rule_ids=["bench-payload-schema"])


def test_compliant_repo_is_clean(tmp_path):
    root = make_repo(
        tmp_path, payload={"schema": 1, "git_sha": "abc", "metrics": {}}
    )
    report = _lint(root)
    assert report.findings == []
    assert report.exit_code == 0


def test_missing_schema_and_git_sha_flagged(tmp_path):
    root = make_repo(tmp_path, payload={"metrics": {}})
    report = _lint(root)
    assert len(report.findings) == 2
    messages = " ".join(f.message for f in report.findings)
    assert "'schema'" in messages and "'git_sha'" in messages
    assert all(f.path == "BENCH_demo.json" for f in report.findings)
    assert report.exit_code == 1


def test_invalid_json_payload_flagged(tmp_path):
    root = make_repo(tmp_path, payload_text="not json {")
    (finding,) = _lint(root).findings
    assert "not valid JSON" in finding.message


def test_non_object_payload_flagged(tmp_path):
    root = make_repo(tmp_path, payload_text="[1, 2, 3]")
    (finding,) = _lint(root).findings
    assert "JSON object" in finding.message


def test_undocumented_phase_flagged(tmp_path):
    root = make_repo(tmp_path, documented=())
    (finding,) = _lint(root).findings
    assert "'solve'" in finding.message
    assert "docs/observability.md" in finding.message
    assert finding.path == "src/repro/engine/runner.py"


def test_missing_doc_file_flags_each_phase(tmp_path):
    root = make_repo(tmp_path, documented=None)
    (finding,) = _lint(root).findings
    assert "'solve'" in finding.message


def test_local_profiler_phase_names_are_exempt(tmp_path):
    # "x" (via the local `prof`) never needs documentation
    root = make_repo(tmp_path, documented=("solve",))
    assert _lint(root).findings == []


def test_inline_suppression_honoured(tmp_path):
    root = make_repo(tmp_path, documented=())
    src = root / "src" / "repro" / "engine" / "runner.py"
    src.write_text(
        src.read_text(encoding="utf-8").replace(
            'with PROFILER.phase("solve"):',
            'with PROFILER.phase("solve"):'
            "  # lint: allow[bench-payload-schema]",
        ),
        encoding="utf-8",
    )
    assert _lint(root).findings == []


def test_rule_identity():
    assert BenchPayloadSchema.id == "bench-payload-schema"
    assert BenchPayloadSchema.description


def test_real_repo_is_compliant():
    """The live BENCH_*.json files and phase table must agree now."""
    root = Path(__file__).resolve().parents[2]
    report = lint_repo(root, rule_ids=["bench-payload-schema"])
    assert report.findings == []

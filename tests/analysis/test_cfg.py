"""Golden tests for the per-function control-flow graphs.

Each test parses a small function, builds its CFG and compares the
deterministic :meth:`CFG.dump` text byte-for-byte against a golden
captured here.  The shapes cover the lowering cases the async rule
pack depends on: branches, nested loops with break/continue,
try/except/finally, and async with / async for suspension edges.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import (
    CFG,
    SUSPENSION_NODES,
    BasicBlock,
    Edge,
    build_cfg,
    contains_suspension,
    iter_function_cfgs,
)

# ---------------------------------------------------------------------------
# sources


def _cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


BRANCHY = """
def branchy(x):
    if x > 0:
        y = x
    else:
        y = -x
    return y
"""

BRANCHY_GOLDEN = """\
cfg branchy
B0 <entry>:
  ? if x > 0
  -> B3 [true]
  -> B4 [false]
B1 <exit>:
B2 <if.after>:
  return y
  -> B1 [return]
B3 <if.then>:
  y = x
  -> B2 [next]
B4 <if.else>:
  y = -x
  -> B2 [next]
B5 <dead>:
  -> B1 [next]"""


LOOPY = """
def loopy(n):
    total = 0
    for i in range(n):
        if i % 2:
            continue
        total += i
    while total > 10:
        total -= 1
        if total == 42:
            break
    return total
"""

LOOPY_GOLDEN = """\
cfg loopy
B0 <entry>:
  total = 0
  -> B2 [next]
B1 <exit>:
B2 <for.head>:
  ? for i in range(n)
  -> B3 [false]
  -> B4 [true]
B3 <for.after>:
  -> B8 [next]
B4 <for.body>:
  ? if i % 2
  -> B5 [false]
  -> B6 [true]
B5 <if.after>:
  total += i
  -> B2 [loop]
B6 <if.then>:
  continue
  -> B2 [continue]
B7 <dead>:
  -> B5 [next]
B8 <while.head>:
  ? while total > 10
  -> B9 [false]
  -> B10 [true]
B9 <while.after>:
  return total
  -> B1 [return]
B10 <while.body>:
  total -= 1
  ? if total == 42
  -> B11 [false]
  -> B12 [true]
B11 <if.after>:
  -> B8 [loop]
B12 <if.then>:
  break
  -> B9 [break]
B13 <dead>:
  -> B11 [next]
B14 <dead>:
  -> B1 [next]"""


GUARDED = """
def guarded(path):
    try:
        fh = open(path)
    except OSError:
        return None
    finally:
        note()
    return fh
"""

GUARDED_GOLDEN = """\
cfg guarded
B0 <entry>:
  -> B3 [next]
B1 <exit>:
B2 <try.after>:
  return fh
  -> B1 [return]
B3 <try.body>:
  fh = open(path)
  -> B4 [next]
  -> B5 [except]
B4 <try.finally>:
  note()
  -> B2 [finally]
B5 <try.except>:
  return None
  -> B1 [return]
B6 <dead>:
  -> B4 [next]
B7 <dead>:
  -> B1 [next]"""


SERVE_ROUND = """
async def serve_round(lock, queue, stream):
    async with lock:
        batch = await queue.get()
    async for extra in stream():
        batch.append(extra)
    return batch
"""

SERVE_ROUND_GOLDEN = """\
cfg serve_round [async]
B0 <entry>:
  ? async with lock
  -> B2 [with] !suspend
B1 <exit>:
B2 <with.body>:
  batch = await queue.get()
  -> B3 [next] !suspend
B3 <resume>:
  <exit with lock>
  -> B4 [next] !suspend
B4 <with.after>:
  -> B5 [next]
B5 <for.head>:
  ? async for extra in stream()
  -> B6 [false] !suspend
  -> B7 [true] !suspend
B6 <for.after>:
  return batch
  -> B1 [return]
B7 <for.body>:
  batch.append(extra)
  -> B5 [loop]
B8 <dead>:
  -> B1 [next]"""


# ---------------------------------------------------------------------------
# golden dumps


def test_branchy_golden():
    assert _cfg(BRANCHY).dump() == BRANCHY_GOLDEN


def test_loopy_golden():
    assert _cfg(LOOPY).dump() == LOOPY_GOLDEN


def test_guarded_golden():
    assert _cfg(GUARDED).dump() == GUARDED_GOLDEN


def test_serve_round_golden():
    assert _cfg(SERVE_ROUND).dump() == SERVE_ROUND_GOLDEN


# ---------------------------------------------------------------------------
# structural properties


def test_entry_and_exit_are_fixed_blocks():
    cfg = _cfg(BRANCHY)
    assert cfg.entry == 0
    assert cfg.exit == 1
    exit_block = cfg.blocks[cfg.exit]
    assert isinstance(exit_block, BasicBlock)
    assert exit_block.units == []


def test_suspension_edges_only_on_async_constructs():
    sync = _cfg(LOOPY)
    assert sync.suspension_edges() == []
    coro = _cfg(SERVE_ROUND)
    kinds = sorted({e.kind for e in coro.suspension_edges()})
    assert kinds == ["false", "next", "true", "with"]
    for edge in coro.suspension_edges():
        assert isinstance(edge, Edge) and edge.suspends


def test_rpo_starts_at_entry_and_covers_reachable_blocks():
    cfg = _cfg(LOOPY)
    order = cfg.rpo()
    assert order[0] == cfg.entry
    # every non-dead block is reachable from the entry
    dead = {b.idx for b in cfg.blocks if b.label == "dead"}
    assert set(order) == {b.idx for b in cfg.blocks} - dead


def test_nested_defs_are_not_lowered_into_enclosing_cfg():
    src = """
    def outer():
        def inner():
            return 1
        return inner
    """
    cfg = _cfg(src)
    dump = cfg.dump()
    assert "def inner" in dump  # the def statement itself is a unit
    assert "return 1" not in dump  # but its body is a separate scope


def test_iter_function_cfgs_yields_all_functions():
    tree = ast.parse(
        textwrap.dedent(BRANCHY) + textwrap.dedent(SERVE_ROUND)
    )
    names = [func.name for func, _ in iter_function_cfgs(tree)]
    assert names == ["branchy", "serve_round"]


def test_contains_suspension_matches_suspension_nodes():
    expr = ast.parse("async def f():\n    await g()\n").body[0]
    assert isinstance(expr, ast.AsyncFunctionDef)
    assert contains_suspension(expr.body[0])
    assert all(issubclass(n, ast.expr) for n in SUSPENSION_NODES)

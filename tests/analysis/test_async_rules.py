"""Fixture-pair tests for the five flow-sensitive async-safety rules.

Each rule has a ``*_bad.py`` fixture that must fire and a ``*_good.py``
twin that must stay clean.  The lock pair is the seeded-bug demo: the
two files contain the *same statements in a different order*, which is
exactly the distinction an AST-level (flow-insensitive) matcher cannot
draw — only the CFG/dataflow engine separates them.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.asyncrules import (
    BlockingCallInAsync,
    LockAcrossAwait,
    SharedFleetMutation,
    TaskLeak,
    UnawaitedCoroutine,
)
from repro.analysis.runner import lint_repo, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

# (fixture stem, rule id, findings expected in the bad twin)
PAIRS = [
    ("async_blocking", BlockingCallInAsync.id, 3),
    ("async_unawaited", UnawaitedCoroutine.id, 2),
    ("async_lock", LockAcrossAwait.id, 2),
    ("async_taskleak", TaskLeak.id, 2),
    ("fleet_mutation", SharedFleetMutation.id, 3),
]


def _lint_fixture(stem: str, kind: str):
    source = (FIXTURES / f"{stem}_{kind}.py").read_text()
    module = f"src/repro/serve/{stem}_{kind}.py"
    return source, lint_source(source, module)


@pytest.mark.parametrize("stem,rule_id,count", PAIRS)
def test_bad_fixture_fires(stem, rule_id, count):
    _, findings = _lint_fixture(stem, "bad")
    hits = [f for f in findings if f.rule_id == rule_id]
    assert len(hits) == count, [f.message for f in findings]


@pytest.mark.parametrize("stem,rule_id,count", PAIRS)
def test_good_fixture_is_clean(stem, rule_id, count):
    _, findings = _lint_fixture(stem, "good")
    assert [f for f in findings if f.rule_id == rule_id] == []


def test_lock_pair_differs_only_in_statement_order():
    """The seeded-bug demo: same statement multiset, different verdict."""
    bad, _ = _lint_fixture("async_lock", "bad")
    good, _ = _lint_fixture("async_lock", "good")

    def stmt_lines(src: str) -> list:
        stripped = (
            line.split("#")[0].strip() for line in src.splitlines()
        )
        return sorted(
            line
            for line in stripped
            if line.startswith(
                ("await", "self._round", "self._lock", "item =", "return")
            )
        )

    assert stmt_lines(bad) == stmt_lines(good)


def test_lock_finding_lands_on_the_suspension_point():
    source, findings = _lint_fixture("async_lock", "bad")
    hits = [f for f in findings if f.rule_id == LockAcrossAwait.id]
    flagged = {source.splitlines()[f.line - 1].strip() for f in hits}
    # the await under the held lock is flagged, not the acquire itself
    assert any("asyncio.sleep" in line for line in flagged)
    assert any("queue.get" in line for line in flagged)
    assert not any(".acquire" in line for line in flagged)


def test_inline_allow_suppresses_each_async_rule():
    source = textwrap.dedent(
        """
        import asyncio
        import time


        async def slow():  # noqa: demo
            time.sleep(1)  # lint: allow[blocking-call-in-async]
            task = asyncio.create_task(slow())  # lint: allow[task-leak]
        """
    )
    findings = lint_source(source, "src/repro/serve/demo.py")
    assert [f for f in findings if f.rule_id == BlockingCallInAsync.id] == []
    assert [f for f in findings if f.rule_id == TaskLeak.id] == []


def test_rules_stay_out_of_scope_outside_src_repro():
    source, _ = _lint_fixture("async_blocking", "bad")
    findings = lint_source(source, "examples/scratch.py")
    assert [f for f in findings if f.rule_id == BlockingCallInAsync.id] == []


# ---------------------------------------------------------------------------
# transitive blocking through the project call graph


def test_blocking_call_is_reported_transitively(tmp_path):
    pkg = tmp_path / "src" / "repro" / "serve"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "io_helpers.py").write_text(
        textwrap.dedent(
            """
            import time


            def backoff(delay_s):
                time.sleep(delay_s)


            def retry_forever(delay_s):
                backoff(delay_s)
            """
        )
    )
    (pkg / "loop.py").write_text(
        textwrap.dedent(
            """
            from .io_helpers import retry_forever


            async def drive():
                retry_forever(0.1)
            """
        )
    )
    report = lint_repo(tmp_path, use_baseline=False)
    hits = [
        f
        for f in report.findings
        if f.rule_id == BlockingCallInAsync.id
    ]
    assert len(hits) == 1
    assert hits[0].path.endswith("loop.py")
    assert "retry_forever -> backoff -> time.sleep" in hits[0].message


def test_blocking_call_through_two_bound_method_hops(tmp_path):
    """`self.` dispatch must resolve through the class-aware call
    graph: the coroutine blocks two method hops away."""
    pkg = tmp_path / "src" / "repro" / "serve"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "worker.py").write_text(
        textwrap.dedent(
            """
            import time


            class Worker:
                async def run(self):
                    self._step()

                def _step(self):
                    self._io()

                def _io(self):
                    time.sleep(0.1)
            """
        )
    )
    report = lint_repo(tmp_path, use_baseline=False)
    hits = [
        f
        for f in report.findings
        if f.rule_id == BlockingCallInAsync.id
    ]
    assert len(hits) == 1
    assert hits[0].path.endswith("worker.py")
    assert "_step -> _io -> time.sleep" in hits[0].message

"""Purity inference: the certificate behind ``impure-scheduler``.

Exercises :mod:`repro.analysis.purity` directly — direct and aliased
``self`` writes, argument and global mutation, interprocedural effect
lifting with its call-site chains, recursion termination, and async
functions — on single-file contexts (the ``LocalSummaries`` resolver).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import FileContext
from repro.analysis.purity import (
    MUTATOR_METHODS,
    PurityIndex,
    PuritySummary,
    purity_index_for,
)


def summary(source: str, key: str) -> PuritySummary:
    source = textwrap.dedent(source)
    ctx = FileContext(
        module="src/repro/sched/mod.py",
        source=source,
        tree=ast.parse(source),
    )
    index = purity_index_for(ctx)
    assert isinstance(index, PurityIndex)
    return index.get(key)


def effects(source: str, key: str) -> set:
    return set(summary(source, key).effects)


def test_pure_function_certifies():
    s = summary(
        """
        def rank(problem):
            order = []
            order.append(problem)
            order.sort()
            return order
        """,
        "rank",
    )
    assert isinstance(s, PuritySummary)
    # mutating locals is pure: only non-local state counts
    assert s.is_pure


def test_self_attribute_writes():
    src = """
        class S:
            def schedule(self, problem):
                self._cache = problem
                self.count += 1
                self._by_id[0] = problem
                del self._stale
    """
    assert effects(src, "S.schedule") == {
        ("self", "_cache"),
        ("self", "count"),
        ("self", "_by_id"),
        ("self", "_stale"),
    }


def test_mutator_method_on_self_state():
    assert "append" in MUTATOR_METHODS and "popleft" in MUTATOR_METHODS
    src = """
        class S:
            def schedule(self, problem):
                self._hist.append(problem)
                return problem
    """
    assert effects(src, "S.schedule") == {("self", "_hist")}


def test_alias_of_self_state_is_tracked():
    src = """
        class S:
            def schedule(self, problem):
                rows = self._rows
                rows.append(problem)
                return rows
    """
    eff = effects(src, "S.schedule")
    assert len(eff) == 1
    (kind, _detail) = next(iter(eff))
    assert kind == "self"


def test_argument_mutation():
    src = """
        def f(weights, out):
            weights.sort()
            out[0] = 1.0
    """
    assert effects(src, "f") == {
        ("param", "weights"),
        ("param", "out"),
    }


def test_global_mutation():
    src = """
        CACHE = {}


        def remember(k, v):
            CACHE[k] = v


        def bump(n):
            global COUNT
            COUNT = n
    """
    assert effects(src, "remember") == {("global", "CACHE")}
    assert effects(src, "bump") == {("global", "COUNT")}


def test_interprocedural_effect_lifting_with_chain():
    src = """
        class Sticky:
            def schedule(self, problem):
                out = [problem]
                self._note(out)
                return out

            def _note(self, out):
                self._hist.append(out)
    """
    s = summary(src, "Sticky.schedule")
    assert s.effects == frozenset({("self", "_hist")})
    chain = s.chain_for(("self", "_hist"))
    assert [step.label for step in chain] == [
        "_note()",
        "self._hist.append",
    ]


def test_recursion_terminates():
    src = """
        class S:
            def schedule(self, problem, depth=0):
                self._seen = problem
                if depth:
                    self.schedule(problem, depth - 1)
                return problem
    """
    assert effects(src, "S.schedule") == {("self", "_seen")}


def test_unresolvable_calls_are_assumed_pure():
    src = """
        def f(problem, sink):
            sink.send(problem)
            mystery(problem)
            return problem
    """
    # `send` is no known mutator and `mystery` cannot be resolved:
    # unknown is never impure (the documented false-negative trade)
    assert summary(src, "f").is_pure


def test_async_functions_are_inferred_too():
    src = """
        class Loop:
            async def tick(self):
                local = []
                local.append(1)
                return local

            async def bump(self):
                self._n += 1
    """
    assert summary(src, "Loop.tick").is_pure
    assert effects(src, "Loop.bump") == {("self", "_n")}

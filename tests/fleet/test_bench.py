"""The fleet n-sweep: rows, the committed JSON schema, the table."""

import json

import pytest

from repro.fleet import (
    DEFAULT_BENCH_SCHEDULERS,
    DEFAULT_NS,
    FleetBenchRow,
    bench_fleet,
    format_bench,
    git_sha,
    write_bench,
)

from .conftest import toy_classes


@pytest.fixture(scope="module")
def rows():
    return bench_fleet(
        ns=(50, 200),
        schedulers=("proportional", "equal"),
        rounds=2,
        cohort=16,
        classes=toy_classes(),
    )


class TestDefaults:
    def test_default_sweep_is_the_issue_decades(self):
        assert tuple(DEFAULT_NS) == (
            100,
            1_000,
            10_000,
            100_000,
            1_000_000,
        )
        assert tuple(DEFAULT_BENCH_SCHEDULERS) == (
            "proportional",
            "fed_lbap",
        )


class TestBenchFleet:
    def test_one_row_per_cell(self, rows):
        assert [(r.n, r.scheduler) for r in rows] == [
            (50, "proportional"),
            (50, "equal"),
            (200, "proportional"),
            (200, "equal"),
        ]

    def test_row_contents(self, rows):
        for r in rows:
            assert isinstance(r, FleetBenchRow)
            assert r.cohort == 16
            assert r.rounds == 2
            assert r.build_ms >= 0
            assert r.solve_ms >= 0
            assert r.round_ms > 0
            assert r.rounds_per_sec > 0
            assert r.makespan_s > 0
            assert r.energy_j > 0

    def test_cohort_caps_at_population(self):
        (row,) = bench_fleet(
            ns=(8,),
            schedulers=("proportional",),
            rounds=1,
            cohort=512,
            classes=toy_classes(),
        )
        assert row.cohort == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="rounds"):
            bench_fleet(ns=(8,), rounds=0, classes=toy_classes())
        with pytest.raises(ValueError, match="cohort"):
            bench_fleet(ns=(8,), cohort=0, classes=toy_classes())


class TestWriteBench:
    def test_schema(self, rows, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        doc = write_bench(rows, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert on_disk["schema"] == 1
        assert on_disk["git_sha"] == git_sha()
        results = on_disk["results"]
        assert len(results) == len(rows)
        assert set(results[0]) == {
            "n",
            "scheduler",
            "cohort",
            "rounds",
            "build_ms",
            "solve_ms",
            "round_ms",
            "rounds_per_sec",
            "makespan_s",
            "energy_j",
        }

    def test_explicit_sha_wins(self, rows, tmp_path):
        doc = write_bench(rows, tmp_path / "b.json", sha="abc123")
        assert doc["git_sha"] == "abc123"

    def test_git_sha_of_this_repo_is_a_commit(self):
        sha = git_sha()
        assert sha == "unknown" or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_git_sha_outside_a_repo_is_unknown(self, tmp_path):
        assert git_sha(root=tmp_path) == "unknown"


class TestFormatBench:
    def test_table_layout(self, rows):
        lines = format_bench(rows).splitlines()
        assert lines[0].split() == [
            "n",
            "scheduler",
            "cohort",
            "build_ms",
            "solve_ms",
            "round_ms",
            "rounds/s",
        ]
        assert lines[2].split()[:2] == ["50", "proportional"]
        assert len(lines) == 2 + len(rows)

"""Vectorized fleet cost-matrix generation and its per-class cache."""

import numpy as np
import pytest

from repro.sched.costs import (
    clear_cost_cache,
    fleet_class_matrices,
    fleet_problem,
)

from .conftest import toy_fleet


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cost_cache()
    yield
    clear_cost_cache()


class TestFleetClassMatrices:
    def test_shape_and_affine_values(self, fleet):
        time_cols, energy_cols = fleet_class_matrices(fleet, 10, 500)
        assert time_cols.shape == (len(fleet.classes), 10)
        assert energy_cols.shape == (len(fleet.classes), 10)
        # column k is the cost of k+1 shards = (k+1)*shard_size samples
        fast = fleet.classes[0]
        assert time_cols[0, 0] == pytest.approx(
            fast.time_base_s + fast.time_per_sample_s * 500
        )
        assert energy_cols[0, 3] == pytest.approx(
            fast.energy_base_j + fast.energy_per_sample_j * 2000
        )

    def test_rows_are_non_decreasing(self, fleet):
        time_cols, energy_cols = fleet_class_matrices(fleet, 64, 100)
        assert (np.diff(time_cols, axis=1) >= 0).all()
        assert (np.diff(energy_cols, axis=1) >= 0).all()

    def test_cache_hits_on_same_signature(self, fleet):
        a = fleet_class_matrices(fleet, 10, 500)
        b = fleet_class_matrices(fleet.copy(), 10, 500)
        # battery state differs between calls but the class signature
        # (the cache key) does not: the very same arrays come back
        assert a[0] is b[0] and a[1] is b[1]
        c = fleet_class_matrices(fleet, 11, 500)
        assert c[0] is not a[0]

    def test_validation(self, fleet):
        with pytest.raises(ValueError, match="positive"):
            fleet_class_matrices(fleet, 0, 500)
        with pytest.raises(ValueError, match="positive"):
            fleet_class_matrices(fleet, 10, 0)


class TestFleetProblem:
    def test_whole_fleet_instance(self, fleet):
        p = fleet_problem(fleet, shard_size=100)
        assert p.n_users == fleet.n
        assert p.total_shards == max(
            1, int(fleet.data_size.sum()) // 100
        )
        assert p.shard_size == 100
        assert p.energy_cost is not None
        assert p.meta["fleet_n"] == fleet.n
        assert p.meta["cohort_size"] == fleet.n
        assert p.meta["classes"] == ("fast", "slow")
        assert float(p.meta["build_ms"]) >= 0.0

    def test_cohort_rows_are_class_rows(self, fleet):
        cohort = np.array([0, 3, 9], dtype=np.int64)
        p = fleet_problem(fleet, cohort=cohort, shard_size=200,
                          total_shards=12)
        time_cols, _ = fleet_class_matrices(fleet, 12, 200)
        expected = time_cols[fleet.class_id[cohort]]
        assert np.array_equal(p.time_cost, expected)
        assert p.n_users == 3

    def test_weights_follow_class_speed(self, fleet):
        # fast class (smaller slope) must carry the larger weight
        cohort = np.flatnonzero(fleet.class_id == 0)[:1]
        cohort = np.concatenate(
            [cohort, np.flatnonzero(fleet.class_id == 1)[:1]]
        )
        p = fleet_problem(fleet, cohort=cohort, total_shards=4)
        assert p.weights is not None
        assert p.weights[0] > p.weights[1]

    def test_curves_evaluate_the_affine_model(self, fleet):
        p = fleet_problem(fleet, total_shards=4)
        c0 = int(fleet.class_id[0])
        cls = fleet.classes[c0]
        assert p.time_curves[0](1000.0) == pytest.approx(
            cls.time_base_s + cls.time_per_sample_s * 1000.0
        )

    def test_no_energy_option(self, fleet):
        p = fleet_problem(fleet, with_energy=False, total_shards=4)
        assert p.energy_cost is None

    def test_validation(self, fleet):
        with pytest.raises(ValueError, match="cohort"):
            fleet_problem(fleet, cohort=np.array([], dtype=np.int64))

    def test_soc_never_enters_the_instance(self, fleet):
        """Cost matrices are battery-independent by design — draining
        the fleet must not change the instance (only eligibility,
        decided upstream, sees charge)."""
        p1 = fleet_problem(fleet, total_shards=8)
        fleet.battery_j[:] *= 0.1
        p2 = fleet_problem(fleet, total_shards=8)
        assert np.array_equal(p1.time_cost, p2.time_cost)

    def test_schedulable_end_to_end(self, fleet):
        from repro.sched import get_scheduler

        p = fleet_problem(fleet, shard_size=100)
        a = get_scheduler("proportional").schedule(p)
        assert int(np.sum(a.shard_counts)) == p.total_shards

"""ISSUE acceptance: the columnar fleet path and the object-per-client
path are *bit-identical* — same event streams, same schedules, same
round records, same energy-ledger totals — at small n.

Both engines run over the same :class:`FleetStore` population, one via
``as_devices()``/``as_links()`` object views, one via ``fleet=``; the
store's scalar and vector ops perform the same float64 arithmetic, so
every comparison below is exact equality, never approx.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticConfig, make_dataset
from repro.federated.simulation import (
    FederatedSimulation,
    SimulationConfig,
)
from repro.fleet import UniformSampler
from repro.obs import ObsRecorder
from repro.sched.binding import EngineSchedulerBinding
from repro.sched.costs import fleet_problem

from .conftest import toy_fleet

MAX_N = 50


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(
        SyntheticConfig(
            name="fleet-eq",
            shape=(1, 8, 8),
            num_classes=10,
            train_size=200,
            test_size=80,
            noise=1.0,
            seed=42,
        )
    )


def make_pair(dataset, n, seed, config, cohort_size=None):
    """Two simulations over copies of the same fleet: object views vs
    the columnar path. Returns (sim_object, sim_fleet, fa, fb)."""
    rng = np.random.default_rng(seed)
    users = iid_partition(dataset, n, rng)
    fa = toy_fleet(n=n, seed=seed)
    fb = fa.copy()
    kw_a = {}
    kw_b = {}
    if cohort_size is not None:
        kw_a = dict(
            cohort_sampler=UniformSampler(seed), cohort_size=cohort_size
        )
        kw_b = dict(
            cohort_sampler=UniformSampler(seed), cohort_size=cohort_size
        )
    from repro.models import logistic

    sim_a = FederatedSimulation(
        dataset,
        logistic(input_shape=dataset.input_shape, seed=1),
        users,
        devices=fa.as_devices(),
        links=fa.as_links(),
        config=config,
        **kw_a,
    )
    sim_b = FederatedSimulation(
        dataset,
        logistic(input_shape=dataset.input_shape, seed=1),
        users,
        fleet=fb,
        config=config,
        **kw_b,
    )
    return sim_a, sim_b, fa, fb


def captured(sim):
    seen = []
    sim.events.subscribe(seen.append)
    return seen


def event_dicts(events, drop=()):
    out = []
    for e in events:
        d = e.to_dict()
        for key in drop:
            d.pop(key, None)
        out.append(d)
    return out


class TestBitIdentity:
    def test_training_rounds_bit_identical(self, dataset):
        cfg = SimulationConfig(lr=0.05, min_soc=0.2, aggregation_s=0.5)
        sim_a, sim_b, fa, fb = make_pair(dataset, 12, seed=3, config=cfg)
        ev_a, ev_b = captured(sim_a), captured(sim_b)
        sim_a.run(3)
        sim_b.run(3)
        assert event_dicts(ev_a) == event_dicts(ev_b)
        assert np.array_equal(fa.battery_j, fb.battery_j)

    def test_round_records_identical(self, dataset):
        cfg = SimulationConfig(min_soc=0.3)
        sim_a, sim_b, _, _ = make_pair(dataset, 10, seed=1, config=cfg)
        ra = [sim_a.run_round(train=False) for _ in range(2)]
        rb = [sim_b.run_round(train=False) for _ in range(2)]
        for a, b in zip(ra, rb):
            assert a.round_idx == b.round_idx
            assert a.makespan_s == b.makespan_s
            assert a.mean_time_s == b.mean_time_s
            assert a.accuracy == b.accuracy
            assert a.participant_count == b.participant_count
            assert np.array_equal(a.per_user_time_s, b.per_user_time_s)

    def test_energy_ledger_totals_identical(self, dataset):
        cfg = SimulationConfig(min_soc=0.0)
        sim_a, sim_b, _, _ = make_pair(dataset, 8, seed=5, config=cfg)
        rec_a, rec_b = ObsRecorder(), ObsRecorder()
        sim_a.events.subscribe(rec_a)
        sim_b.events.subscribe(rec_b)
        sim_a.run(2, train=False)
        sim_b.run(2, train=False)
        assert rec_a.energy.total_energy_j > 0
        assert (
            rec_a.energy.total_energy_j == rec_b.energy.total_energy_j
        )
        assert rec_a.energy.round_energy == rec_b.energy.round_energy

    def test_scheduled_rounds_produce_identical_schedules(self, dataset):
        cfg = SimulationConfig(min_soc=0.0, aggregation_s=0.0)
        sim_a, sim_b, fa, fb = make_pair(dataset, 6, seed=2, config=cfg)
        sim_a.engine.bind_scheduler(
            EngineSchedulerBinding(
                "olar", problem=fleet_problem(fa, shard_size=50)
            )
        )
        binding_b = EngineSchedulerBinding(
            "olar", problem=fleet_problem(fb, shard_size=50)
        )
        sim_b.engine.bind_scheduler(binding_b)
        ev_a, ev_b = captured(sim_a), captured(sim_b)
        sim_a.run(2, train=False)
        sim_b.run(2, train=False)
        # solve_ms is host wall-time, the one legitimately
        # run-dependent field in the stream
        assert event_dicts(ev_a, drop=("solve_ms",)) == event_dicts(
            ev_b, drop=("solve_ms",)
        )
        counts = [
            np.asarray(a.shard_counts) for a in binding_b.assignments
        ]
        assert len(counts) == 2
        assert np.array_equal(counts[0], counts[1])

    def test_n50_timing_rounds_bit_identical(self, dataset):
        cfg = SimulationConfig(min_soc=0.25, aggregation_s=1.0)
        sim_a, sim_b, fa, fb = make_pair(
            dataset, MAX_N, seed=9, config=cfg
        )
        ev_a, ev_b = captured(sim_a), captured(sim_b)
        sim_a.run(3, train=False)
        sim_b.run(3, train=False)
        assert len(ev_a) > 0
        assert event_dicts(ev_a) == event_dicts(ev_b)
        assert np.array_equal(fa.battery_j, fb.battery_j)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(2, 16),
    min_soc=st.sampled_from([0.0, 0.2, 0.5]),
)
def test_property_paths_agree_for_any_population(dataset, seed, n, min_soc):
    cfg = SimulationConfig(min_soc=min_soc, aggregation_s=0.5)
    sim_a, sim_b, fa, fb = make_pair(dataset, n, seed=seed, config=cfg)
    ev_a, ev_b = captured(sim_a), captured(sim_b)
    try:
        sim_a.run(2, train=False)
    except RuntimeError:
        # every device below the floor: the fleet path must agree
        with pytest.raises(RuntimeError):
            sim_b.run(2, train=False)
        return
    sim_b.run(2, train=False)
    assert event_dicts(ev_a) == event_dicts(ev_b)
    assert np.array_equal(fa.battery_j, fb.battery_j)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(6, 20),
    k=st.integers(2, 5),
)
def test_property_cohort_sampling_agrees(dataset, seed, n, k):
    """Seeded cohort sampling draws the same cohort on both paths."""
    cfg = SimulationConfig(min_soc=0.0, aggregation_s=0.0)
    sim_a, sim_b, fa, fb = make_pair(
        dataset, n, seed=seed, config=cfg, cohort_size=k
    )
    ev_a, ev_b = captured(sim_a), captured(sim_b)
    sim_a.run(2, train=False)
    sim_b.run(2, train=False)
    da, db = event_dicts(ev_a), event_dicts(ev_b)
    assert da == db
    dispatched = {
        d["client_id"] for d in da if d["event"] == "client_dispatched"
    }
    assert 0 < len(dispatched) <= 2 * k
    assert np.array_equal(fa.battery_j, fb.battery_j)

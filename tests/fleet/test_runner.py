"""FleetRunner: vectorized rounds, narration thresholds, ledgers."""

import numpy as np
import pytest

from repro.engine.events import EventBus
from repro.fleet import (
    FleetRoundRecord,
    FleetRunner,
    UniformSampler,
    make_sampler,
)
from repro.obs import ObsRecorder

from .conftest import toy_fleet


def make_runner(n=32, detail_threshold=256, **kwargs):
    return FleetRunner(
        toy_fleet(n=n),
        detail_threshold=detail_threshold,
        **kwargs,
    )


class TestConstruction:
    def test_sampler_and_cohort_size_go_together(self):
        with pytest.raises(ValueError, match="together"):
            make_runner(sampler=UniformSampler(0))
        with pytest.raises(ValueError, match="together"):
            make_runner(cohort_size=8)

    def test_validation(self):
        with pytest.raises(ValueError, match="cohort_size"):
            make_runner(sampler=UniformSampler(0), cohort_size=0)
        with pytest.raises(ValueError, match="shard_size"):
            make_runner(shard_size=0)
        with pytest.raises(ValueError, match="local_epochs"):
            make_runner(local_epochs=0)
        with pytest.raises(ValueError, match="detail_threshold"):
            make_runner(detail_threshold=-1)
        with pytest.raises(ValueError, match="rounds"):
            make_runner().run(0)

    def test_scheduler_resolved_by_name(self):
        runner = make_runner(scheduler="fed_lbap")
        assert runner.scheduler.name == "fed_lbap"


class TestRounds:
    def test_round_record_fields(self):
        runner = make_runner(n=16)
        record = runner.run_round()
        assert isinstance(record, FleetRoundRecord)
        assert record.round_idx == 1
        assert record.scheduler == "proportional"
        assert record.eligible_count == 16
        assert record.cohort_size == 16
        assert 0 < record.active_count <= 16
        assert record.makespan_s > 0
        assert record.energy_j > 0
        assert 0 < record.mean_battery_soc <= 1
        assert record.build_ms >= 0
        assert record.solve_ms >= 0
        assert record.round_ms > 0
        assert runner.records == [record]

    def test_clock_advances_by_makespan_plus_aggregation(self):
        runner = make_runner(n=8, aggregation_s=2.0)
        r1 = runner.run_round()
        assert runner.clock_s == pytest.approx(r1.makespan_s + 2.0)
        r2 = runner.run_round()
        assert runner.clock_s == pytest.approx(
            r1.makespan_s + r2.makespan_s + 4.0
        )

    def test_batteries_drain_across_rounds(self):
        runner = make_runner(n=16)
        before = runner.fleet.battery_j.sum()
        runner.run(3)
        assert runner.fleet.battery_j.sum() < before

    def test_min_soc_gates_eligibility(self):
        runner = make_runner(n=16, min_soc=0.5)
        eligible = runner.eligible_indices()
        assert (runner.fleet.soc(eligible) >= 0.5).all()

    def test_no_eligible_devices_raises(self):
        runner = make_runner(n=8)
        runner.fleet.alive[:] = False
        with pytest.raises(RuntimeError, match="no eligible"):
            runner.run_round()

    def test_devices_without_data_sit_out(self):
        runner = make_runner(n=8)
        runner.fleet.data_size[:4] = 0
        assert runner.eligible_indices().tolist() == [4, 5, 6, 7]

    def test_cohort_sampling_bounds_the_instance(self):
        runner = make_runner(
            n=64,
            sampler=make_sampler("pareto", seed=1),
            cohort_size=8,
        )
        record = runner.run_round()
        assert record.eligible_count == 64
        assert record.cohort_size == 8
        assert record.active_count <= 8

    def test_deterministic_given_seeded_sampler(self):
        def run():
            runner = make_runner(
                n=64,
                sampler=UniformSampler(7),
                cohort_size=8,
            )
            return [r.energy_j for r in runner.run(3)]

        assert run() == run()


class TestNarration:
    def test_detailed_rounds_emit_per_client_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        runner = make_runner(n=8, detail_threshold=256, bus=bus)
        record = runner.run_round()
        kinds = [e.kind for e in seen]
        assert kinds[0] == "schedule_computed"
        assert kinds.count("client_dispatched") == record.active_count
        assert kinds.count("client_finished") == record.active_count
        assert kinds[-1] == "round_completed"
        assert "cohort_accounted" not in kinds

    def test_large_cohorts_emit_one_aggregate_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        runner = make_runner(n=32, detail_threshold=4, bus=bus)
        record = runner.run_round()
        kinds = [e.kind for e in seen]
        # never both: per-client narration would double-count energy
        assert kinds == ["cohort_accounted", "round_completed"]
        (agg,) = [e for e in seen if e.kind == "cohort_accounted"]
        assert agg.cohort_size == record.active_count
        assert agg.eligible_count == 32
        assert agg.energy_j == pytest.approx(record.energy_j)
        assert agg.mean_battery_soc == pytest.approx(
            record.mean_battery_soc
        )

    def test_ledger_totals_match_records_in_both_modes(self):
        for threshold in (0, 10_000):
            rec = ObsRecorder()
            bus = EventBus()
            bus.subscribe(rec)
            runner = make_runner(
                n=24, detail_threshold=threshold, bus=bus
            )
            records = runner.run(2)
            assert rec.energy.total_energy_j == pytest.approx(
                sum(r.energy_j for r in records)
            )

"""FleetStore: columns, scalar/vector parity, views, builders."""

import numpy as np
import pytest

from repro.fleet import (
    DEFAULT_CLASS_LINKS,
    DeviceClass,
    FleetDevice,
    FleetLink,
    FleetStore,
    FleetTrace,
    default_device_classes,
    device_class_from_name,
    synthetic_fleet,
)

from .conftest import toy_classes, toy_fleet


class TestDeviceClass:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DeviceClass(
                name="bad",
                time_base_s=-1.0,
                time_per_sample_s=0.001,
                energy_base_j=1.0,
                energy_per_sample_j=0.001,
                capacity_j=100.0,
                idle_power_w=0.1,
                uplink_mbps=1.0,
                downlink_mbps=1.0,
                rtt_s=0.01,
            )

    def test_capacity_and_bandwidth_must_be_positive(self):
        base = dict(
            name="bad",
            time_base_s=1.0,
            time_per_sample_s=0.001,
            energy_base_j=1.0,
            energy_per_sample_j=0.001,
            capacity_j=100.0,
            idle_power_w=0.1,
            uplink_mbps=1.0,
            downlink_mbps=1.0,
            rtt_s=0.01,
        )
        with pytest.raises(ValueError, match="capacity"):
            DeviceClass(**{**base, "capacity_j": 0.0})
        with pytest.raises(ValueError, match="bandwidth"):
            DeviceClass(**{**base, "uplink_mbps": 0.0})

    def test_signature_carries_cost_identity(self, classes):
        fast = classes[0]
        sig = fast.signature()
        assert sig[0] == "fast"
        assert fast.time_base_s in sig
        assert fast.rtt_s in sig
        # capacity is battery state, not cost identity
        assert fast.capacity_j not in sig


class TestFleetStoreColumns:
    def test_column_shapes_and_dtypes(self, fleet):
        n = fleet.n
        assert fleet.class_id.shape == (n,)
        assert fleet.class_id.dtype == np.int32
        assert fleet.data_size.dtype == np.int64
        assert fleet.battery_j.dtype == np.float64
        assert fleet.capacity_j.shape == (n,)
        assert fleet.alive.dtype == bool
        assert fleet.alive.all()

    def test_validation(self, classes):
        cid = np.zeros(4, dtype=np.int32)
        size = np.full(4, 100, dtype=np.int64)
        with pytest.raises(ValueError, match="at least one"):
            FleetStore((), cid, size)
        with pytest.raises(ValueError, match="out of range"):
            FleetStore(classes, np.full(4, 7), size)
        with pytest.raises(ValueError, match="align"):
            FleetStore(classes, cid, size[:2])
        with pytest.raises(ValueError, match="non-negative"):
            FleetStore(classes, cid, size - 200)
        with pytest.raises(ValueError, match="battery_j"):
            FleetStore(classes, cid, size, battery_j=size * 1e9)

    def test_battery_defaults_to_full_charge(self, classes):
        store = FleetStore(
            classes,
            np.array([0, 1], dtype=np.int32),
            np.array([100, 100], dtype=np.int64),
        )
        assert np.array_equal(store.battery_j, store.capacity_j)
        assert store.soc_one(0) == 1.0

    def test_columns_are_owned_copies(self, classes):
        cid = np.array([0, 1], dtype=np.int32)
        size = np.array([100, 200], dtype=np.int64)
        store = FleetStore(classes, cid, size)
        size[0] = 999
        assert store.data_size[0] == 100

    def test_copy_is_independent(self, fleet):
        clone = fleet.copy()
        clone.battery_j[:] = 0.0
        clone.alive[:] = False
        assert fleet.battery_j.sum() > 0
        assert fleet.alive.all()


class TestBatteryAndEligibility:
    def test_soc_vector_matches_scalar(self, fleet):
        soc = fleet.soc()
        for j in range(fleet.n):
            assert soc[j] == fleet.soc_one(j)

    def test_soc_indexed_subset(self, fleet):
        idx = np.array([1, 5, 7])
        assert np.array_equal(fleet.soc(idx), fleet.soc()[idx])

    def test_eligible_mask_zero_floor_is_alive(self, fleet):
        fleet.battery_j[:] = 0.0
        mask = fleet.eligible_mask(0.0)
        assert mask.all()
        mask[:] = False  # a copy, not the store's column
        assert fleet.alive.all()

    def test_eligible_mask_gates_on_soc_and_alive(self, classes):
        store = FleetStore(
            classes,
            np.zeros(3, dtype=np.int32),
            np.full(3, 100, dtype=np.int64),
        )
        store.battery_j[:] = store.capacity_j * np.array([0.1, 0.5, 0.9])
        store.alive[2] = False
        assert store.eligible_mask(0.25).tolist() == [False, True, False]


class TestComputeAndComm:
    def test_compute_time_is_affine(self, classes):
        store = FleetStore(
            classes,
            np.array([0, 1], dtype=np.int32),
            np.array([1000, 1000], dtype=np.int64),
        )
        idx = np.array([0, 1])
        t = store.compute_time_s(idx, np.array([1000.0, 1000.0]))
        assert t[0] == pytest.approx(1.0 + 0.001 * 1000)
        assert t[1] == pytest.approx(2.0 + 0.004 * 1000)
        # epochs scale the samples
        t2 = store.compute_time_s(idx, np.array([1000.0, 1000.0]), epochs=2)
        assert t2[0] == pytest.approx(1.0 + 0.001 * 2000)

    def test_run_compute_drains_battery(self, classes):
        store = FleetStore(
            classes,
            np.array([0], dtype=np.int32),
            np.array([1000], dtype=np.int64),
        )
        before = store.battery_j[0]
        t, e = store.run_compute(np.array([0]), np.array([500.0]))
        assert e[0] == pytest.approx(2.0 + 0.004 * 500)
        assert store.battery_j[0] == pytest.approx(before - e[0])
        assert t[0] == pytest.approx(1.0 + 0.001 * 500)

    def test_run_compute_floors_at_empty(self, classes):
        store = FleetStore(
            classes,
            np.array([0], dtype=np.int32),
            np.array([1000], dtype=np.int64),
            battery_j=np.array([1.0]),
        )
        _, e = store.run_compute(np.array([0]), np.array([500.0]))
        assert e[0] == pytest.approx(1.0)  # capped at what was left
        assert store.battery_j[0] == 0.0

    def test_scalar_compute_is_bit_identical(self, fleet):
        clone = fleet.copy()
        idx = np.arange(fleet.n)
        samples = fleet.data_size.astype(np.float64)
        t_vec, e_vec = fleet.run_compute(idx, samples, epochs=2)
        for j in range(clone.n):
            t1, e1 = clone.run_compute_one(
                j, int(samples[j]), epochs=2
            )
            assert t1 == t_vec[j]  # bit-identical, not approx
            assert e1 == e_vec[j]
        assert np.array_equal(fleet.battery_j, clone.battery_j)

    def test_comm_time_is_the_link_formula(self, classes):
        store = FleetStore(
            classes,
            np.array([0], dtype=np.int32),
            np.array([100], dtype=np.int64),
        )
        idx = np.array([0])
        mb = 2.0
        down = store.download_time_s(idx, mb)[0]
        up = store.upload_time_s(idx, mb)[0]
        assert down == pytest.approx(0.05 / 2 + mb * 8 / 40.0)
        assert up == pytest.approx(0.05 / 2 + mb * 8 / 10.0)
        assert store.comm_time_s(idx, mb)[0] == pytest.approx(down + up)

    def test_scalar_comm_is_bit_identical(self, fleet):
        idx = np.arange(fleet.n)
        vec = fleet.comm_time_s(idx, 1.5)
        for j in range(fleet.n):
            assert fleet.comm_time_one(j, 1.5) == vec[j]

    def test_idle_drains_idle_power(self, classes):
        store = FleetStore(
            classes,
            np.array([0, 1], dtype=np.int32),
            np.array([100, 100], dtype=np.int64),
        )
        before = store.battery_j.copy()
        store.idle(np.array([0, 1]), np.array([10.0, 10.0]))
        assert store.battery_j[0] == pytest.approx(before[0] - 0.5 * 10)
        assert store.battery_j[1] == pytest.approx(before[1] - 0.8 * 10)
        clone = FleetStore(
            classes,
            np.array([0, 1], dtype=np.int32),
            np.array([100, 100], dtype=np.int64),
        )
        clone.idle_one(0, 10.0)
        clone.idle_one(1, 10.0)
        assert np.array_equal(store.battery_j, clone.battery_j)


class TestObjectViews:
    def test_as_devices_returns_views_sharing_state(self, fleet):
        devices = fleet.as_devices()
        assert len(devices) == fleet.n
        assert all(isinstance(d, FleetDevice) for d in devices)
        assert devices[3].index == 3
        assert devices[3].battery.soc == fleet.soc_one(3)
        devices[3].idle(100.0)
        assert fleet.soc_one(3) < 1.0 or fleet.battery_j[3] >= 0

    def test_device_view_run_workload_matches_store(self, fleet):
        class Workload:
            n_samples = 600
            epochs = 2

        clone = fleet.copy()
        trace = fleet.as_devices()[0].run_workload(Workload())
        assert isinstance(trace, FleetTrace)
        t, e = clone.run_compute_one(0, 600, epochs=2)
        assert trace.total_time_s == t
        assert trace.energy_j == e

    def test_device_view_spec_is_its_class(self, fleet):
        dev = fleet.as_devices()[0]
        assert dev.spec is fleet.classes[int(fleet.class_id[0])]

    def test_as_links_matches_store_comm(self, fleet):
        links = fleet.as_links()
        assert all(isinstance(x, FleetLink) for x in links)
        j = 2
        assert links[j].download_time_s(1.0) == fleet.download_time_one(
            j, 1.0
        )
        assert links[j].upload_time_s(1.0) == fleet.upload_time_one(
            j, 1.0
        )
        assert links[j].round_trip_time_s(1.0) == fleet.comm_time_one(
            j, 1.0
        )


class TestBuilders:
    def test_default_class_links_cover_the_papers_phones(self):
        assert sorted(DEFAULT_CLASS_LINKS) == [
            "mate10",
            "nexus6",
            "nexus6p",
            "pixel2",
        ]
        assert set(DEFAULT_CLASS_LINKS.values()) <= {"wifi", "lte"}

    def test_device_class_from_name_probes_the_simulator(self):
        cls = device_class_from_name("pixel2", link="lte")
        assert cls.name == "pixel2"
        assert cls.link == "lte"
        assert cls.time_per_sample_s > 0
        assert cls.energy_per_sample_j > 0
        assert cls.capacity_j > 0

    def test_default_device_classes_are_name_sorted(self):
        classes = default_device_classes()
        assert [c.name for c in classes] == sorted(DEFAULT_CLASS_LINKS)
        for c in classes:
            assert c.link == DEFAULT_CLASS_LINKS[c.name]


class TestSyntheticFleet:
    def test_same_seed_same_fleet(self):
        a = toy_fleet(n=64, seed=7)
        b = toy_fleet(n=64, seed=7)
        assert np.array_equal(a.class_id, b.class_id)
        assert np.array_equal(a.data_size, b.data_size)
        assert np.array_equal(a.battery_j, b.battery_j)

    def test_different_seed_different_fleet(self):
        a = toy_fleet(n=64, seed=7)
        b = toy_fleet(n=64, seed=8)
        assert not np.array_equal(a.battery_j, b.battery_j)

    def test_ranges_respected(self):
        f = toy_fleet(
            n=256,
            seed=1,
            data_size_range=(50, 60),
            soc_range=(0.5, 0.6),
        )
        assert f.data_size.min() >= 50 and f.data_size.max() <= 60
        soc = f.soc()
        assert soc.min() >= 0.5 and soc.max() <= 0.6 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            toy_fleet(n=0)
        with pytest.raises(ValueError, match="data_size_range"):
            toy_fleet(n=4, data_size_range=(10, 5))
        with pytest.raises(ValueError, match="soc_range"):
            toy_fleet(n=4, soc_range=(0.5, 1.5))

    def test_default_classes_are_the_papers_phones(self):
        f = synthetic_fleet(8, seed=0)
        assert [c.name for c in f.classes] == sorted(DEFAULT_CLASS_LINKS)

    def test_uses_given_classes(self):
        f = toy_fleet(n=8)
        assert [c.name for c in f.classes] == ["fast", "slow"]
        assert f.classes == toy_classes()

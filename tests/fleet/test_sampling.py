"""Cohort samplers: determinism, eligibility, bias, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    DataSizeBiasedSampler,
    ParetoSampler,
    UniformSampler,
    available_samplers,
    make_sampler,
)


def eligible_set(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(
        rng.choice(np.arange(10 * n), size=n, replace=False)
    ).astype(np.int64)


SAMPLER_FACTORIES = [
    lambda seed: UniformSampler(seed),
    lambda seed: DataSizeBiasedSampler(seed),
    lambda seed: ParetoSampler(seed),
    lambda seed: make_sampler("uniform", seed=seed),
]


@pytest.mark.parametrize("factory", SAMPLER_FACTORIES)
def test_same_seed_same_cohort(factory):
    eligible = eligible_set()
    sizes = np.arange(1, eligible.size + 1, dtype=np.int64)
    a = factory(3).sample(eligible, 10, data_size=sizes)
    b = factory(3).sample(eligible, 10, data_size=sizes)
    assert np.array_equal(a, b)
    c = factory(4).sample(eligible, 10, data_size=sizes)
    assert not np.array_equal(a, c)


@pytest.mark.parametrize("factory", SAMPLER_FACTORIES)
def test_cohort_is_sorted_subset_of_eligible(factory):
    eligible = eligible_set(seed=5)
    sizes = np.full(eligible.size, 10, dtype=np.int64)
    cohort = factory(0).sample(eligible, 17, data_size=sizes)
    assert cohort.size == 17
    assert np.array_equal(cohort, np.sort(cohort))
    assert np.isin(cohort, eligible).all()
    assert np.unique(cohort).size == cohort.size


def test_small_eligible_set_passes_through_without_randomness():
    eligible = np.array([9, 3, 5], dtype=np.int64)
    s = UniformSampler(seed=0)
    assert np.array_equal(s.sample(eligible, 3), [3, 5, 9])
    assert np.array_equal(s.sample(eligible, 10), [3, 5, 9])
    # the pass-through consumed no randomness: the next real draw
    # matches a fresh sampler's first draw
    big = eligible_set(seed=2)
    fresh = UniformSampler(seed=0)
    assert np.array_equal(s.sample(big, 5), fresh.sample(big, 5))


def test_data_size_bias_prefers_data_rich_devices():
    eligible = np.arange(50, dtype=np.int64)
    sizes = np.ones(50, dtype=np.int64)
    sizes[7] = 1_000_000  # one data giant
    hits = sum(
        7 in DataSizeBiasedSampler(seed).sample(eligible, 5, sizes)
        for seed in range(40)
    )
    assert hits >= 38  # essentially always selected


def test_pareto_default_alpha():
    s = ParetoSampler()
    assert s.bias == pytest.approx(1.16)


def test_validation_errors():
    eligible = np.arange(10, dtype=np.int64)
    with pytest.raises(ValueError, match="positive"):
        UniformSampler().sample(eligible, 0)
    with pytest.raises(ValueError, match="align"):
        UniformSampler().sample(eligible, 3, data_size=np.arange(4))
    with pytest.raises(ValueError, match="data sizes"):
        DataSizeBiasedSampler().sample(eligible, 3)
    with pytest.raises(ValueError, match="1-D"):
        UniformSampler().sample(eligible.reshape(2, 5), 3)
    with pytest.raises(ValueError, match="bias"):
        DataSizeBiasedSampler(bias=0.0)
    class BrokenWeights(UniformSampler):
        def weights(self, eligible, data_size):
            return np.zeros(eligible.size)

    with pytest.raises(ValueError, match="positive and finite"):
        BrokenWeights().sample(eligible, 3)


def test_registry():
    assert available_samplers() == ["data_size", "pareto", "uniform"]
    assert isinstance(make_sampler("pareto", seed=1), ParetoSampler)
    assert isinstance(
        make_sampler("data_size", seed=1, bias=2.0),
        DataSizeBiasedSampler,
    )
    with pytest.raises(KeyError, match="unknown cohort sampler"):
        make_sampler("bogus")


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 200),
    k=st.integers(1, 64),
    name=st.sampled_from(["uniform", "data_size", "pareto"]),
)
def test_property_seed_determinism_and_eligibility(seed, n, k, name):
    """ISSUE acceptance: samplers are seed-deterministic and only ever
    return eligible devices."""
    rng = np.random.default_rng(seed)
    eligible = np.flatnonzero(rng.random(n) < 0.7).astype(np.int64)
    if eligible.size == 0:
        return
    sizes = rng.integers(1, 1000, size=eligible.size).astype(np.int64)
    a = make_sampler(name, seed=seed).sample(eligible, k, data_size=sizes)
    b = make_sampler(name, seed=seed).sample(eligible, k, data_size=sizes)
    assert np.array_equal(a, b)
    assert a.size == min(k, eligible.size)
    assert np.isin(a, eligible).all()
    assert np.array_equal(a, np.sort(a))

"""Shared fixtures for the columnar-fleet tests.

Hand-built device classes (no profiler probing) keep the unit tests
fast and the arithmetic easy to check by hand; the builder tests cover
the calibrated-path (`device_class_from_name`) separately.
"""

import pytest

from repro.fleet import DeviceClass, synthetic_fleet


def toy_classes():
    """Two classes with round-number affine coefficients."""
    return (
        DeviceClass(
            name="fast",
            time_base_s=1.0,
            time_per_sample_s=0.001,
            energy_base_j=2.0,
            energy_per_sample_j=0.004,
            capacity_j=10_000.0,
            idle_power_w=0.5,
            uplink_mbps=10.0,
            downlink_mbps=40.0,
            rtt_s=0.05,
            link="wifi",
        ),
        DeviceClass(
            name="slow",
            time_base_s=2.0,
            time_per_sample_s=0.004,
            energy_base_j=3.0,
            energy_per_sample_j=0.010,
            capacity_j=8_000.0,
            idle_power_w=0.8,
            uplink_mbps=2.0,
            downlink_mbps=8.0,
            rtt_s=0.1,
            link="lte",
        ),
    )


def toy_fleet(n=16, seed=0, **kwargs):
    return synthetic_fleet(n, seed=seed, classes=toy_classes(), **kwargs)


@pytest.fixture
def classes():
    return toy_classes()


@pytest.fixture
def fleet():
    return toy_fleet()

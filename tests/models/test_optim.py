"""Optimiser tests."""

import numpy as np
import pytest

from repro.models.optim import SGD


def make_param(value, grad):
    params = {"W": np.array(value, dtype=float)}
    grads = {"W": np.array(grad, dtype=float)}
    return params, grads


class TestSGD:
    def test_plain_step(self):
        params, grads = make_param([1.0, 2.0], [0.5, -0.5])
        opt = SGD([(params, grads)], lr=0.1)
        opt.step()
        np.testing.assert_allclose(params["W"], [0.95, 2.05])

    def test_momentum_accumulates(self):
        params, grads = make_param([0.0], [1.0])
        opt = SGD([(params, grads)], lr=0.1, momentum=0.9)
        opt.step()  # v = -0.1
        np.testing.assert_allclose(params["W"], [-0.1])
        opt.step()  # v = -0.9*0.1 - 0.1 = -0.19
        np.testing.assert_allclose(params["W"], [-0.29])

    def test_weight_decay_applies_to_w_only(self):
        pw = {"W": np.array([1.0]), "b": np.array([1.0])}
        gw = {"W": np.array([0.0]), "b": np.array([0.0])}
        opt = SGD([(pw, gw)], lr=0.1, weight_decay=0.1)
        opt.step()
        np.testing.assert_allclose(pw["W"], [0.99])
        np.testing.assert_allclose(pw["b"], [1.0])

    def test_zero_grad(self):
        params, grads = make_param([1.0], [5.0])
        opt = SGD([(params, grads)], lr=0.1)
        opt.zero_grad()
        np.testing.assert_allclose(grads["W"], [0.0])

    def test_validation(self):
        params, grads = make_param([1.0], [0.0])
        with pytest.raises(ValueError):
            SGD([(params, grads)], lr=-1)
        with pytest.raises(ValueError):
            SGD([(params, grads)], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([(params, grads)], lr=0.1, weight_decay=-0.1)

    def test_converges_on_quadratic(self):
        """SGD minimises f(w) = ||w - target||^2 / 2."""
        target = np.array([3.0, -2.0])
        params = {"W": np.zeros(2)}
        grads = {"W": np.zeros(2)}
        opt = SGD([(params, grads)], lr=0.2, momentum=0.5)
        for _ in range(100):
            grads["W"][...] = params["W"] - target
            opt.step()
        np.testing.assert_allclose(params["W"], target, atol=1e-6)

"""Loss function tests."""

import numpy as np
import pytest

from repro.models.losses import accuracy, softmax, softmax_cross_entropy


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(6, 10)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(4, 5))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    def test_large_logits_stable(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] > 0.999


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 10))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 5, 9]))
        np.testing.assert_allclose(loss, np.log(10), rtol=1e-9)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for i in range(4):
            for j in range(6):
                zp = logits.copy()
                zp[i, j] += eps
                lp, _ = softmax_cross_entropy(zp, labels)
                zm = logits.copy()
                zm[i, j] -= eps
                lm, _ = softmax_cross_entropy(zm, labels)
                assert abs((lp - lm) / (2 * eps) - grad[i, j]) < 1e-6

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(5, 7))
        labels = rng.integers(0, 7, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            softmax_cross_entropy(rng.normal(size=(4,)), np.zeros(4, int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(
                rng.normal(size=(4, 3)), np.zeros(5, int)
            )


class TestAccuracy:
    def test_all_correct(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_half_correct(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

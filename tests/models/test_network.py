"""Sequential container tests: parameter accounting, weight vector
round-trips, cloning, end-to-end training."""

import numpy as np
import pytest

from repro.models import (
    SGD,
    Dense,
    Flatten,
    ReLU,
    Sequential,
    lenet_mini,
    softmax_cross_entropy,
)
from repro.models.network import ParameterSplit


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Flatten(), Dense(16, 8, rng=rng), ReLU(), Dense(8, 4, rng=rng)],
        name="small",
        input_shape=(1, 4, 4),
    )


class TestParameterSplit:
    def test_totals(self):
        s = ParameterSplit(conv=10, dense=20, other=5)
        assert s.total == 35
        assert s.as_tuple() == (10, 20)

    def test_equality(self):
        assert ParameterSplit(1, 2) == ParameterSplit(1, 2)
        assert ParameterSplit(1, 2) != ParameterSplit(1, 3)


class TestSequential:
    def test_forward_shape(self, rng):
        net = small_net()
        out = net.forward(rng.normal(size=(5, 1, 4, 4)))
        assert out.shape == (5, 4)

    def test_param_split_counts_dense(self):
        net = small_net()
        split = net.param_split()
        assert split.conv == 0
        assert split.dense == (16 * 8 + 8) + (8 * 4 + 4)

    def test_weight_vector_roundtrip(self, rng):
        net = small_net()
        w = net.get_weights()
        assert w.shape == (net.param_count(),)
        w2 = rng.normal(size=w.shape)
        net.set_weights(w2)
        np.testing.assert_allclose(net.get_weights(), w2)

    def test_set_weights_rejects_wrong_size(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.set_weights(np.zeros(3))

    def test_clone_is_independent(self, rng):
        net = small_net()
        clone = net.clone()
        clone.set_weights(np.zeros(clone.param_count()))
        assert not np.allclose(net.get_weights(), 0.0)

    def test_weights_affect_output(self, rng):
        """set_weights actually changes behaviour (order consistency)."""
        net = small_net()
        x = rng.normal(size=(2, 1, 4, 4))
        before = net.forward(x)
        net.set_weights(net.get_weights() * 2.0)
        after = net.forward(x)
        assert not np.allclose(before, after)

    def test_training_reduces_loss(self, rng):
        net = small_net()
        x = rng.normal(size=(16, 1, 4, 4))
        y = rng.integers(0, 4, size=16)
        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        first = None
        for step in range(30):
            loss, _ = net.train_batch(x, y)
            opt.step()
            opt.zero_grad()
            if first is None:
                first = loss
        assert loss < first * 0.5

    def test_summary_mentions_layers(self):
        net = small_net()
        text = net.summary()
        assert "Dense" in text and "total=" in text

    def test_size_bytes(self):
        net = small_net()
        assert net.size_bytes(4) == net.param_count() * 4

    def test_end_to_end_gradcheck(self, rng):
        """Full-network gradient vs finite differences through the loss."""
        net = small_net()
        x = rng.normal(size=(3, 1, 4, 4))
        y = np.array([0, 1, 2])
        logits = net.forward(x, training=True)
        _, grad = softmax_cross_entropy(logits, y)
        net.backward(grad)
        w0 = net.get_weights()
        analytic = np.concatenate(
            [
                layer.grads[name].ravel()
                for layer in net.layers
                if layer.params
                for name in sorted(layer.params)
            ]
        )
        eps = 1e-6
        idxs = rng.choice(w0.size, size=25, replace=False)
        for i in idxs:
            w = w0.copy()
            w[i] += eps
            net.set_weights(w)
            lp, _ = softmax_cross_entropy(net.forward(x), y)
            w[i] -= 2 * eps
            net.set_weights(w)
            lm, _ = softmax_cross_entropy(net.forward(x), y)
            num = (lp - lm) / (2 * eps)
            assert abs(num - analytic[i]) < 1e-5
        net.set_weights(w0)


class TestLeNetMiniTraining:
    def test_conv_net_learns_tiny_task(self, tiny_dataset):
        net = lenet_mini(input_shape=(1, 8, 8), seed=3)
        opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
        x, y = tiny_dataset.x_train[:200], tiny_dataset.y_train[:200]
        rng = np.random.default_rng(0)
        for epoch in range(12):
            order = rng.permutation(len(x))
            for s in range(0, len(x), 20):
                idx = order[s : s + 20]
                net.train_batch(x[idx], y[idx])
                opt.step()
                opt.zero_grad()
        logits = net.forward(tiny_dataset.x_test)
        acc = (logits.argmax(1) == tiny_dataset.y_test).mean()
        assert acc > 0.4  # well above 10% chance

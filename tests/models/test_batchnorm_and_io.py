"""BatchNorm2D and weight-checkpoint tests."""

import numpy as np
import pytest

from repro.models.layers import BatchNorm2D, Conv2D, Flatten, ReLU
from repro.models.layers import Dense
from repro.models.network import Sequential
from repro.models.optim import SGD
from repro.models.zoo import lenet_mini
from tests.models.test_layers import check_input_gradient


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm2D(4)
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(
            out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10
        )
        np.testing.assert_allclose(
            out.std(axis=(0, 2, 3)), 1.0, atol=1e-3
        )

    def test_gamma_beta_applied(self, rng):
        layer = BatchNorm2D(2)
        layer.params["gamma"][:] = [2.0, 3.0]
        layer.params["beta"][:] = [1.0, -1.0]
        x = rng.normal(size=(4, 2, 3, 3))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(
            out.mean(axis=(0, 2, 3)), [1.0, -1.0], atol=1e-10
        )

    def test_running_stats_converge(self, rng):
        layer = BatchNorm2D(3, momentum=0.5)
        for _ in range(40):
            layer.forward(
                rng.normal(5.0, 1.0, size=(16, 3, 4, 4)), training=True
            )
        np.testing.assert_allclose(layer.running_mean, 5.0, atol=0.3)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm2D(2)
        for _ in range(20):
            layer.forward(
                rng.normal(2.0, 1.0, size=(16, 2, 4, 4)), training=True
            )
        x = rng.normal(2.0, 1.0, size=(4, 2, 4, 4))
        out = layer.forward(x, training=False)
        # roughly standardised by the learned running stats
        assert abs(out.mean()) < 0.3

    def test_input_gradient(self, rng):
        """Finite-difference check in *training* mode (inference mode
        normalises with running stats, a different function)."""
        layer = BatchNorm2D(2)
        layer.params["gamma"][:] = rng.uniform(0.5, 1.5, 2)
        x = rng.normal(size=(4, 2, 3, 3))
        layer.forward(x, training=True)
        w = rng.normal(size=(4, 2, 3, 3))
        analytic = layer.backward(w)

        def loss():
            return float((layer.forward(x, training=True) * w).sum())

        eps = 1e-6
        flat = x.ravel()
        idx = rng.choice(flat.size, 30, replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            fp = loss()
            flat[i] = orig - eps
            fm = loss()
            flat[i] = orig
            num = (fp - fm) / (2 * eps)
            assert abs(num - analytic.ravel()[i]) < 1e-5

    def test_param_gradients(self, rng):
        layer = BatchNorm2D(2)
        layer.params["gamma"][:] = rng.uniform(0.5, 1.5, 2)
        layer.params["beta"][:] = rng.normal(0, 0.2, 2)
        x = rng.normal(size=(3, 2, 4, 4))
        w = rng.normal(size=(3, 2, 4, 4))
        layer.forward(x, training=True)
        layer.backward(w)
        eps = 1e-6
        for name in ("gamma", "beta"):
            analytic = layer.grads[name].copy()
            p = layer.params[name]
            for j in range(2):
                orig = p[j]
                p[j] = orig + eps
                fp = float((layer.forward(x, training=True) * w).sum())
                p[j] = orig - eps
                fm = float((layer.forward(x, training=True) * w).sum())
                p[j] = orig
                assert abs((fp - fm) / (2 * eps) - analytic[j]) < 1e-6

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            BatchNorm2D(2).backward(rng.normal(size=(1, 2, 2, 2)))

    def test_shape_validation(self, rng):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 4, 5, 5)))
        with pytest.raises(ValueError):
            BatchNorm2D(0)

    def test_trains_inside_a_conv_net(self, tiny_dataset, rng):
        net = Sequential(
            [
                Conv2D(1, 6, 3, rng=rng),
                BatchNorm2D(6),
                ReLU(),
                Flatten(),
                Dense(6 * 6 * 6, 10, rng=rng),
            ],
            name="bn_net",
            input_shape=(1, 8, 8),
        )
        opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
        x = tiny_dataset.x_train[:100]
        y = tiny_dataset.y_train[:100]
        first = None
        for _ in range(25):
            loss, _ = net.train_batch(x, y)
            opt.step()
            opt.zero_grad()
            if first is None:
                first = loss
        assert loss < first * 0.6

    def test_params_counted_as_other(self):
        layer = BatchNorm2D(8)
        assert layer.kind == "other"
        assert layer.param_count() == 16


class TestWeightCheckpoints:
    def test_save_load_roundtrip(self, tmp_path, rng):
        net = lenet_mini(seed=4)
        w = rng.normal(size=net.param_count())
        net.set_weights(w)
        path = tmp_path / "ckpt.npz"
        net.save_weights(path)
        other = lenet_mini(seed=99)
        other.load_weights(path)
        np.testing.assert_allclose(other.get_weights(), w)

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = lenet_mini(seed=4)
        path = tmp_path / "ckpt.npz"
        net.save_weights(path)
        from repro.models.zoo import logistic

        with pytest.raises(ValueError):
            logistic(input_shape=(1, 12, 12)).load_weights(path)

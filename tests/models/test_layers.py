"""Layer-level tests: shapes, caching discipline, and numerical
gradient checks against finite differences."""

import numpy as np
import pytest

from repro.models.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Tanh,
    col2im,
    im2col,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    g = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=1e-6):
    """Backward's input gradient must match finite differences of a
    scalar loss sum(out * w) for random w."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    w = rng.normal(size=out.shape)
    layer_grad = layer.backward(w)

    def loss():
        return float((layer.forward(x, training=False) * w).sum())

    num = numerical_grad(loss, x)
    np.testing.assert_allclose(layer_grad, num, atol=atol, rtol=1e-4)


def check_param_gradient(layer, x, atol=1e-6):
    """Parameter gradients must match finite differences."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=True)
    w = rng.normal(size=out.shape)
    layer.backward(w)
    for name, p in layer.params.items():
        def loss():
            return float((layer.forward(x, training=False) * w).sum())

        num = numerical_grad(loss, p)
        np.testing.assert_allclose(
            layer.grads[name], num, atol=atol, rtol=1e-4,
            err_msg=f"param {name}",
        )


class TestIm2col:
    def test_roundtrip_shapes(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, (1, 1), (0, 0))
        assert cols.shape == (2 * 4 * 4, 3 * 9)
        assert (oh, ow) == (4, 4)

    def test_identity_kernel(self, rng):
        """A 1x1 kernel at stride 1 reproduces the input pixels."""
        x = rng.normal(size=(1, 2, 4, 4))
        cols, oh, ow = im2col(x, 1, 1, (1, 1), (0, 0))
        assert (oh, ow) == (4, 4)
        np.testing.assert_allclose(
            cols.reshape(4, 4, 2).transpose(2, 0, 1), x[0]
        )

    def test_padding_expands_output(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        _, oh, ow = im2col(x, 3, 3, (1, 1), (1, 1))
        assert (oh, ow) == (4, 4)

    def test_col2im_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.normal(size=(2, 2, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, (2, 2), (1, 1))
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        back = col2im(c, x.shape, 3, 3, (2, 2), (1, 1))
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_kernel_too_large_raises(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        with pytest.raises(ValueError):
            im2col(x, 5, 5, (1, 1), (0, 0))


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(6, 4, rng=rng)
        out = layer.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 4)

    def test_gradients(self, rng):
        layer = Dense(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        check_input_gradient(layer, x)
        check_param_gradient(layer, x)

    def test_rejects_bad_shapes(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 6)))
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 5, 1)))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(4, 3)))

    def test_param_count(self):
        assert Dense(5, 3).param_count() == 5 * 3 + 3

    def test_kind_is_dense(self):
        assert Dense(2, 2).kind == "dense"


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(3, 8, 3, stride=1, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 6, 6)))
        assert out.shape == (2, 8, 6, 6)

    def test_forward_matches_naive(self, rng):
        """GEMM convolution equals a direct nested-loop convolution."""
        layer = Conv2D(2, 3, 3, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        w, b = layer.params["W"], layer.params["b"]
        naive = np.zeros((1, 3, 3, 3))
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    naive[0, o, i, j] = (patch * w[o]).sum() + b[o]
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_gradients(self, rng):
        layer = Conv2D(2, 3, 3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_input_gradient(layer, x, atol=1e-5)
        check_param_gradient(layer, x, atol=1e-5)

    def test_gradients_strided(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, rng=rng)
        x = rng.normal(size=(2, 1, 7, 7))
        check_input_gradient(layer, x, atol=1e-5)
        check_param_gradient(layer, x, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_kind_is_conv(self):
        assert Conv2D(1, 1, 1).kind == "conv"

    def test_output_shape_helper(self):
        layer = Conv2D(3, 8, 5, stride=1, padding=0)
        assert layer.output_shape((3, 28, 28)) == (8, 24, 24)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(
            out[0, 0], np.array([[5.0, 7.0], [13.0, 15.0]])
        )

    def test_maxpool_gradient_routes_to_max(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer = MaxPool2D(2)
        layer.forward(x, training=True)
        g = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(g[0, 0], expected)

    def test_maxpool_gradcheck(self, rng):
        # Use well-separated values so the max is stable under eps.
        x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8)
        check_input_gradient(MaxPool2D(2), x)

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(
            out[0, 0], np.array([[2.5, 4.5], [10.5, 12.5]])
        )

    def test_avgpool_gradcheck(self, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_gradient(AvgPool2D(2), x)


class TestActivations:
    def test_relu_gradcheck(self, rng):
        x = rng.normal(size=(3, 7)) + 0.05  # keep away from the kink
        x[np.abs(x) < 1e-3] = 0.5
        check_input_gradient(ReLU(), x)

    def test_tanh_gradcheck(self, rng):
        check_input_gradient(Tanh(), rng.normal(size=(3, 7)))

    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        layer = Flatten()
        out = layer.forward(x, training=True)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_dropout_inference_is_identity(self, rng):
        x = rng.normal(size=(4, 10))
        out = Dropout(0.5).forward(x, training=False)
        np.testing.assert_allclose(out, x)

    def test_dropout_training_masks_and_scales(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        kept = out != 0
        # Inverted dropout scales survivors by 1/keep.
        np.testing.assert_allclose(out[kept], 2.0)
        assert 0.4 < kept.mean() < 0.6

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

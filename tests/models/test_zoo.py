"""Model-zoo tests: parameter scales, shapes, wire sizes, FLOPs."""

import numpy as np
import pytest

from repro.models import (
    CIFAR_SHAPE,
    MNIST_SHAPE,
    build_model,
    lenet,
    lenet_mini,
    logistic,
    mlp,
    model_forward_flops,
    model_training_flops,
    model_wire_mb,
    profiling_family,
    vgg6,
    vgg_mini,
)


class TestLeNet:
    def test_param_count_near_paper(self):
        """Paper reports ~205K parameters."""
        total = lenet().param_count()
        assert 190_000 < total < 220_000

    def test_conv_dense_split(self):
        split = lenet().param_split()
        assert split.conv > 0 and split.dense > 0
        assert split.dense > split.conv  # dense-dominated, like LeNet

    def test_forward_on_mnist_shape(self, rng):
        net = lenet()
        out = net.forward(rng.normal(size=(2, *MNIST_SHAPE)))
        assert out.shape == (2, 10)

    def test_cifar_input_also_works(self, rng):
        net = lenet(input_shape=CIFAR_SHAPE)
        out = net.forward(rng.normal(size=(2, *CIFAR_SHAPE)))
        assert out.shape == (2, 10)


class TestVGG6:
    def test_param_scale(self):
        """Paper reports ~5.45M; our reconstruction lands within 2x
        (exact widths unpublished) and is conv-dominated."""
        net = vgg6()
        total = net.param_count()
        assert 2_500_000 < total < 8_000_000
        split = net.param_split()
        assert split.conv > 10 * split.dense

    def test_five_conv_layers(self):
        from repro.models.layers import Conv2D, Dense

        net = vgg6()
        convs = [l for l in net.layers if isinstance(l, Conv2D)]
        denses = [l for l in net.layers if isinstance(l, Dense)]
        assert len(convs) == 5
        assert len(denses) == 1  # "one densely connected layer"

    def test_forward_shape(self, rng):
        out = vgg6().forward(rng.normal(size=(1, *CIFAR_SHAPE)))
        assert out.shape == (1, 10)


class TestMiniModels:
    @pytest.mark.parametrize(
        "name", ["lenet_mini", "vgg_mini", "mlp", "logistic"]
    )
    def test_builds_and_runs(self, name, rng):
        net = build_model(name, input_shape=(1, 12, 12))
        out = net.forward(rng.normal(size=(2, 1, 12, 12)))
        assert out.shape == (2, 10)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet50", input_shape=(3, 32, 32))

    def test_seeded_builds_are_identical(self):
        a = lenet_mini(seed=7).get_weights()
        b = lenet_mini(seed=7).get_weights()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = lenet_mini(seed=7).get_weights()
        b = lenet_mini(seed=8).get_weights()
        assert not np.allclose(a, b)


class TestWireSize:
    def test_paper_sizes_used(self):
        assert model_wire_mb(lenet()) == 2.5
        assert model_wire_mb(vgg6()) == 65.4

    def test_fallback_from_params(self):
        m = logistic(input_shape=(1, 8, 8))
        assert model_wire_mb(m) == pytest.approx(
            m.param_count() * 4 / 1e6
        )


class TestFlops:
    def test_vgg_much_heavier_than_lenet(self):
        f_l = model_training_flops(lenet())
        f_v = model_training_flops(vgg6(input_shape=MNIST_SHAPE))
        assert f_v > 50 * f_l

    def test_training_is_3x_forward(self):
        net = lenet_mini()
        assert model_training_flops(net) == pytest.approx(
            3 * model_forward_flops(net)
        )

    def test_flops_requires_input_shape(self):
        from repro.models import Dense, Sequential

        net = Sequential([Dense(4, 2)], name="x")
        with pytest.raises(ValueError):
            model_forward_flops(net)


class TestProfilingFamily:
    def test_family_size_and_spread(self):
        family = profiling_family()
        assert len(family) == 12
        convs = {m.param_split().conv for m in family}
        denses = {m.param_split().dense for m in family}
        # distinct values along both regression axes
        assert len(convs) >= 4
        assert len(denses) >= 3

    def test_family_models_run(self, rng):
        m = profiling_family()[0]
        out = m.forward(rng.normal(size=(1, *MNIST_SHAPE)))
        assert out.shape == (1, 10)

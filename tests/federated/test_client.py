"""Local-training tests."""

import numpy as np
import pytest

from repro.federated.client import train_local
from repro.models import logistic, mlp


class TestTrainLocal:
    def test_loss_decreases(self, tiny_dataset, rng):
        model = logistic(input_shape=tiny_dataset.input_shape, seed=0)
        x, y = tiny_dataset.x_train[:200], tiny_dataset.y_train[:200]
        result = train_local(model, x, y, epochs=5, lr=0.05, rng=rng)
        assert result.losses[-1] < result.losses[0]
        assert result.n_samples == 200

    def test_weights_returned_match_model(self, tiny_dataset, rng):
        model = logistic(input_shape=tiny_dataset.input_shape, seed=0)
        x, y = tiny_dataset.x_train[:50], tiny_dataset.y_train[:50]
        result = train_local(model, x, y, epochs=1, rng=rng)
        np.testing.assert_allclose(result.weights, model.get_weights())

    def test_empty_data_is_noop(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape, seed=0)
        before = model.get_weights().copy()
        result = train_local(
            model, tiny_dataset.x_train[:0], tiny_dataset.y_train[:0]
        )
        np.testing.assert_allclose(result.weights, before)
        assert result.n_samples == 0
        assert np.isnan(result.final_loss)

    def test_mismatched_lengths_raise(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            train_local(
                model, tiny_dataset.x_train[:10], tiny_dataset.y_train[:9]
            )

    def test_deterministic_given_rng(self, tiny_dataset):
        x, y = tiny_dataset.x_train[:100], tiny_dataset.y_train[:100]
        results = []
        for _ in range(2):
            model = logistic(input_shape=tiny_dataset.input_shape, seed=0)
            r = train_local(
                model, x, y, epochs=2, rng=np.random.default_rng(9)
            )
            results.append(r.weights)
        np.testing.assert_allclose(results[0], results[1])

    def test_epochs_recorded(self, tiny_dataset, rng):
        model = mlp(input_shape=tiny_dataset.input_shape, seed=0)
        r = train_local(
            model,
            tiny_dataset.x_train[:60],
            tiny_dataset.y_train[:60],
            epochs=3,
            rng=rng,
        )
        assert len(r.losses) == 3

"""Synchronous FL simulation tests: learning + virtual clock coupling."""

import numpy as np
import pytest

from repro.data.partition import UserData, iid_partition, noniid_partition
from repro.device.registry import make_device
from repro.federated.metrics import evaluate_accuracy
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic
from repro.network.link import make_link


def make_sim(dataset, n_users=4, devices=None, links=None, **cfg_kw):
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n_users, rng)
    model = logistic(input_shape=dataset.input_shape, seed=1)
    cfg = SimulationConfig(lr=0.05, **cfg_kw)
    return FederatedSimulation(
        dataset, model, users, devices=devices, links=links, config=cfg
    )


class TestLearning:
    def test_accuracy_improves_over_rounds(self, tiny_dataset):
        sim = make_sim(tiny_dataset, eval_every=1)
        history = sim.run(8)
        accs = history.accuracies()
        assert accs[-1] > accs[0]
        assert accs[-1] > 0.5

    def test_noniid_worse_than_iid(self, tiny_dataset):
        iid = make_sim(tiny_dataset, eval_every=8)
        iid.run(8)
        rng = np.random.default_rng(0)
        users = noniid_partition(tiny_dataset, 4, 2, rng)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        noniid = FederatedSimulation(
            tiny_dataset, model, users,
            config=SimulationConfig(lr=0.05, eval_every=8),
        )
        noniid.run(8)
        assert iid.final_accuracy() > noniid.final_accuracy()

    def test_global_model_changes_each_round(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        w0 = sim.server.global_weights().copy()
        sim.run_round()
        assert not np.allclose(w0, sim.server.global_weights())

    def test_train_false_keeps_weights(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        w0 = sim.server.global_weights().copy()
        sim.run_round(train=False)
        np.testing.assert_allclose(w0, sim.server.global_weights())

    def test_eval_every(self, tiny_dataset):
        sim = make_sim(tiny_dataset, eval_every=2)
        history = sim.run(4)
        evals = [r.accuracy for r in history.records]
        assert evals[0] is None and evals[1] is not None
        assert evals[2] is None and evals[3] is not None


class TestVirtualClock:
    def test_makespan_from_devices(self, tiny_dataset):
        devices = [
            make_device(n, jitter=0.0)
            for n in ("pixel2", "nexus6", "mate10", "nexus6p")
        ]
        sim = make_sim(tiny_dataset, devices=devices, eval_every=10)
        record = sim.run_round(train=False)
        assert record.makespan_s > 0
        active = record.per_user_time_s[record.per_user_time_s > 0]
        assert record.makespan_s == pytest.approx(active.max())
        # straggler gap exists with equal split on heterogeneous devices
        assert record.makespan_s > record.mean_time_s

    def test_links_add_comm_time(self, tiny_dataset):
        devices = [make_device("pixel2", jitter=0.0) for _ in range(4)]
        no_link = make_sim(tiny_dataset, devices=devices)
        t0 = no_link.run_round(train=False).makespan_s
        devices2 = [make_device("pixel2", jitter=0.0) for _ in range(4)]
        links = [make_link("lte") for _ in range(4)]
        with_link = make_sim(tiny_dataset, devices=devices2, links=links)
        t1 = with_link.run_round(train=False).makespan_s
        assert t1 > t0

    def test_no_devices_zero_time(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        record = sim.run_round(train=False)
        assert record.makespan_s == 0.0

    def test_devices_accumulate_heat_across_rounds(self, tiny_dataset):
        devices = [make_device("nexus6p", jitter=0.0) for _ in range(4)]
        sim = make_sim(tiny_dataset, devices=devices, aggregation_s=0.0)
        sim.run(2, train=False)
        assert devices[0].thermal.temp_c > 25.0

    def test_total_time_is_sum_of_makespans(self, tiny_dataset):
        devices = [make_device("pixel2", jitter=0.0) for _ in range(4)]
        sim = make_sim(tiny_dataset, devices=devices)
        h = sim.run(3, train=False)
        assert h.total_time_s == pytest.approx(sum(h.makespans()))


class TestValidation:
    def test_device_count_mismatch(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            FederatedSimulation(
                tiny_dataset, model, users,
                devices=[make_device("pixel2")],
            )

    def test_empty_users_raise(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            FederatedSimulation(tiny_dataset, model, [])

    def test_all_empty_users_raise_at_round(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape)
        users = [UserData(0, np.zeros(0, dtype=np.int64), (0,))]
        sim = FederatedSimulation(tiny_dataset, model, users)
        with pytest.raises(RuntimeError):
            sim.run_round()

    def test_bad_round_count(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        with pytest.raises(ValueError):
            sim.run(0)


class TestMetrics:
    def test_evaluate_accuracy_batched_equals_full(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape, seed=2)
        a = evaluate_accuracy(
            model, tiny_dataset.x_test, tiny_dataset.y_test, batch_size=32
        )
        b = evaluate_accuracy(
            model, tiny_dataset.x_test, tiny_dataset.y_test, batch_size=10_000
        )
        assert a == pytest.approx(b)

    def test_empty_eval_set_raises(self, tiny_dataset):
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            evaluate_accuracy(
                model, tiny_dataset.x_test[:0], tiny_dataset.y_test[:0]
            )

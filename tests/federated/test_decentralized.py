"""Decentralized (gossip) FL tests."""

import networkx as nx
import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.federated.decentralized import (
    DecentralizedConfig,
    DecentralizedSimulation,
    make_topology,
    metropolis_weights,
)
from repro.models import logistic


class TestTopologies:
    def test_ring(self):
        g = make_topology("ring", 6)
        assert g.number_of_nodes() == 6
        assert all(d == 2 for _, d in g.degree())

    def test_complete(self):
        g = make_topology("complete", 5)
        assert g.number_of_edges() == 10

    def test_random_connected(self):
        for seed in range(5):
            g = make_topology(
                "random", 8, np.random.default_rng(seed)
            )
            assert nx.is_connected(g)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_topology("torus", 4)
        with pytest.raises(ValueError):
            make_topology("ring", 1)


class TestMetropolisWeights:
    @pytest.mark.parametrize("kind,n", [("ring", 5), ("complete", 4), ("random", 6)])
    def test_doubly_stochastic(self, kind, n):
        g = make_topology(kind, n, np.random.default_rng(0))
        w = metropolis_weights(g)
        np.testing.assert_allclose(w.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)
        assert (w >= -1e-12).all()
        np.testing.assert_allclose(w, w.T)

    def test_consensus_convergence(self):
        """Repeated mixing drives arbitrary vectors to their average."""
        g = make_topology("ring", 6)
        w = metropolis_weights(g)
        x = np.arange(6.0)
        for _ in range(300):
            x = w @ x
        np.testing.assert_allclose(x, 2.5, atol=1e-6)


class TestDecentralizedSimulation:
    def make_sim(self, dataset, n=4, kind="ring", **cfg_kw):
        rng = np.random.default_rng(0)
        users = iid_partition(dataset, n, rng)
        graph = make_topology(kind, n, rng)
        model = logistic(input_shape=dataset.input_shape, seed=1)
        return DecentralizedSimulation(
            dataset, model, users, graph,
            config=DecentralizedConfig(lr=0.05, **cfg_kw),
        )

    def test_learns_without_server(self, tiny_dataset):
        sim = self.make_sim(tiny_dataset)
        sim.run(8)
        assert sim.mean_accuracy() > 0.5

    def test_gossip_reduces_consensus_distance(self, tiny_dataset):
        sim = self.make_sim(tiny_dataset)
        sim.run_round()
        d_after_train = sim.consensus_distance()
        # pure mixing rounds (no training) shrink disagreement
        for _ in range(10):
            sim.replicas = sim.mixing @ sim.replicas
        assert sim.consensus_distance() < d_after_train

    def test_complete_graph_tighter_consensus_than_ring(self, tiny_dataset):
        ring = self.make_sim(tiny_dataset, kind="ring")
        complete = self.make_sim(tiny_dataset, kind="complete")
        ring.run(5)
        complete.run(5)
        assert complete.consensus_distance() <= ring.consensus_distance()

    def test_empty_nodes_relay(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        users[1].indices = np.zeros(0, dtype=np.int64)  # pure relay
        graph = make_topology("ring", 3)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = DecentralizedSimulation(tiny_dataset, model, users, graph)
        sim.run(4)
        assert sim.node_accuracy(1) > 0.3  # relay inherits learning

    def test_validation(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 4, rng)
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            DecentralizedSimulation(
                tiny_dataset, model, users, make_topology("ring", 5)
            )
        disconnected = nx.Graph()
        disconnected.add_nodes_from(range(4))
        with pytest.raises(ValueError):
            DecentralizedSimulation(
                tiny_dataset, model, users, disconnected
            )
        sim = self.make_sim(tiny_dataset)
        with pytest.raises(ValueError):
            sim.run(0)

"""Asynchronous FL tests."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.device.registry import make_device
from repro.federated.asynchronous import (
    AsyncConfig,
    AsyncFederatedSimulation,
)
from repro.models import logistic


def make_async(dataset, device_names, n_users=None, **cfg_kw):
    n = len(device_names)
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n, rng)
    devices = [
        make_device(name, jitter=0.0, seed=i)
        for i, name in enumerate(device_names)
    ]
    model = logistic(input_shape=dataset.input_shape, seed=1)
    return AsyncFederatedSimulation(
        dataset, model, users, devices, config=AsyncConfig(**cfg_kw)
    )


class TestAsyncSimulation:
    def test_updates_arrive_and_model_learns(self, tiny_dataset):
        sim = make_async(
            tiny_dataset, ["pixel2", "nexus6", "mate10"], lr=0.05
        )
        updates = sim.run(horizon_s=120.0)
        assert len(updates) > 3
        assert sim.final_accuracy() > 0.4

    def test_fast_devices_update_more(self, tiny_dataset):
        sim = make_async(tiny_dataset, ["pixel2", "nexus6p"])
        sim.run(horizon_s=200.0)
        counts = sim.update_counts()
        assert counts[0] > counts[1]  # pixel2 outpaces the straggler

    def test_staleness_recorded_and_decays_mix(self, tiny_dataset):
        sim = make_async(
            tiny_dataset, ["pixel2", "nexus6p"], base_mix=0.6
        )
        sim.run(horizon_s=300.0)
        stale = [u for u in sim.updates if u.staleness > 0]
        assert stale, "the slow device must see stale versions"
        for u in stale:
            assert u.mix == pytest.approx(0.6 / (1 + u.staleness))

    def test_clock_advances_to_horizon(self, tiny_dataset):
        sim = make_async(tiny_dataset, ["pixel2", "pixel2"])
        sim.run(horizon_s=50.0)
        assert sim.clock_s <= 50.0 + 1e-9
        assert sim.clock_s > 0

    def test_resumable(self, tiny_dataset):
        sim = make_async(tiny_dataset, ["pixel2", "pixel2"])
        first = sim.run(horizon_s=40.0)
        second = sim.run(horizon_s=40.0)
        assert len(sim.updates) == len(first) + len(second)

    def test_validation(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 2, rng)
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            AsyncFederatedSimulation(
                tiny_dataset, model, users, [make_device("pixel2")]
            )
        with pytest.raises(ValueError):
            AsyncConfig(base_mix=0.0)
        sim = make_async(tiny_dataset, ["pixel2", "pixel2"])
        with pytest.raises(ValueError):
            sim.run(horizon_s=0.0)


class TestSyncVsAsync:
    def test_async_no_barrier_more_updates_than_rounds(self, tiny_dataset):
        """Within the same virtual time the async server applies more
        updates than the synchronous round count — the latency win the
        paper acknowledges (before the divergence caveat)."""
        sim = make_async(tiny_dataset, ["pixel2", "nexus6p"])
        # one synchronous round would take the straggler's epoch time
        straggler_epoch = sim._epoch_time(1)
        sim.devices[1].reset()
        updates = sim.run(horizon_s=straggler_epoch * 1.01)
        # pixel2 alone contributes several updates in that window
        assert len(updates) >= 2

"""FedAvg aggregation tests."""

import numpy as np
import pytest

from repro.federated.server import ParameterServer, fedavg_aggregate
from repro.models import logistic


class TestFedavgAggregate:
    def test_weighted_mean(self):
        w = fedavg_aggregate(
            [np.array([0.0, 0.0]), np.array([1.0, 2.0])], [1, 3]
        )
        np.testing.assert_allclose(w, [0.75, 1.5])

    def test_equal_weights_is_mean(self):
        vs = [np.array([1.0]), np.array([3.0]), np.array([5.0])]
        np.testing.assert_allclose(fedavg_aggregate(vs, [2, 2, 2]), [3.0])

    def test_zero_count_clients_ignored(self):
        w = fedavg_aggregate(
            [np.array([100.0]), np.array([1.0])], [0, 5]
        )
        np.testing.assert_allclose(w, [1.0])

    def test_all_zero_counts_raise(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([np.array([1.0])], [0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([np.zeros(2), np.zeros(3)], [1, 1])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([np.zeros(2)], [1, 2])

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([np.zeros(2)], [-1])

    def test_idempotent_on_identical_clients(self, rng):
        v = rng.normal(size=10)
        out = fedavg_aggregate([v.copy(), v.copy()], [3, 7])
        np.testing.assert_allclose(out, v)


class TestParameterServer:
    def test_aggregate_installs_weights(self):
        model = logistic(input_shape=(1, 4, 4))
        server = ParameterServer(model)
        target = np.ones(model.param_count())
        server.aggregate([target], [10])
        np.testing.assert_allclose(server.global_weights(), target)
        assert server.round_idx == 1

    def test_round_counter_increments(self):
        model = logistic(input_shape=(1, 4, 4))
        server = ParameterServer(model)
        w = model.get_weights()
        for i in range(3):
            server.aggregate([w], [1])
        assert server.round_idx == 3

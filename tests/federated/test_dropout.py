"""Straggler-dropout policy tests."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.device.registry import make_device
from repro.federated.dropout import DropoutPolicy, apply_deadline
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic


class TestApplyDeadline:
    def test_slow_user_dropped(self):
        times = [10.0, 11.0, 50.0]
        survivors, dropped, round_time = apply_deadline(
            times, [0, 1, 2], DropoutPolicy(deadline_factor=1.5)
        )
        assert survivors == [0, 1]
        assert dropped == [2]
        # server stops waiting at the deadline (1.5 * median 11)
        assert round_time == pytest.approx(16.5)

    def test_nobody_dropped_when_homogeneous(self):
        times = [10.0, 10.5, 11.0]
        survivors, dropped, round_time = apply_deadline(
            times, [0, 1, 2], DropoutPolicy(deadline_factor=1.5)
        )
        assert dropped == []
        assert round_time == pytest.approx(11.0)

    def test_min_participants_floor(self):
        times = [1.0, 100.0, 200.0]
        survivors, dropped, _ = apply_deadline(
            times,
            [0, 1, 2],
            DropoutPolicy(deadline_factor=0.1, min_participants=2),
        )
        assert len(survivors) == 2
        assert survivors == [0, 1]  # fastest re-admitted

    def test_inactive_users_ignored(self):
        times = [5.0, 999.0, 6.0]
        survivors, dropped, _ = apply_deadline(
            times, [0, 2], DropoutPolicy(deadline_factor=2.0)
        )
        assert survivors == [0, 2]
        assert dropped == []

    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutPolicy(deadline_factor=0.0)
        with pytest.raises(ValueError):
            DropoutPolicy(min_participants=0)
        with pytest.raises(ValueError):
            apply_deadline([1.0], [], DropoutPolicy())


class TestDropoutInSimulation:
    def test_straggler_excluded_from_aggregation(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 4, rng)
        # three fast devices + one catastrophic straggler
        devices = [make_device("pixel2", jitter=0.0) for _ in range(3)]
        devices.append(make_device("nexus6p", jitter=0.0))
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset,
            model,
            users,
            devices=devices,
            config=SimulationConfig(lr=0.05, eval_every=1),
            dropout=DropoutPolicy(deadline_factor=1.3),
        )
        record = sim.run_round()
        assert record.participant_count == 3  # straggler dropped
        # round ends at the deadline, earlier than the straggler's time
        assert record.makespan_s < record.per_user_time_s.max()

    def test_dropout_requires_devices(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 2, rng)
        model = logistic(input_shape=tiny_dataset.input_shape)
        with pytest.raises(ValueError):
            FederatedSimulation(
                tiny_dataset, model, users, dropout=DropoutPolicy()
            )

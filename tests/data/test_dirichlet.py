"""Dirichlet label-skew partitioner tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import class_histogram, dirichlet_noniid_partition


class TestDirichletPartition:
    def test_total_and_disjoint(self, tiny_dataset, rng):
        users = dirichlet_noniid_partition(tiny_dataset, 5, 0.5, rng)
        total = sum(u.size for u in users)
        assert total == tiny_dataset.train_size
        all_idx = np.concatenate([u.indices for u in users])
        assert len(all_idx) == len(set(all_idx.tolist()))

    def test_low_concentration_is_skewed(self, tiny_dataset):
        rng = np.random.default_rng(3)
        users = dirichlet_noniid_partition(tiny_dataset, 6, 0.05, rng)
        # extreme skew: most users miss many classes
        missing = [
            10 - u.num_classes() for u in users if u.size > 0
        ]
        assert max(missing) >= 4

    def test_high_concentration_approaches_iid(self, tiny_dataset):
        rng = np.random.default_rng(3)
        users = dirichlet_noniid_partition(tiny_dataset, 5, 500.0, rng)
        for u in users:
            hist = class_histogram(tiny_dataset, u)
            # every class represented, sizes near balanced
            assert (hist > 0).all()
            assert hist.max() < 4 * max(hist.min(), 1)

    def test_skew_monotone_in_concentration(self, tiny_dataset):
        def mean_classes(conc, seed):
            rng = np.random.default_rng(seed)
            users = dirichlet_noniid_partition(
                tiny_dataset, 6, conc, rng
            )
            return np.mean([u.num_classes() for u in users])

        lo = np.mean([mean_classes(0.05, s) for s in range(4)])
        hi = np.mean([mean_classes(10.0, s) for s in range(4)])
        assert hi > lo + 1.0

    def test_classes_match_contents(self, tiny_dataset, rng):
        users = dirichlet_noniid_partition(tiny_dataset, 4, 0.3, rng)
        for u in users:
            if u.size:
                labels = set(tiny_dataset.y_train[u.indices].tolist())
                assert labels == set(u.classes)

    def test_min_size_enforced(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = dirichlet_noniid_partition(
            tiny_dataset, 8, 0.02, rng, min_size=3
        )
        assert all(u.size >= 3 for u in users)

    def test_total_subsample(self, tiny_dataset, rng):
        users = dirichlet_noniid_partition(
            tiny_dataset, 4, 1.0, rng, total=300
        )
        total = sum(u.size for u in users)
        assert abs(total - 300) <= 10  # per-class rounding

    def test_validation(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            dirichlet_noniid_partition(tiny_dataset, 0, 1.0, rng)
        with pytest.raises(ValueError):
            dirichlet_noniid_partition(tiny_dataset, 3, 0.0, rng)
        with pytest.raises(ValueError):
            dirichlet_noniid_partition(
                tiny_dataset, 3, 1.0, rng, total=10**9
            )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        n_users=st.integers(2, 8),
        conc=st.floats(0.05, 50.0),
    )
    def test_property_conservation(self, tiny_dataset, seed, n_users, conc):
        rng = np.random.default_rng(seed)
        users = dirichlet_noniid_partition(
            tiny_dataset, n_users, conc, rng
        )
        assert sum(u.size for u in users) == tiny_dataset.train_size
        all_idx = np.concatenate(
            [u.indices for u in users if u.size]
        )
        assert len(all_idx) == len(set(all_idx.tolist()))

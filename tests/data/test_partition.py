"""Partitioner tests: every data layout the paper evaluates."""

import numpy as np
import pytest

from repro.data.partition import (
    class_histogram,
    iid_partition,
    iid_sizes,
    imbalanced_iid_sizes,
    materialize_schedule,
    nclass_noniid_classes,
    noniid_partition,
    outlier_scenario,
    partition_from_sizes,
)


class TestIidSizes:
    def test_equal_split(self):
        np.testing.assert_array_equal(iid_sizes(4, 100), [25, 25, 25, 25])

    def test_remainder_spread(self):
        sizes = iid_sizes(3, 100)
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 1

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            iid_sizes(10, 5)


class TestImbalancedSizes:
    def test_sums_to_total(self, rng):
        sizes = imbalanced_iid_sizes(10, 1000, 0.5, rng)
        assert sizes.sum() == 1000
        assert (sizes >= 1).all()

    def test_zero_ratio_is_balanced(self, rng):
        sizes = imbalanced_iid_sizes(10, 1000, 0.0, rng)
        assert sizes.max() - sizes.min() <= 1

    def test_realized_ratio_tracks_request(self, rng):
        sizes = imbalanced_iid_sizes(50, 50_000, 0.6, rng)
        realized = sizes.std() / sizes.mean()
        assert 0.4 < realized < 0.8

    def test_monotone_dispersion(self, rng):
        lo = imbalanced_iid_sizes(30, 30_000, 0.2, np.random.default_rng(1))
        hi = imbalanced_iid_sizes(30, 30_000, 0.9, np.random.default_rng(1))
        assert hi.std() > lo.std()

    def test_negative_ratio_raises(self, rng):
        with pytest.raises(ValueError):
            imbalanced_iid_sizes(5, 100, -0.1, rng)


class TestPartitionFromSizes:
    def test_sizes_respected(self, tiny_dataset, rng):
        users = partition_from_sizes(tiny_dataset, [100, 200, 50], rng)
        assert [u.size for u in users] == [100, 200, 50]

    def test_class_uniform_mix(self, tiny_dataset, rng):
        users = partition_from_sizes(tiny_dataset, [200, 200], rng)
        for u in users:
            hist = class_histogram(tiny_dataset, u)
            assert hist.min() >= 15  # ~20 per class when uniform

    def test_no_overlap_between_users(self, tiny_dataset, rng):
        users = partition_from_sizes(tiny_dataset, [150, 150, 150], rng)
        all_idx = np.concatenate([u.indices for u in users])
        assert len(all_idx) == len(set(all_idx.tolist()))

    def test_oversubscription_raises(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            partition_from_sizes(tiny_dataset, [500, 500], rng)

    def test_iid_partition_covers_classes(self, tiny_dataset, rng):
        users = iid_partition(tiny_dataset, 4, rng)
        for u in users:
            assert u.num_classes() == 10


class TestNonIid:
    def test_class_counts(self, rng):
        sets = nclass_noniid_classes(8, 3, 10, rng)
        assert len(sets) == 8
        for s in sets:
            assert len(s) == 3
            assert all(0 <= c < 10 for c in s)

    def test_full_coverage_when_possible(self, rng):
        for seed in range(5):
            sets = nclass_noniid_classes(
                10, 4, 10, np.random.default_rng(seed)
            )
            covered = set(c for s in sets for c in s)
            assert covered == set(range(10))

    def test_invalid_classes_per_user(self, rng):
        with pytest.raises(ValueError):
            nclass_noniid_classes(5, 0, 10, rng)
        with pytest.raises(ValueError):
            nclass_noniid_classes(5, 11, 10, rng)

    def test_partition_respects_class_sets(self, tiny_dataset, rng):
        users = noniid_partition(tiny_dataset, 5, 3, rng)
        for u in users:
            labels = set(tiny_dataset.y_train[u.indices].tolist())
            assert labels <= set(u.classes)

    def test_partition_total(self, tiny_dataset, rng):
        users = noniid_partition(tiny_dataset, 5, 3, rng, total=500)
        assert sum(u.size for u in users) == 500

    def test_size_std_disperses_class_sizes(self, tiny_dataset):
        users = noniid_partition(
            tiny_dataset, 4, 4, np.random.default_rng(3), size_std=0.8
        )
        hists = [class_histogram(tiny_dataset, u) for u in users]
        spread = [h[h > 0].std() for h in hists if (h > 0).sum() > 1]
        assert max(spread) > 0


class TestOutlierScenario:
    @pytest.mark.parametrize("mode", ["missing", "separate", "merge"])
    def test_user_counts(self, tiny_dataset, mode):
        users = outlier_scenario(
            tiny_dataset, mode, np.random.default_rng(0),
            samples_per_user=90,
        )
        expected = {"missing": 3, "separate": 4, "merge": 3}[mode]
        assert len(users) == expected

    def test_missing_excludes_one_class(self, tiny_dataset):
        users = outlier_scenario(
            tiny_dataset, "missing", np.random.default_rng(1),
            samples_per_user=90,
        )
        covered = set(c for u in users for c in u.classes)
        assert len(covered) == 9

    def test_separate_adds_one_class_user(self, tiny_dataset):
        users = outlier_scenario(
            tiny_dataset, "separate", np.random.default_rng(1),
            samples_per_user=90,
        )
        assert len(users[-1].classes) == 1
        covered = set(c for u in users for c in u.classes)
        assert len(covered) == 10

    def test_merge_extends_last_user(self, tiny_dataset):
        sep = outlier_scenario(
            tiny_dataset, "separate", np.random.default_rng(1),
            samples_per_user=90,
        )
        mer = outlier_scenario(
            tiny_dataset, "merge", np.random.default_rng(1),
            samples_per_user=90,
        )
        outlier_class = sep[-1].classes[0]
        assert outlier_class in mer[-1].classes
        assert len(mer[-1].classes) == 4

    def test_same_seed_same_base_classes_across_modes(self, tiny_dataset):
        a = outlier_scenario(
            tiny_dataset, "missing", np.random.default_rng(2),
            samples_per_user=90,
        )
        b = outlier_scenario(
            tiny_dataset, "separate", np.random.default_rng(2),
            samples_per_user=90,
        )
        assert [u.classes for u in a[:2]] == [v.classes for v in b[:2]]

    def test_bad_mode_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            outlier_scenario(tiny_dataset, "exclude", np.random.default_rng(0))


class TestMaterializeSchedule:
    def test_counts_and_classes(self, tiny_dataset):
        users = materialize_schedule(
            tiny_dataset,
            shard_counts=[3, 0, 2],
            user_classes=[(0, 1), (2,), (3, 4, 5)],
            shard_size=20,
        )
        assert [u.size for u in users] == [60, 0, 40]
        for u in users:
            if u.size:
                labels = set(tiny_dataset.y_train[u.indices].tolist())
                assert labels <= set(u.classes)

    def test_zero_user_participates_not(self, tiny_dataset):
        users = materialize_schedule(
            tiny_dataset, [0, 1], [(0,), (1,)], shard_size=10
        )
        assert users[0].size == 0 and users[1].size == 10

    def test_mismatched_lengths_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            materialize_schedule(tiny_dataset, [1, 2], [(0,)], 10)

    def test_deterministic_given_seed(self, tiny_dataset):
        a = materialize_schedule(
            tiny_dataset, [2, 2], [(0, 1), (2, 3)], 15, seed=3
        )
        b = materialize_schedule(
            tiny_dataset, [2, 2], [(0, 1), (2, 3)], 15, seed=3
        )
        for ua, ub in zip(a, b):
            np.testing.assert_array_equal(ua.indices, ub.indices)

"""Shard bookkeeping tests."""

import numpy as np
import pytest

from repro.data.shards import ShardPool, samples_for_shards, shards_for_samples


class TestConversions:
    def test_ceiling_division(self):
        assert shards_for_samples(100, 100) == 1
        assert shards_for_samples(101, 100) == 2
        assert shards_for_samples(0, 100) == 0

    def test_samples_for_shards(self):
        assert samples_for_shards(3, 100) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            shards_for_samples(10, 0)
        with pytest.raises(ValueError):
            shards_for_samples(-1, 10)
        with pytest.raises(ValueError):
            samples_for_shards(-1, 10)


class TestShardPool:
    def make_pool(self, shard_size=10):
        by_class = {
            0: np.arange(0, 50),
            1: np.arange(50, 100),
        }
        return ShardPool(by_class, shard_size, seed=0)

    def test_draw_size(self):
        pool = self.make_pool()
        idx = pool.draw([0, 1], 4)
        assert idx.shape == (40,)

    def test_draw_without_replacement_first(self):
        pool = self.make_pool()
        idx = pool.draw([0], 5)  # exactly exhausts class 0
        assert len(set(idx.tolist())) == 50

    def test_round_robin_over_classes(self):
        pool = self.make_pool()
        idx = pool.draw([0, 1], 2)
        first, second = idx[:10], idx[10:]
        assert (first < 50).all()
        assert (second >= 50).all()

    def test_exhaustion_falls_back_to_replacement(self):
        pool = self.make_pool()
        idx = pool.draw([0], 7)  # 70 > 50 available
        assert idx.shape == (70,)

    def test_remaining_shards(self):
        pool = self.make_pool()
        assert pool.remaining_shards(0) == 5
        pool.draw([0], 2)
        assert pool.remaining_shards(0) == 3
        assert pool.remaining_shards(99) == 0

    def test_unknown_classes_raise(self):
        pool = self.make_pool()
        with pytest.raises(ValueError):
            pool.draw([7], 1)

    def test_zero_draw(self):
        pool = self.make_pool()
        assert pool.draw([0], 0).size == 0

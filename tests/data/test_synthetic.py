"""Synthetic dataset tests: determinism, structure, learnability."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_PRESETS,
    SyntheticConfig,
    load_preset,
    make_dataset,
)


class TestGeneration:
    def test_shapes(self, tiny_dataset):
        assert tiny_dataset.x_train.shape == (600, 1, 8, 8)
        assert tiny_dataset.y_train.shape == (600,)
        assert tiny_dataset.x_test.shape == (200, 1, 8, 8)
        assert tiny_dataset.input_shape == (1, 8, 8)

    def test_deterministic(self):
        cfg = SyntheticConfig(seed=9, train_size=100, test_size=50)
        a = make_dataset(cfg)
        b = make_dataset(cfg)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_seed_changes_data(self):
        a = make_dataset(SyntheticConfig(seed=1, train_size=100, test_size=50))
        b = make_dataset(SyntheticConfig(seed=2, train_size=100, test_size=50))
        assert not np.allclose(a.x_train, b.x_train)

    def test_all_classes_present(self, tiny_dataset):
        assert set(np.unique(tiny_dataset.y_train)) == set(range(10))

    def test_class_indices_partition_trainset(self, tiny_dataset):
        idx = tiny_dataset.class_indices()
        total = np.concatenate(list(idx.values()))
        assert sorted(total) == list(range(tiny_dataset.train_size))
        for c, arr in idx.items():
            assert (tiny_dataset.y_train[arr] == c).all()

    def test_overrides(self):
        ds = make_dataset(
            SyntheticConfig(seed=0, train_size=100, test_size=50),
            train_size=80,
        )
        assert ds.train_size == 80

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            make_dataset(SyntheticConfig(train_size=0))


class TestLearnability:
    def test_classes_are_separable(self, tiny_dataset):
        """A nearest-class-mean classifier must beat chance by a wide
        margin — the datasets must carry class signal."""
        means = np.stack(
            [
                tiny_dataset.x_train[tiny_dataset.y_train == c].mean(0)
                for c in range(10)
            ]
        )
        flat_means = means.reshape(10, -1)
        flat_test = tiny_dataset.x_test.reshape(len(tiny_dataset.x_test), -1)
        d = ((flat_test[:, None, :] - flat_means[None]) ** 2).sum(-1)
        acc = (d.argmin(1) == tiny_dataset.y_test).mean()
        assert acc > 0.4

    def test_noise_controls_difficulty(self):
        def ncm_acc(noise):
            ds = make_dataset(
                SyntheticConfig(
                    seed=5, train_size=500, test_size=300, noise=noise
                )
            )
            means = np.stack(
                [ds.x_train[ds.y_train == c].mean(0) for c in range(10)]
            ).reshape(10, -1)
            flat = ds.x_test.reshape(len(ds.x_test), -1)
            d = ((flat[:, None] - means[None]) ** 2).sum(-1)
            return (d.argmin(1) == ds.y_test).mean()

        assert ncm_acc(0.5) > ncm_acc(4.0)


class TestPresets:
    def test_expected_presets_exist(self):
        for name in ("mnist", "cifar10", "mnist_mini", "cifar10_mini"):
            assert name in DATASET_PRESETS

    def test_mini_presets_load(self):
        ds = load_preset("mnist_mini")
        assert ds.name == "mnist_mini"
        assert ds.input_shape == (1, 12, 12)
        ds = load_preset("cifar10_mini")
        assert ds.input_shape == (3, 12, 12)

    def test_full_preset_shapes_match_real_datasets(self):
        m = DATASET_PRESETS["mnist"]
        assert m.shape == (1, 28, 28) and m.train_size == 60_000
        c = DATASET_PRESETS["cifar10"]
        assert c.shape == (3, 32, 32) and c.train_size == 50_000

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            load_preset("imagenet")

    def test_subset_returns_matching_labels(self, tiny_dataset):
        idx = np.array([0, 5, 10])
        x, y = tiny_dataset.subset(idx)
        np.testing.assert_array_equal(y, tiny_dataset.y_train[idx])
        assert x.shape[0] == 3

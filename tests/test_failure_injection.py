"""Failure-injection and degenerate-input tests across the stack.

What happens when batteries die, schedules are infeasible, data
vanishes, links are absurd, or inputs are adversarial — the system must
fail loudly (ValueError/RuntimeError) or degrade gracefully (documented
fallbacks), never silently corrupt results.
"""

import numpy as np
import pytest

from repro.core import build_cost_matrix, fed_lbap, fed_minavg
from repro.data import iid_partition, load_preset, materialize_schedule
from repro.device import (
    BatteryDepletedError,
    MobileDevice,
    TrainingWorkload,
    make_device,
)
from repro.federated import (
    FederatedSimulation,
    SimulationConfig,
    fedavg_aggregate,
)
from repro.models import logistic
from repro.network.link import Link


class TestBatteryFailures:
    def test_long_run_drains_battery_to_floor(self):
        """A multi-hour sustained workload floors the battery at zero
        instead of going negative."""
        dev = make_device("pixel2", jitter=0.0)
        w = TrainingWorkload(1e9, 200_000, batch_size=20)
        dev.run_workload(w, record=False)
        assert dev.battery.soc >= 0.0

    def test_strict_drain_raises(self):
        dev = make_device("pixel2", jitter=0.0)
        with pytest.raises(BatteryDepletedError):
            dev.battery.drain(1e9, 1e9, strict=True)

    def test_low_battery_device_sits_out(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        devices = [make_device("pixel2", jitter=0.0) for _ in range(3)]
        devices[1].battery.reset(0.05)  # nearly dead
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset,
            model,
            users,
            devices=devices,
            config=SimulationConfig(lr=0.05, min_soc=0.2, eval_every=1),
        )
        rec = sim.run_round()
        assert rec.participant_count == 2
        assert rec.per_user_time_s[1] == 0.0

    def test_all_devices_dead_raises(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 2, rng)
        devices = [make_device("pixel2", jitter=0.0) for _ in range(2)]
        for d in devices:
            d.battery.reset(0.01)
        model = logistic(input_shape=tiny_dataset.input_shape)
        sim = FederatedSimulation(
            tiny_dataset, model, users, devices=devices,
            config=SimulationConfig(min_soc=0.2),
        )
        with pytest.raises(RuntimeError):
            sim.run_round()

    def test_recharged_device_rejoins(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 2, rng)
        devices = [make_device("pixel2", jitter=0.0) for _ in range(2)]
        devices[1].battery.reset(0.1)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset, model, users, devices=devices,
            config=SimulationConfig(lr=0.05, min_soc=0.2, eval_every=5),
        )
        assert sim.run_round().participant_count == 1
        devices[1].battery.reset(1.0)  # user plugged the phone in
        assert sim.run_round().participant_count == 2


class TestSchedulerFailures:
    def test_lbap_rejects_nan_costs(self):
        cost = np.array([[1.0, np.nan, 3.0]])
        with pytest.raises(ValueError):
            fed_lbap(cost, 2)

    def test_cost_matrix_rejects_nan_curve(self):
        with pytest.raises(ValueError):
            build_cost_matrix([lambda x: float("nan")], 2, 100)

    def test_minavg_single_user_takes_everything(self):
        sched = fed_minavg(
            [lambda x: 0.01 * x],
            [(0, 1)],
            total_shards=10,
            shard_size=100,
            num_classes=10,
            alpha=100.0,
        )
        assert sched.shard_counts[0] == 10

    def test_minavg_exact_capacity_fit(self):
        """Capacities summing exactly to D must be fully used."""
        sched = fed_minavg(
            [lambda x: 0.01 * x, lambda x: 0.02 * x],
            [(0,), (1,)],
            total_shards=10,
            shard_size=100,
            num_classes=10,
            alpha=0.0,
            capacities=[4, 6],
        )
        np.testing.assert_array_equal(sched.shard_counts, [4, 6])

    def test_lbap_one_shard(self):
        cost = np.cumsum(np.ones((3, 4)), axis=1)
        sched, c = fed_lbap(cost, 1)
        assert sched.total_shards == 1
        assert c == pytest.approx(1.0)


class TestDataFailures:
    def test_materialize_with_exhausted_class_falls_back(self):
        """Requesting far more shards of a class than exist falls back
        to sampling with replacement instead of crashing."""
        ds = load_preset("mnist_mini")
        per_class = ds.train_size // 10
        too_many = (per_class // 20) * 30  # 1.5x the class supply
        users = materialize_schedule(
            ds, [too_many], [(0,)], shard_size=20
        )
        assert users[0].size == too_many * 20
        assert set(ds.y_train[users[0].indices].tolist()) == {0}

    def test_aggregate_nan_weights_propagate_visibly(self):
        """NaNs in a client vector are not laundered into numbers."""
        out = fedavg_aggregate(
            [np.array([np.nan, 1.0]), np.array([1.0, 1.0])], [1, 1]
        )
        assert np.isnan(out[0])
        assert out[1] == 1.0


class TestLinkEdgeCases:
    def test_tiny_bandwidth_still_finite(self):
        link = Link("dialup", uplink_mbps=0.01, downlink_mbps=0.01)
        t = link.round_trip_time_s(65.4)
        assert np.isfinite(t)
        assert t > 10_000  # an hour-plus, but finite and positive

    def test_extreme_jitter_never_negative(self):
        link = Link("bad", 10.0, 10.0, jitter=2.0, seed=0)
        for _ in range(200):
            assert link.upload_time_s(1.0) > 0


class TestDeviceEdgeCases:
    def test_zero_sample_workload_rejected(self):
        with pytest.raises(ValueError):
            TrainingWorkload(1e7, n_samples=-1)

    def test_zero_samples_completes_instantly(self):
        dev = make_device("pixel2", jitter=0.0)
        w = TrainingWorkload(1e7, n_samples=0)
        trace = dev.run_workload(w, record=False)
        assert trace.total_time_s == 0.0

    def test_batch_larger_than_dataset(self):
        dev = make_device("pixel2", jitter=0.0)
        w = TrainingWorkload(1e7, n_samples=5, batch_size=100)
        trace = dev.run_workload(w)
        assert trace.total_time_s > 0

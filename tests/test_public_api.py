"""Contract tests over the exported (``__all__``) API surface.

Every assertion here pins a public name's shape — its fields, default
values, registry key or protocol role — so renaming or dropping an
export breaks a test before it breaks a downstream consumer. This file
is also the inbound-reference anchor the ``dead-public-api`` lint rule
checks exports against: an export nobody (including this file) touches
is flagged as dead.
"""

import dataclasses

import numpy as np

from repro import __version__
from repro.core.cost import curves_from_profiles
from repro.core.schedule import RoundCost
from repro.device.registry import COLD_RATE_ANCHORS, DEVICE_NAMES
from repro.device.thermal import ThrottleDecision
from repro.engine.engine import (
    ParameterServerLike,
    SchedulerBindingLike,
    SupportsMix,
)
from repro.engine.telemetry import TelemetryRead, read_jsonl_meta
from repro.experiments.table4 import PARAM_POINTS
from repro.models.flops import (
    BACKWARD_FACTOR,
    layer_forward_flops,
    model_forward_flops,
    model_training_flops,
)
from repro.models.layers import Dense
from repro.models.optim import SGD, Optimizer
from repro.models.zoo import (
    CIFAR_MINI_SHAPE,
    MNIST_MINI_SHAPE,
    build_model,
)
from repro.network.link import LINK_PRESETS, WIFI, make_link
from repro.obs.energy import ClientEnergy
from repro.obs.recorder import RoundSummary
from repro.profiling.profiler import DeviceProfile, TimeCurve
from repro.sched.adapters import (
    EqualScheduler,
    FedLBAPScheduler,
    FedMinAvgFastScheduler,
    FedMinAvgScheduler,
    ProportionalScheduler,
    RandomScheduler,
)
from repro.sched.base import Scheduler
from repro.sched.costs import (
    DEFAULT_ENERGY_SIZES,
    cached_energy_curves,
    clear_cost_cache,
)
from repro.sched.registry import scheduler_class


def test_version_is_pep440_ish():
    parts = __version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_round_cost_straggler_metrics():
    cost = RoundCost(
        per_user_s=np.array([1.0, 3.0]),
        makespan_s=3.0,
        mean_s=2.0,
        total_device_seconds=4.0,
    )
    assert cost.straggler_gap == 1.0


def test_curves_from_profiles_delegates_to_time_curve():
    class FakeProfile:
        def time_curve(self, model):
            return lambda n: 0.5 * n

    (curve,) = curves_from_profiles([FakeProfile()], model=None)
    assert curve(10.0) == 5.0


def test_cold_rate_anchors_cover_the_testbed():
    assert set(COLD_RATE_ANCHORS) <= set(DEVICE_NAMES)
    for lenet_rate, vgg6_rate in COLD_RATE_ANCHORS.values():
        assert 0 < lenet_rate
        assert 0 < vgg6_rate


def test_throttle_decision_defaults_are_no_ops():
    decision = ThrottleDecision()
    assert decision.freq_cap_factor == 1.0
    assert decision.online
    assert decision.rate_factor == 1.0


def test_engine_protocols_describe_the_driver_contract():
    # ParameterServerLike / SchedulerBindingLike are structural-typing
    # contracts (not runtime-checkable); pin their method surface
    assert "global_weights" in ParameterServerLike.__annotations__ or (
        hasattr(ParameterServerLike, "global_weights")
    )
    assert hasattr(SchedulerBindingLike, "plan_round")

    class Mixer:
        name = "gossip"

        def mix(self, replicas):
            return replicas

    assert isinstance(Mixer(), SupportsMix)


def test_telemetry_read_shape(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("", encoding="utf-8")
    read = read_jsonl_meta(path)
    assert isinstance(read, TelemetryRead)


def test_table4_param_points_are_the_papers_four_columns():
    assert len(PARAM_POINTS) == 4
    for alpha, beta in PARAM_POINTS:
        assert alpha > 0
        assert beta >= 0


def test_flops_accounting_is_consistent():
    layer = Dense(4, 3)
    per_sample = layer_forward_flops(layer, (4,))
    assert per_sample > 0
    model = build_model("lenet_mini", input_shape=MNIST_MINI_SHAPE, seed=0)
    forward = model_forward_flops(model)
    assert model_training_flops(model) == forward * (
        1.0 + BACKWARD_FACTOR
    )


def test_mini_shapes_feed_the_model_zoo():
    assert MNIST_MINI_SHAPE == (1, 12, 12)
    assert CIFAR_MINI_SHAPE == (3, 12, 12)
    cifar = build_model("vgg_mini", input_shape=CIFAR_MINI_SHAPE, seed=0)
    assert cifar.layers


def test_optimizer_base_class_contract():
    assert issubclass(SGD, Optimizer)
    sgd = SGD([], lr=0.1)
    sgd.step()  # no parameters: a no-op, not an error


def test_wifi_preset_backs_make_link():
    assert LINK_PRESETS["wifi"] is WIFI
    link = make_link("wifi", jitter=0.0)
    assert link.uplink_mbps == WIFI["uplink_mbps"]


def test_client_energy_accumulator_defaults():
    e = ClientEnergy(client_id=3)
    assert (e.energy_j, e.busy_s, e.rounds, e.dropped) == (0, 0, 0, 0)
    assert e.last_soc is None


def test_round_summary_slots():
    assert "makespan_s" in RoundSummary.__slots__
    assert "energy_j" in RoundSummary.__slots__


def test_device_profile_is_the_two_step_fit():
    assert dataclasses.is_dataclass(DeviceProfile)
    names = {f.name for f in dataclasses.fields(DeviceProfile)}
    assert "device_name" in names
    # TimeCurve is the alias time_curve() returns: samples -> seconds
    curve: TimeCurve = lambda n_samples: 0.1 * n_samples
    assert curve(20.0) == 2.0


def test_registry_names_map_to_adapter_classes():
    expected = {
        "fed_lbap": FedLBAPScheduler,
        "fed_minavg": FedMinAvgScheduler,
        "fed_minavg_fast": FedMinAvgFastScheduler,
        "equal": EqualScheduler,
        "random": RandomScheduler,
        "proportional": ProportionalScheduler,
    }
    for name, cls in expected.items():
        assert scheduler_class(name) is cls
        assert issubclass(cls, Scheduler)


def test_energy_curve_cache_clears():
    assert DEFAULT_ENERGY_SIZES == (500, 3000, 6000)
    model = build_model("lenet_mini", input_shape=MNIST_MINI_SHAPE, seed=0)
    sizes = (100, 200)
    (a,) = cached_energy_curves(("mate10",), model, sizes)
    clear_cost_cache()
    (b,) = cached_energy_curves(("mate10",), model, sizes)
    assert a is not b  # the cache really was dropped
    assert a(150.0) == b(150.0)  # ...but the fit is deterministic


def test_serve_exports_cover_the_control_plane():
    """The repro.serve surface: one import site pins every export."""
    from repro.serve import (
        DEVICE_STATES,
        ChurnEvent,
        DeviceRecord,
        DeviceRegistry,
        HeartbeatMonitor,
        ManualClock,
        ModelRegistry,
        ModelVersion,
        NowFn,
        PlanRecord,
        RoundJob,
        SchemaError,
        ServeApp,
        ServeConfig,
        SimClientDriver,
        TrainingCoordinator,
        churn_trace,
        now,
    )

    assert DEVICE_STATES == ("registered", "active", "stale", "dead")
    assert issubclass(SchemaError, ValueError)
    # the seam type is honoured by both clocks
    fn: NowFn = ManualClock(start_s=3.0)
    assert fn() == 3.0
    assert isinstance(now(), float)
    # dataclass shapes downstream consumers rely on
    assert {f.name for f in dataclasses.fields(RoundJob)} >= {
        "round_id", "status", "replans", "model_version",
    }
    assert {f.name for f in dataclasses.fields(PlanRecord)} == {
        "round_id", "attempt", "scheduled", "dead_scheduled",
    }
    assert {f.name for f in dataclasses.fields(ModelVersion)} == {
        "version", "parent", "created_s", "metadata",
    }
    assert {f.name for f in dataclasses.fields(ChurnEvent)} == {
        "at_s", "action", "device_id",
    }
    assert {f.name for f in dataclasses.fields(DeviceRecord)} >= {
        "device_id", "client_id", "state",
    }
    assert {f.name for f in dataclasses.fields(ServeConfig)} >= {
        "fleet_size", "scheduler", "stale_after_s", "dead_after_s",
    }
    # classes exist and are constructible shapes, not re-export typos
    for cls in (
        ServeApp,
        DeviceRegistry,
        HeartbeatMonitor,
        ModelRegistry,
        TrainingCoordinator,
        SimClientDriver,
    ):
        assert isinstance(cls, type)
    assert callable(churn_trace)

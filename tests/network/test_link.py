"""Link model tests."""

import numpy as np
import pytest

from repro.network.link import LINK_PRESETS, Link, make_link


class TestLink:
    def test_upload_time_formula(self):
        link = Link("t", uplink_mbps=80.0, downlink_mbps=40.0, rtt_s=0.02)
        # 10 MB over 80 Mbps = 1 s plus half the RTT
        assert link.upload_time_s(10.0) == pytest.approx(1.01)
        assert link.download_time_s(10.0) == pytest.approx(2.01)

    def test_round_trip(self):
        link = Link("t", 80.0, 40.0, rtt_s=0.02)
        assert link.round_trip_time_s(10.0) == pytest.approx(3.02)

    def test_zero_size_costs_latency_only(self):
        link = Link("t", 80.0, 40.0, rtt_s=0.02)
        assert link.upload_time_s(0.0) == pytest.approx(0.01)

    def test_negative_size_raises(self):
        link = Link("t", 80.0, 40.0)
        with pytest.raises(ValueError):
            link.upload_time_s(-1.0)

    def test_jitter_varies_but_preserves_mean(self):
        link = Link("t", 80.0, 80.0, rtt_s=0.0, jitter=0.3, seed=0)
        times = np.array([link.upload_time_s(10.0) for _ in range(500)])
        assert times.std() > 0
        assert times.mean() == pytest.approx(1.0, rel=0.15)

    def test_jitter_deterministic_per_seed(self):
        a = Link("t", 80.0, 80.0, jitter=0.3, seed=7).upload_time_s(10)
        b = Link("t", 80.0, 80.0, jitter=0.3, seed=7).upload_time_s(10)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("t", 0.0, 40.0)
        with pytest.raises(ValueError):
            Link("t", 80.0, 40.0, rtt_s=-1.0)


class TestPresets:
    def test_wifi_symmetric_fast(self):
        wifi = make_link("wifi")
        assert wifi.uplink_mbps == wifi.downlink_mbps == 85.0

    def test_lte_asymmetric(self):
        lte = make_link("lte")
        assert lte.uplink_mbps > lte.downlink_mbps  # paper: 60 up, 11 down

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            make_link("5g")

    def test_presets_registry(self):
        assert set(LINK_PRESETS) == {"wifi", "lte"}

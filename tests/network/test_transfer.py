"""Model-transfer cost tests (Table II communication fractions)."""

import pytest

from repro.models import MNIST_SHAPE, lenet, vgg6
from repro.network.link import make_link
from repro.network.transfer import CommCost, comm_fraction, round_comm_cost


class TestRoundCommCost:
    def test_lenet_wifi_small(self):
        """LeNet (2.5 MB) over WiFi: well under a second each way."""
        comm = round_comm_cost(lenet(), make_link("wifi"))
        assert 0.1 < comm.total_s < 1.0

    def test_vgg_lte_dominated_by_downlink(self):
        comm = round_comm_cost(
            vgg6(input_shape=MNIST_SHAPE), make_link("lte")
        )
        # 65.4 MB over 11 Mbps down ~ 47.6 s vs 8.7 s up
        assert comm.download_s > 4 * comm.upload_s
        assert 40 < comm.total_s < 70

    def test_total_is_sum(self):
        c = CommCost(download_s=1.0, upload_s=2.0)
        assert c.total_s == 3.0


class TestCommFraction:
    def test_paper_range(self):
        """Observation 3: comm is ~0.1-15 % of the round across the
        model/link grid."""
        fractions = []
        for model in (lenet(), vgg6(input_shape=MNIST_SHAPE)):
            for link_name in ("wifi", "lte"):
                comm = round_comm_cost(model, make_link(link_name))
                # representative compute times from Table II
                compute = 31.0 if model.name == "lenet" else 495.0
                fractions.append(comm_fraction(compute, comm))
        assert all(0.001 < f < 0.16 for f in fractions)

    def test_zero_compute(self):
        c = CommCost(1.0, 1.0)
        assert comm_fraction(0.0, c) == 1.0

    def test_negative_compute_raises(self):
        with pytest.raises(ValueError):
            comm_fraction(-1.0, CommCost(1.0, 1.0))

"""Fair-share congestion model tests."""

import numpy as np
import pytest

from repro.network.congestion import (
    congested_round_comm,
    fair_share_completion_times,
)


class TestFairShare:
    def test_single_flow_uses_min_of_caps(self):
        # 10 MB over min(40, 100) = 40 Mbps -> 2 s
        t = fair_share_completion_times([10.0], [40.0], 100.0)
        assert t[0] == pytest.approx(2.0)

    def test_symmetric_flows_split_capacity(self):
        # two 10 MB flows share 40 Mbps -> 20 Mbps each -> 4 s both
        t = fair_share_completion_times([10.0, 10.0], [100.0, 100.0], 40.0)
        np.testing.assert_allclose(t, 4.0)

    def test_survivor_speeds_up(self):
        # 5 MB and 10 MB over shared 40: both at 20 until the small one
        # finishes at t=2; the big one then runs at 40 for its last 40 Mb
        t = fair_share_completion_times([5.0, 10.0], [100.0, 100.0], 40.0)
        assert t[0] == pytest.approx(2.0)
        assert t[1] == pytest.approx(2.0 + 40.0 / 40.0)

    def test_device_limited_flow_frees_capacity(self):
        # flow 0 capped at 5 Mbps; flow 1 gets the remaining 35
        t = fair_share_completion_times([5.0, 35.0], [5.0, 100.0], 40.0)
        assert t[0] == pytest.approx(8.0)
        assert t[1] == pytest.approx(8.0)

    def test_zero_size_completes_instantly(self):
        t = fair_share_completion_times([0.0, 10.0], [50.0, 50.0], 50.0)
        assert t[0] == 0.0
        assert t[1] == pytest.approx(1.6)

    def test_total_work_conserved(self):
        rng = np.random.default_rng(0)
        sizes = rng.uniform(1, 50, 6)
        t = fair_share_completion_times(
            sizes, [80.0] * 6, 100.0
        )
        # server can move at most 100 Mbps: total bits / capacity is a
        # lower bound on the last completion
        assert t.max() >= sizes.sum() * 8.0 / 100.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_share_completion_times([1.0], [10.0, 20.0], 100.0)
        with pytest.raises(ValueError):
            fair_share_completion_times([1.0], [0.0], 100.0)
        with pytest.raises(ValueError):
            fair_share_completion_times([1.0], [10.0], 0.0)


class TestCongestedRound:
    def test_no_congestion_regime(self):
        """Few participants: the device link is the bottleneck — the
        paper's assumption holds."""
        t1 = congested_round_comm(2.5, 1, 85.0, 1000.0)
        t3 = congested_round_comm(2.5, 3, 85.0, 1000.0)
        assert t3 == pytest.approx(t1)

    def test_congestion_regime(self):
        """Many VGG6 uploads saturate the server: comm time scales with
        participants — the assumption breaks."""
        t10 = congested_round_comm(65.4, 10, 85.0, 200.0)
        t20 = congested_round_comm(65.4, 20, 85.0, 200.0)
        assert t20 == pytest.approx(2 * t10, rel=0.01)

    def test_crossover_point(self):
        """The assumption holds up to server/device flows, then breaks."""
        device, server = 85.0, 1000.0
        crossover = server / device  # ~11.7 flows
        below = congested_round_comm(65.4, 11, device, server)
        above = congested_round_comm(65.4, 16, device, server)
        assert above > below * 1.2

"""Governor behaviour tests."""

import pytest

from repro.device.governor import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    make_governor,
)
from repro.device.specs import ClusterSpec


@pytest.fixture
def cl():
    return ClusterSpec(
        name="uni",
        n_cores=4,
        freq_min_ghz=0.5,
        freq_max_ghz=2.0,
        gflops_per_core_ghz=1.0,
        n_opp=16,
    )


class TestInteractive:
    def test_ramps_to_max_under_sustained_load(self, cl):
        gov = InteractiveGovernor()
        f = cl.freq_min_ghz
        for _ in range(20):
            f = gov.select(cl, load=1.0, current_ghz=f, dt=0.5)
        assert f == pytest.approx(cl.freq_max_ghz)

    def test_jumps_to_hispeed_immediately(self, cl):
        gov = InteractiveGovernor(hispeed_fraction=0.8)
        f = gov.select(cl, load=1.0, current_ghz=cl.freq_min_ghz, dt=0.02)
        assert f >= 0.5 + 0.8 * 1.5 - 0.15  # near hispeed (quantized)

    def test_decays_when_idle(self, cl):
        gov = InteractiveGovernor()
        f = cl.freq_max_ghz
        for _ in range(10):
            f = gov.select(cl, load=0.05, current_ghz=f, dt=0.5)
        assert f < cl.freq_max_ghz / 2

    def test_reset_clears_state(self, cl):
        gov = InteractiveGovernor()
        gov.select(cl, 1.0, cl.freq_min_ghz, 0.5)
        gov.reset()
        assert gov._time_above == {}


class TestOthers:
    def test_performance_pins_max(self, cl):
        assert PerformanceGovernor().select(cl, 0.0, 0.5, 0.5) == 2.0

    def test_powersave_pins_min(self, cl):
        assert PowersaveGovernor().select(cl, 1.0, 2.0, 0.5) == 0.5

    def test_ondemand_jumps_at_threshold(self, cl):
        gov = OndemandGovernor(up_threshold=0.8)
        assert gov.select(cl, 0.9, 1.0, 0.5) == 2.0
        assert gov.select(cl, 0.2, 1.0, 0.5) < 1.2


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["interactive", "performance", "powersave", "ondemand"]
    )
    def test_make_governor(self, name):
        assert make_governor(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_governor("turbo")

    def test_kwargs_forwarded(self):
        gov = make_governor("ondemand", up_threshold=0.5)
        assert gov.up_threshold == 0.5


class TestSchedutil:
    def test_full_load_pins_max(self, cl):
        from repro.device.governor import SchedutilGovernor

        gov = SchedutilGovernor()
        assert gov.select(cl, 1.0, 0.5, 0.5) == cl.freq_max_ghz

    def test_partial_load_scales_with_headroom(self, cl):
        from repro.device.governor import SchedutilGovernor

        gov = SchedutilGovernor(headroom=1.25)
        f = gov.select(cl, 0.5, 1.0, 0.5)
        # 1.25 * 0.5 * 2.0 = 1.25 GHz, quantized up
        assert 1.2 <= f <= 1.5

    def test_idle_floors_at_min(self, cl):
        from repro.device.governor import SchedutilGovernor

        gov = SchedutilGovernor()
        assert gov.select(cl, 0.0, 2.0, 0.5) == cl.freq_min_ghz

    def test_headroom_validation(self):
        from repro.device.governor import SchedutilGovernor

        with pytest.raises(ValueError):
            SchedutilGovernor(headroom=0.9)

"""Energy-aware capacity tests."""

import pytest

from repro.device.energy import energy_capacity_shards, energy_for_samples
from repro.device.registry import make_device
from repro.models import lenet


class TestEnergyForSamples:
    def test_monotone_in_samples(self):
        device = make_device("pixel2", jitter=0.0)
        model = lenet()
        e1 = energy_for_samples(device, model, 1000)
        e2 = energy_for_samples(device, model, 2000)
        assert 0 < e1 < e2

    def test_validation(self):
        device = make_device("pixel2")
        with pytest.raises(ValueError):
            energy_for_samples(device, lenet(), 0)


class TestEnergyCapacity:
    def test_bigger_budget_bigger_capacity(self):
        device = make_device("pixel2", jitter=0.0)
        model = lenet()
        small = energy_capacity_shards(
            device, model, shard_size=500, budget_fraction=0.01,
            max_shards=256,
        )
        large = energy_capacity_shards(
            device, model, shard_size=500, budget_fraction=0.05,
            max_shards=256,
        )
        assert 0 < small < large

    def test_capacity_respects_budget(self):
        device = make_device("nexus6", jitter=0.0)
        model = lenet()
        cap = energy_capacity_shards(
            device, model, shard_size=500, budget_fraction=0.02,
            max_shards=256,
        )
        budget = device.spec.battery.energy_j * 0.02
        used = energy_for_samples(device, model, cap * 500)
        over = energy_for_samples(device, model, (cap + 1) * 500)
        assert used <= budget
        assert over > budget

    def test_tiny_budget_zero_capacity(self):
        device = make_device("pixel2", jitter=0.0)
        cap = energy_capacity_shards(
            device, lenet(), shard_size=500, budget_fraction=1e-7
        )
        assert cap == 0

    def test_huge_budget_hits_max(self):
        device = make_device("pixel2", jitter=0.0)
        cap = energy_capacity_shards(
            device, lenet(), shard_size=100, budget_fraction=1.0,
            max_shards=16,
        )
        assert cap == 16

    def test_validation(self):
        device = make_device("pixel2")
        with pytest.raises(ValueError):
            energy_capacity_shards(device, lenet(), 100, budget_fraction=0)
        with pytest.raises(ValueError):
            energy_capacity_shards(device, lenet(), 0)

"""DeviceSpec / ClusterSpec / TripPoint validation and helpers."""

import pytest

from repro.device.specs import (
    BatterySpec,
    ClusterSpec,
    DeviceSpec,
    ThermalSpec,
    TripPoint,
)


def cluster(**kw):
    base = dict(
        name="uni",
        n_cores=4,
        freq_min_ghz=0.5,
        freq_max_ghz=2.0,
        gflops_per_core_ghz=1.0,
    )
    base.update(kw)
    return ClusterSpec(**base)


class TestClusterSpec:
    def test_opp_table_ascending(self):
        c = cluster(n_opp=5)
        table = c.opp_table()
        assert len(table) == 5
        assert table[0] == pytest.approx(0.5)
        assert table[-1] == pytest.approx(2.0)
        assert all(a < b for a, b in zip(table, table[1:]))

    def test_quantize_rounds_up(self):
        c = cluster(n_opp=4)  # 0.5, 1.0, 1.5, 2.0
        assert c.quantize(0.6) == pytest.approx(1.0)
        assert c.quantize(2.0) == pytest.approx(2.0)
        assert c.quantize(5.0) == pytest.approx(2.0)

    def test_throughput_scales_with_freq_and_cores(self):
        c = cluster()
        assert c.throughput_gflops(2.0) == pytest.approx(8.0)
        assert c.throughput_gflops(1.0) == pytest.approx(4.0)
        assert c.throughput_gflops(2.0, online=False) == 0.0

    def test_util_cap_reduces_throughput(self):
        c = cluster(util_cap=0.5)
        assert c.throughput_gflops(2.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster(n_cores=0)
        with pytest.raises(ValueError):
            cluster(freq_min_ghz=3.0)
        with pytest.raises(ValueError):
            cluster(util_cap=0.0)


class TestTripPoint:
    def test_hysteresis_required(self):
        with pytest.raises(ValueError):
            TripPoint(temp_on=40, temp_off=40, cluster="uni")

    def test_sustained_validation(self):
        with pytest.raises(ValueError):
            TripPoint(temp_on=40, temp_off=30, cluster="uni", sustained_s=0)

    def test_rate_factor_validation(self):
        with pytest.raises(ValueError):
            TripPoint(temp_on=40, temp_off=30, cluster="uni", rate_factor=0)


class TestDeviceSpec:
    def make_spec(self, **kw):
        base = dict(
            name="test",
            soc="TestSoC",
            clusters=(cluster(),),
        )
        base.update(kw)
        return DeviceSpec(**base)

    def test_peak_gflops(self):
        spec = self.make_spec()
        assert spec.peak_gflops() == pytest.approx(8.0)

    def test_efficiency_monotone_in_intensity(self):
        spec = self.make_spec(flops_half=1e8)
        assert spec.efficiency(1e9) > spec.efficiency(1e7)
        assert 0 < spec.efficiency(1e7) < 1

    def test_cluster_efficiency_override(self):
        c = cluster(flops_half=1e9)
        spec = self.make_spec(clusters=(c,), flops_half=1e7)
        assert spec.cluster_efficiency(c, 1e8) == pytest.approx(
            1e8 / (1e8 + 1e9)
        )

    def test_power_utilisation_bounds(self):
        spec = self.make_spec(util_floor=0.3)
        u = spec.power_utilisation(1e7)
        assert 0.3 < u < 1.0

    def test_effective_gflops_with_offline_cluster(self):
        big = cluster(name="big")
        little = cluster(name="little", freq_max_ghz=1.0)
        spec = self.make_spec(clusters=(big, little))
        full = spec.effective_gflops(1e9)
        partial = spec.effective_gflops(
            1e9, {"big": 0.0, "little": 1.0}
        )
        assert partial < full

    def test_duplicate_cluster_names_raise(self):
        with pytest.raises(ValueError):
            self.make_spec(clusters=(cluster(), cluster()))

    def test_cluster_lookup(self):
        spec = self.make_spec()
        assert spec.cluster("uni").name == "uni"
        with pytest.raises(KeyError):
            spec.cluster("big")

    def test_battery_energy(self):
        b = BatterySpec(capacity_mah=1000, voltage_v=4.0)
        assert b.energy_j == pytest.approx(1000 * 3.6 * 4.0)

"""MobileDevice end-to-end simulation tests."""

import numpy as np
import pytest

from repro.device import (
    MobileDevice,
    TrainingWorkload,
    make_device,
)
from repro.device.governor import PerformanceGovernor
from repro.device.specs import ClusterSpec, DeviceSpec, ThermalSpec, TripPoint


def simple_spec(trips=()):
    return DeviceSpec(
        name="simple",
        soc="x",
        clusters=(
            ClusterSpec(
                name="uni",
                n_cores=4,
                freq_min_ghz=0.5,
                freq_max_ghz=2.0,
                gflops_per_core_ghz=1.0,
            ),
        ),
        thermal=ThermalSpec(
            ambient_c=25, r_thermal_c_per_w=8.0, tau_s=30.0,
            trip_points=tuple(trips),
        ),
        flops_half=5e7,
        dyn_power_coeff_w=0.05,
    )


def workload(n=1000, flops=1e7, batch=20):
    return TrainingWorkload(
        flops_per_sample=flops, n_samples=n, batch_size=batch
    )


class TestBasicRun:
    def test_completes_and_advances_clock(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload())
        assert trace.total_time_s > 0
        assert dev.clock_s == pytest.approx(trace.total_time_s)

    def test_time_scales_with_samples(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        t1 = dev.run_workload(workload(1000), record=False).total_time_s
        dev.reset()
        t2 = dev.run_workload(workload(2000), record=False).total_time_s
        assert t2 > 1.8 * t1

    def test_time_scales_with_flops(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        t1 = dev.run_workload(
            workload(flops=1e7), record=False
        ).total_time_s
        dev.reset()
        t2 = dev.run_workload(
            workload(flops=1e8), record=False
        ).total_time_s
        # 10x FLOPs with an efficiency gain: between 2x and 10x slower.
        assert 2 * t1 < t2 < 10 * t1

    def test_epochs_multiply_work(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        w1 = workload(500)
        t1 = dev.run_workload(w1, record=False).total_time_s
        dev.reset()
        w2 = TrainingWorkload(1e7, 500, batch_size=20, epochs=3)
        t2 = dev.run_workload(w2, record=False).total_time_s
        assert t2 == pytest.approx(3 * t1, rel=0.1)

    def test_batch_times_cover_all_batches(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload(400, batch=20))
        assert len(trace.batch_times) == 20
        assert trace.batch_times.sum() == pytest.approx(
            trace.total_time_s, rel=0.1
        )

    def test_trace_arrays_aligned(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload(2000))
        n = trace.time_s.size
        assert trace.temp_c.size == n
        assert trace.power_w.size == n
        for arr in trace.freq_ghz.values():
            assert arr.size == n

    def test_record_false_skips_series(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload(), record=False)
        assert trace.time_s.size == 0
        assert trace.total_time_s > 0

    def test_jitter_repeatable_by_seed(self):
        t1 = MobileDevice(simple_spec(), seed=5, jitter=0.05).run_workload(
            workload(), record=False
        ).total_time_s
        t2 = MobileDevice(simple_spec(), seed=5, jitter=0.05).run_workload(
            workload(), record=False
        ).total_time_s
        assert t1 == pytest.approx(t2)

    def test_energy_accounted(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload())
        assert trace.energy_j > 0
        assert dev.battery.soc < 1.0


class TestThermalEffects:
    def throttling_spec(self):
        return simple_spec(
            trips=[
                TripPoint(
                    temp_on=35.0,
                    temp_off=28.0,
                    cluster="uni",
                    freq_cap_factor=0.3,
                )
            ]
        )

    def test_throttling_slows_large_workloads_superlinearly(self):
        # ~200 samples fit in the cold phase; 4x the data must cost far
        # more than 4x the time once the trip engages.
        dev = MobileDevice(self.throttling_spec(), jitter=0.0)
        t1 = dev.run_workload(
            workload(150, flops=1e9), record=False
        ).total_time_s
        dev.reset()
        t2 = dev.run_workload(
            workload(600, flops=1e9), record=False
        ).total_time_s
        assert t2 > 1.5 * 4 * t1

    def test_temperature_rises_under_load(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload(5000, flops=1e8))
        assert trace.peak_temp_c() > 30.0

    def test_idle_cools_down(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        dev.run_workload(workload(5000, flops=1e8), record=False)
        hot = dev.thermal.temp_c
        dev.idle(600.0)
        assert dev.thermal.temp_c < hot
        # idle steady-state: ambient + R * idle_power = 29.8 C
        assert dev.thermal.temp_c < 30.5

    def test_reset_restores_cold_state(self):
        dev = MobileDevice(self.throttling_spec(), jitter=0.0)
        dev.run_workload(workload(5000, flops=1e9), record=False)
        dev.reset()
        assert dev.thermal.temp_c == 25.0
        assert dev.battery.soc == 1.0
        assert dev.clock_s == 0.0
        assert not dev.thermal.is_throttling()

    def test_warm_start_slower_than_cold(self):
        dev = MobileDevice(self.throttling_spec(), jitter=0.0)
        cold = dev.run_workload(
            workload(2000, flops=1e9), record=False
        ).total_time_s
        # device is now hot; run again without reset
        warm = dev.run_workload(
            workload(2000, flops=1e9), record=False
        ).total_time_s
        assert warm > cold


class TestTimeForWorkload:
    def test_does_not_mutate_state(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        before = (dev.thermal.temp_c, dev.battery.soc, dev.clock_s)
        t = dev.time_for_workload(workload())
        after = (dev.thermal.temp_c, dev.battery.soc, dev.clock_s)
        assert t > 0
        assert before == after

    def test_matches_actual_run(self):
        dev = MobileDevice(simple_spec(), jitter=0.0)
        predicted = dev.time_for_workload(workload())
        actual = dev.run_workload(workload(), record=False).total_time_s
        assert predicted == pytest.approx(actual, rel=1e-6)


class TestGovernorChoice:
    def test_performance_governor_not_slower(self):
        t_int = MobileDevice(simple_spec(), jitter=0.0).run_workload(
            workload(), record=False
        ).total_time_s
        t_perf = MobileDevice(
            simple_spec(), governor=PerformanceGovernor(), jitter=0.0
        ).run_workload(workload(), record=False).total_time_s
        assert t_perf <= t_int * 1.05

    def test_registry_governor_kwarg(self):
        dev = make_device("pixel2", governor="powersave", jitter=0.0)
        t_slow = dev.run_workload(workload(), record=False).total_time_s
        dev2 = make_device("pixel2", governor="performance", jitter=0.0)
        t_fast = dev2.run_workload(workload(), record=False).total_time_s
        assert t_slow > 1.5 * t_fast

    def test_validation(self):
        with pytest.raises(ValueError):
            MobileDevice(simple_spec(), control_dt=0.0)
        with pytest.raises(ValueError):
            MobileDevice(simple_spec(), jitter=-0.1)
        dev = MobileDevice(simple_spec())
        with pytest.raises(ValueError):
            dev.idle(-1.0)


class TestTraceExport:
    def test_to_csv_roundtrip(self, tmp_path):
        import csv

        dev = MobileDevice(simple_spec(), jitter=0.0)
        trace = dev.run_workload(workload(500))
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:3] == ["time_s", "temp_c", "power_w"]
        assert len(rows) - 1 == trace.time_s.size
        assert float(rows[1][1]) >= 25.0

"""Battery model tests."""

import pytest

from repro.device.battery import BatteryDepletedError, BatteryState
from repro.device.specs import BatterySpec


@pytest.fixture
def battery():
    return BatteryState(BatterySpec(capacity_mah=1000, voltage_v=4.0))


class TestBattery:
    def test_full_at_start(self, battery):
        assert battery.soc == 1.0
        assert battery.remaining_j == pytest.approx(14_400.0)

    def test_drain_reduces_soc(self, battery):
        battery.drain(power_w=2.0, dt=3600.0)
        assert battery.remaining_j == pytest.approx(14_400 - 7200)
        assert battery.soc == pytest.approx(0.5)

    def test_drain_floors_at_zero(self, battery):
        drawn = battery.drain(power_w=10.0, dt=1e6)
        assert drawn == pytest.approx(14_400.0)
        assert battery.soc == 0.0

    def test_strict_drain_raises(self, battery):
        with pytest.raises(BatteryDepletedError):
            battery.drain(power_w=10.0, dt=1e6, strict=True)

    def test_seconds_at_power(self, battery):
        assert battery.seconds_at_power(2.0) == pytest.approx(7200.0)
        with pytest.raises(ValueError):
            battery.seconds_at_power(0.0)

    def test_reset_to_partial_soc(self, battery):
        battery.reset(0.25)
        assert battery.soc == pytest.approx(0.25)
        with pytest.raises(ValueError):
            battery.reset(1.5)

    def test_negative_drain_rejected(self, battery):
        with pytest.raises(ValueError):
            battery.drain(-1.0, 1.0)

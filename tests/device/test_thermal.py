"""Thermal model tests: RC dynamics, trip hysteresis, sustained-load
stages."""

import math

import pytest

from repro.device.specs import ThermalSpec, TripPoint
from repro.device.thermal import ThermalState


def make_state(**kw):
    base = dict(
        ambient_c=25.0, r_thermal_c_per_w=10.0, tau_s=30.0, trip_points=()
    )
    base.update(kw)
    return ThermalState(ThermalSpec(**base))


class TestRCDynamics:
    def test_steady_state(self):
        st = make_state()
        for _ in range(100):
            st.update(2.0, 10.0)
        assert st.temp_c == pytest.approx(25 + 10 * 2.0, abs=0.01)

    def test_exact_exponential_step(self):
        """One big step equals many small steps (exact integrator)."""
        a = make_state()
        a.update(3.0, 60.0)
        b = make_state()
        for _ in range(600):
            b.update(3.0, 0.1)
        assert a.temp_c == pytest.approx(b.temp_c, abs=1e-9)

    def test_analytic_solution(self):
        st = make_state()
        st.update(2.0, 30.0)  # one tau
        expected = 25 + 20 * (1 - math.exp(-1.0))
        assert st.temp_c == pytest.approx(expected, abs=1e-9)

    def test_cooling_toward_ambient(self):
        st = make_state()
        st.temp_c = 60.0
        st.update(0.0, 300.0)
        assert st.temp_c == pytest.approx(25.0, abs=0.01)

    def test_reset(self):
        st = make_state()
        st.update(5.0, 100.0)
        st.reset()
        assert st.temp_c == 25.0
        assert st.load_time_s == 0.0

    def test_validation(self):
        st = make_state()
        with pytest.raises(ValueError):
            st.update(-1.0, 1.0)
        with pytest.raises(ValueError):
            st.update(1.0, -1.0)


class TestTrips:
    def trip_state(self):
        return make_state(
            trip_points=(
                TripPoint(
                    temp_on=40.0,
                    temp_off=35.0,
                    cluster="big",
                    offline=True,
                ),
            )
        )

    def test_engages_above_on(self):
        st = self.trip_state()
        st.update(5.0, 300.0)  # steady 75C
        assert st.is_throttling()
        assert not st.throttle()["big"].online

    def test_hysteresis(self):
        st = self.trip_state()
        st.update(5.0, 300.0)
        # Cool to between off and on: stays engaged.
        st.temp_c = 37.0
        st._refresh_trips()
        assert st.is_throttling()
        st.temp_c = 34.0
        st._refresh_trips()
        assert not st.is_throttling()

    def test_multiple_trips_compose(self):
        st = make_state(
            trip_points=(
                TripPoint(40.0, 35.0, "big", freq_cap_factor=0.8),
                TripPoint(45.0, 38.0, "big", freq_cap_factor=0.5),
            )
        )
        st.update(5.0, 1000.0)  # hot: both engaged
        assert st.throttle()["big"].freq_cap_factor == pytest.approx(0.5)

    def test_rate_factor_composes(self):
        st = make_state(
            trip_points=(
                TripPoint(40.0, 35.0, "little", rate_factor=0.1),
            )
        )
        st.update(5.0, 1000.0)
        assert st.throttle()["little"].rate_factor == pytest.approx(0.1)


class TestSustainedTrips:
    def sustained_state(self):
        return make_state(
            trip_points=(
                TripPoint(
                    temp_on=30.0,
                    temp_off=26.0,
                    cluster="little",
                    rate_factor=0.05,
                    sustained_s=100.0,
                ),
            )
        )

    def test_not_engaged_before_horizon(self):
        st = self.sustained_state()
        st.update(5.0, 50.0, loaded=True)  # hot but only 50s of load
        assert not st.is_throttling()

    def test_engages_after_horizon(self):
        st = self.sustained_state()
        for _ in range(30):
            st.update(5.0, 5.0, loaded=True)
        assert st.load_time_s == pytest.approx(150.0)
        assert st.is_throttling()

    def test_idle_cooldown_resets_stopwatch(self):
        st = self.sustained_state()
        for _ in range(30):
            st.update(5.0, 5.0, loaded=True)
        # Long idle: cools to ambient, stopwatch resets.
        for _ in range(20):
            st.update(0.0, 30.0, loaded=False)
        assert st.load_time_s == 0.0

    def test_idle_without_cooling_keeps_stopwatch(self):
        st = self.sustained_state()
        st.update(5.0, 50.0, loaded=True)
        st.update(5.0, 1.0, loaded=False)  # still hot
        assert st.load_time_s == pytest.approx(50.0)

"""Calibration tests against the paper's Table I / Table II.

These lock the simulator to the published measurements: per-epoch times
within tolerance, the device orderings of Observation 1, and the
Nexus 6P throttling pathology of Observation 2.
"""

import pytest

from repro.device import (
    DEVICE_NAMES,
    TESTBEDS,
    TrainingWorkload,
    build_spec,
    calibrate_efficiency,
    make_device,
    make_testbed,
)
from repro.experiments.table2 import PAPER_TABLE2
from repro.models import MNIST_SHAPE, lenet, model_training_flops, vgg6

LENET_FLOPS = model_training_flops(lenet())
VGG_FLOPS = model_training_flops(vgg6(input_shape=MNIST_SHAPE))
FLOPS = {"lenet": LENET_FLOPS, "vgg6": VGG_FLOPS}


def epoch_time(device_name, model, n_samples):
    dev = make_device(device_name, jitter=0.0)
    w = TrainingWorkload(
        flops_per_sample=FLOPS[model], n_samples=n_samples, batch_size=20
    )
    return dev.run_workload(w, record=False).total_time_s


class TestTableII:
    @pytest.mark.parametrize(
        "key", sorted(PAPER_TABLE2), ids=lambda k: f"{k[0]}-{k[1]}-{k[2]}"
    )
    def test_epoch_times_within_tolerance(self, key):
        model, device, n = key
        sim = epoch_time(device, model, n)
        paper = PAPER_TABLE2[key]
        assert sim == pytest.approx(paper, rel=0.15), (
            f"{key}: simulated {sim:.1f}s vs paper {paper}s"
        )

    def test_lenet_device_ordering(self):
        """Observation 1: Pixel2 < Nexus6 < Mate10 < Nexus6P on LeNet."""
        times = {d: epoch_time(d, "lenet", 3000) for d in DEVICE_NAMES}
        assert (
            times["pixel2"]
            < times["nexus6"]
            < times["mate10"]
            < times["nexus6p"]
        )

    def test_vgg_device_ordering(self):
        """On VGG6 the ordering flips: Nexus6 falls behind Mate10."""
        times = {d: epoch_time(d, "vgg6", 3000) for d in DEVICE_NAMES}
        assert times["mate10"] < times["nexus6"]
        assert times["pixel2"] < times["nexus6"]

    def test_nexus6p_superlinear_scaling(self):
        """Observation 2: doubling data more than triples the time."""
        t3 = epoch_time("nexus6p", "lenet", 3000)
        t6 = epoch_time("nexus6p", "lenet", 6000)
        assert t6 / t3 > 2.8

    def test_linear_devices_scale_linearly(self):
        for d in ("nexus6", "mate10", "pixel2"):
            t3 = epoch_time(d, "lenet", 3000)
            t6 = epoch_time(d, "lenet", 6000)
            assert t6 / t3 == pytest.approx(2.0, abs=0.15), d

    def test_straggler_gap_matches_observation4(self):
        """The LeNet straggler needs ~62% more than the mean (paper);
        accept a generous band around it."""
        times = [epoch_time(d, "lenet", 3000) for d in DEVICE_NAMES]
        gap = (max(times) - sum(times) / len(times)) / (
            sum(times) / len(times)
        )
        assert 0.3 < gap < 1.0


class TestSustainedThrottle:
    def test_emergency_stage_beyond_table2_horizon(self):
        """The sustained-load stage must not distort Table II (<=1250 s)
        but must devastate longer runs (the Fig. 5 cliff)."""
        # 10K VGG6 samples = an equal-share Testbed-2 allocation
        t10k = epoch_time("nexus6p", "vgg6", 10000)
        t6k = epoch_time("nexus6p", "vgg6", 6000)
        assert t10k > 3 * t6k  # cliff engaged

    def test_other_devices_have_no_cliff(self):
        t10k = epoch_time("pixel2", "vgg6", 10000)
        t5k = epoch_time("pixel2", "vgg6", 5000)
        assert t10k == pytest.approx(2 * t5k, rel=0.1)


class TestRegistry:
    def test_all_devices_build(self):
        for name in DEVICE_NAMES:
            spec = build_spec(name)
            assert spec.name == name
            assert spec.peak_gflops() > 0

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            build_spec("iphone15")

    def test_table1_clock_specs(self):
        n6 = build_spec("nexus6")
        assert not n6.is_big_little
        assert n6.cluster("uni").freq_max_ghz == pytest.approx(2.7)
        n6p = build_spec("nexus6p")
        assert n6p.is_big_little
        assert n6p.cluster("big").freq_max_ghz == pytest.approx(2.0)
        assert n6p.cluster("little").freq_max_ghz == pytest.approx(1.55)
        m10 = build_spec("mate10")
        assert m10.cluster("big").freq_max_ghz == pytest.approx(2.36)
        p2 = build_spec("pixel2")
        assert p2.cluster("big").freq_max_ghz == pytest.approx(2.35)

    def test_testbed_compositions(self):
        assert len(TESTBEDS[1]) == 3
        assert len(TESTBEDS[2]) == 6
        assert len(TESTBEDS[3]) == 10
        assert TESTBEDS[2].count("nexus6p") == 2
        devices = make_testbed(2)
        assert len(devices) == 6
        with pytest.raises(KeyError):
            make_testbed(4)

    def test_calibrate_efficiency_closed_form(self):
        h, peak = calibrate_efficiency(96.8, 6.35)
        # reproduce the anchors from the fitted parameters
        from repro.device.registry import ANCHOR_FLOPS

        f_l, f_v = ANCHOR_FLOPS["lenet"], ANCHOR_FLOPS["vgg6"]
        rate_l = peak * (f_l / (f_l + h)) * 1e9 / f_l
        rate_v = peak * (f_v / (f_v + h)) * 1e9 / f_v
        assert rate_l == pytest.approx(96.8, rel=1e-6)
        assert rate_v == pytest.approx(6.35, rel=1e-6)

    def test_calibrate_rejects_inconsistent_anchors(self):
        with pytest.raises(ValueError):
            calibrate_efficiency(1.0, 1000.0)


class TestCustomDevices:
    def _custom_spec(self, name="mydevice"):
        from repro.device.specs import ClusterSpec, DeviceSpec

        return DeviceSpec(
            name=name,
            soc="CustomSoC",
            clusters=(
                ClusterSpec(
                    name="uni",
                    n_cores=8,
                    freq_min_ghz=0.5,
                    freq_max_ghz=3.0,
                    gflops_per_core_ghz=1.0,
                ),
            ),
        )

    def test_register_and_build(self):
        from repro.device.registry import (
            available_devices,
            register_device,
            unregister_device,
        )

        spec = self._custom_spec()
        register_device(spec)
        try:
            assert "mydevice" in available_devices()
            assert build_spec("mydevice").soc == "CustomSoC"
            dev = make_device("mydevice", jitter=0.0)
            w = TrainingWorkload(1e8, 500, 20)
            assert dev.run_workload(w, record=False).total_time_s > 0
        finally:
            unregister_device("mydevice")
        with pytest.raises(KeyError):
            build_spec("mydevice")

    def test_cannot_shadow_builtin(self):
        from repro.device.registry import register_device

        spec = self._custom_spec(name="pixel2")
        with pytest.raises(ValueError):
            register_device(spec)

    def test_cannot_remove_builtin(self):
        from repro.device.registry import unregister_device

        with pytest.raises(ValueError):
            unregister_device("pixel2")

"""Telemetry-layer tests: JSON-lines sink, aggregator, global capture."""

import json

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.device.registry import make_device
from repro.engine.events import ClientDropped, EventBus, RoundCompleted
from repro.engine.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    JsonlSink,
    TelemetryAggregator,
    read_jsonl,
    read_jsonl_meta,
    record_telemetry,
)
from repro.federated.asynchronous import AsyncConfig, AsyncFederatedSimulation
from repro.federated.decentralized import (
    DecentralizedSimulation,
    make_topology,
)
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic


def make_sync_sim(dataset, n_users=3, with_devices=True, **cfg_kw):
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n_users, rng)
    devices = None
    if with_devices:
        devices = [
            make_device("pixel2", jitter=0.0) for _ in range(n_users)
        ]
    model = logistic(input_shape=dataset.input_shape, seed=1)
    return FederatedSimulation(
        dataset, model, users, devices=devices,
        config=SimulationConfig(lr=0.05, **cfg_kw),
    )


class TestJsonlSink:
    def test_stream_is_parseable_and_matches_history(
        self, tiny_dataset, tmp_path
    ):
        """Acceptance: the JSON-lines file's per-round makespans equal
        the ConvergenceHistory's."""
        path = tmp_path / "telemetry.jsonl"
        sim = make_sync_sim(tiny_dataset)
        sink = JsonlSink(str(path))
        sim.events.subscribe(sink)
        history = sim.run(3, train=False)
        sink.close()

        events = read_jsonl(path)
        assert all("event" in e for e in events)
        jsonl_makespans = [
            e["makespan_s"]
            for e in events
            if e["event"] == "round_completed"
        ]
        assert jsonl_makespans == pytest.approx(history.makespans())
        assert len(jsonl_makespans) == 3

    def test_creates_missing_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "out.jsonl"
        with JsonlSink(str(path)) as sink:
            assert path.exists()
            assert sink.n_events == 0

    def test_every_line_is_json(self, tiny_dataset, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sim = make_sync_sim(tiny_dataset, with_devices=False)
        sink = JsonlSink(str(path))
        sim.events.subscribe(sink)
        sim.run_round()
        sink.close()
        with open(path) as fh:
            for line in fh:
                json.loads(line)
        assert sink.n_events > 0


class TestAggregator:
    def test_round_records_structure(self, tiny_dataset):
        sim = make_sync_sim(tiny_dataset, eval_every=1)
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        sim.run(2)
        assert len(agg.rounds) == 2
        first = agg.rounds[0]
        assert first["round"] == 1
        assert first["participant_count"] == 3
        assert len(first["clients"]) == 3
        assert all(not c["dropped"] for c in first["clients"])
        assert first["accuracy"] is not None

    def test_makespans_match_history(self, tiny_dataset):
        sim = make_sync_sim(tiny_dataset)
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        history = sim.run(2, train=False)
        assert agg.round_makespans() == pytest.approx(
            history.makespans()
        )

    def test_counts_by_kind(self, tiny_dataset):
        sim = make_sync_sim(tiny_dataset, n_users=2)
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        sim.run(2)
        counts = agg.counts()
        assert counts["client_dispatched"] == 4
        assert counts["client_finished"] == 4
        assert counts["model_aggregated"] == 2
        assert counts["round_completed"] == 2


class TestGlobalCapture:
    def test_record_telemetry_captures_internal_sims(
        self, tiny_dataset, tmp_path
    ):
        """Engines built inside the context are captured without any
        explicit subscription — the CLI's --telemetry path."""
        path = tmp_path / "captured.jsonl"
        with record_telemetry(str(path)) as agg:
            sim = make_sync_sim(tiny_dataset, n_users=2)
            sim.run(2, train=False)
        assert agg.counts()["round_completed"] == 2
        events = read_jsonl(path)
        assert [
            e["event"] for e in events
        ].count("round_completed") == 2

    def test_capture_stops_after_context(self, tiny_dataset):
        with record_telemetry() as agg:
            sim = make_sync_sim(tiny_dataset, n_users=2)
            sim.run_round(train=False)
        seen = len(agg.events)
        sim.run_round(train=False)
        assert len(agg.events) == seen


class TestOtherModes:
    def test_async_emits_aggregations(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 2, rng)
        devices = [
            make_device("pixel2", jitter=0.0, seed=i) for i in range(2)
        ]
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = AsyncFederatedSimulation(
            tiny_dataset, model, users, devices,
            config=AsyncConfig(lr=0.05),
        )
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        updates = sim.run(horizon_s=60.0)
        counts = agg.counts()
        assert counts["model_aggregated"] == len(updates)
        assert counts["client_finished"] == len(updates)
        # every client pull is narrated, including unfinished ones
        assert counts["client_dispatched"] >= len(updates)

    def test_gossip_emits_rounds(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = DecentralizedSimulation(
            tiny_dataset, model, users, make_topology("ring", 3)
        )
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        sim.run(2)
        counts = agg.counts()
        assert counts["round_completed"] == 2
        assert counts["client_dispatched"] == 6
        assert all(
            r["participant_count"] == 3 for r in agg.rounds
        )


class TestDroppedWithoutFinish:
    """Regression: a ``client_dropped`` with no preceding
    ``client_finished`` must still yield a client row."""

    def test_dropped_only_client_gets_a_row(self):
        agg = TelemetryAggregator()
        agg(ClientDropped(round_idx=1, client_id=5, total_s=9.0, time_s=9.0))
        agg(
            RoundCompleted(
                round_idx=1,
                makespan_s=9.0,
                mean_time_s=0.0,
                participant_count=0,
                accuracy=None,
                time_s=9.0,
            )
        )
        (record,) = agg.rounds
        (row,) = record["clients"]
        assert row["client"] == 5
        assert row["dropped"] is True
        assert row["total_s"] == pytest.approx(9.0)
        assert row["compute_s"] is None
        assert row["comm_s"] is None


class TestSchemaHeaderAndCorruptLines:
    def test_sink_writes_schema_header(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlSink(str(path)) as sink:
            assert sink.n_events == 0  # header is not an event
        (header,) = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert header == {
            "event": "telemetry_meta",
            "schema_version": TELEMETRY_SCHEMA_VERSION,
        }

    def test_read_jsonl_meta_extracts_header(self, tiny_dataset, tmp_path):
        path = tmp_path / "run.jsonl"
        sim = make_sync_sim(tiny_dataset, with_devices=False)
        with JsonlSink(str(path)) as sink:
            sim.events.subscribe(sink)
            sim.run_round(train=False)
        read = read_jsonl_meta(path)
        assert read.schema_version == TELEMETRY_SCHEMA_VERSION
        assert read.corrupt_lines == 0
        # the meta line is excluded from the event stream
        assert all(e["event"] != "telemetry_meta" for e in read.events)
        assert read.events == read_jsonl(path)

    def test_corrupt_trailing_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"event": "telemetry_meta", "schema_version": 2}\n'
            '{"event": "round_completed", "round_idx": 1, "time_s": 1.0}\n'
            '{"event": "round_comp'  # process killed mid-write
        )
        read = read_jsonl_meta(path)
        assert read.corrupt_lines == 1
        assert [e["event"] for e in read.events] == ["round_completed"]

    def test_non_dict_lines_count_as_corrupt(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('[1, 2, 3]\n"just a string"\n')
        read = read_jsonl_meta(path)
        assert read.corrupt_lines == 2
        assert read.events == []
        assert read.schema_version is None


class TestRecordTelemetryLifecycle:
    def test_listeners_removed_when_body_raises(self, tmp_path):
        """The context must deregister its global listeners (and close
        the sink) even when the run inside it fails."""
        path = tmp_path / "crash.jsonl"
        before = len(EventBus._global_listeners)
        with pytest.raises(RuntimeError, match="boom"):
            with record_telemetry(str(path)):
                assert len(EventBus._global_listeners) == before + 2
                raise RuntimeError("boom")
        assert len(EventBus._global_listeners) == before
        # the sink was flushed+closed: the header line is intact
        assert read_jsonl_meta(path).schema_version == (
            TELEMETRY_SCHEMA_VERSION
        )

    def test_nested_contexts_do_not_double_record(self, tiny_dataset):
        """Each aggregator sees each event once, nesting or not."""
        with record_telemetry() as outer:
            with record_telemetry() as inner:
                sim = make_sync_sim(
                    tiny_dataset, n_users=2, with_devices=False
                )
                sim.run_round(train=False)
            inner_counts = inner.counts()
        outer_counts = outer.counts()
        assert inner_counts["round_completed"] == 1
        assert outer_counts == inner_counts


class TestMembershipAttribution:
    """Regression: churn between rounds must not leak into round rows.

    A ``DeviceJoined``/``DeviceLost`` landing after round N completes
    used to sit in ``_pending_clients`` purgatory and would have been
    swept into round N+1's ``clients`` — membership now accumulates in
    the separate ``membership`` list and never becomes a client row.
    """

    def _round(self, agg, round_idx, clients):
        from repro.engine.events import ClientFinished

        for c in clients:
            agg(
                ClientFinished(
                    round_idx=round_idx,
                    client_id=c,
                    compute_s=1.0,
                    comm_s=0.5,
                    total_s=1.5,
                    time_s=1.5,
                )
            )
        agg(
            RoundCompleted(
                round_idx=round_idx,
                makespan_s=1.5,
                mean_time_s=1.5,
                participant_count=len(clients),
                accuracy=None,
                time_s=2.0,
            )
        )

    def test_out_of_round_event_is_not_a_client_row(self):
        from repro.engine.events import DeviceJoined, DeviceLost

        agg = TelemetryAggregator()
        self._round(agg, 1, [0, 1])
        # between rounds: one join, one timeout loss
        agg(DeviceJoined(device_id="d9", client_id=9, time_s=100.0))
        agg(
            DeviceLost(
                device_id="d0", client_id=0,
                reason="timeout", time_s=101.0,
            )
        )
        self._round(agg, 2, [1, 9])
        # neither round's client rows mention the churned identities
        # as membership rows — client 9's *training* row in round 2 is
        # legitimate, the join instant itself is not a row anywhere
        assert [r["round"] for r in agg.rounds] == [1, 2]
        assert [c["client"] for c in agg.rounds[0]["clients"]] == [0, 1]
        assert [c["client"] for c in agg.rounds[1]["clients"]] == [1, 9]
        assert all(
            set(c) >= {"client", "compute_s", "dropped"}
            for r in agg.rounds
            for c in r["clients"]
        )
        # the churn is preserved, structured, in its own stream
        assert [m["event"] for m in agg.membership] == [
            "device_joined",
            "device_lost",
        ]
        assert agg.membership[1]["reason"] == "timeout"
        assert agg.counts()["device_joined"] == 1
        assert agg.counts()["device_lost"] == 1

    def test_membership_events_survive_the_jsonl_round_trip(
        self, tmp_path
    ):
        from repro.engine.events import DeviceLost

        path = tmp_path / "churn.jsonl"
        sink = JsonlSink(str(path))
        sink(
            DeviceLost(
                device_id="d3", client_id=3,
                reason="deregistered", time_s=7.0,
            )
        )
        sink.close()
        events = read_jsonl(path)
        assert events == [
            {
                "event": "device_lost",
                "device_id": "d3",
                "client_id": 3,
                "reason": "deregistered",
                "time_s": 7.0,
            }
        ]

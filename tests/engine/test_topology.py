"""Topology-object tests (graph generators are covered in
tests/federated/test_decentralized.py via the re-exports)."""

import numpy as np
import pytest

from repro.engine.topology import (
    PeerGraph,
    StarTopology,
    make_topology,
    metropolis_weights,
)


class TestStarTopology:
    def test_every_client_talks_to_server(self):
        star = StarTopology(4)
        assert star.n_nodes == 4
        for j in range(4):
            assert star.neighbors(j) == [StarTopology.SERVER]

    def test_bounds(self):
        with pytest.raises(ValueError):
            StarTopology(0)
        with pytest.raises(IndexError):
            StarTopology(2).neighbors(2)


class TestPeerGraph:
    def test_mixing_matches_metropolis(self):
        g = make_topology("ring", 5)
        peer = PeerGraph(g)
        np.testing.assert_allclose(peer.mixing, metropolis_weights(g))
        assert peer.n_nodes == 5

    def test_neighbors_sorted(self):
        g = make_topology("ring", 4)
        assert PeerGraph(g).neighbors(0) == [1, 3]

    def test_disconnected_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(3))
        with pytest.raises(ValueError):
            PeerGraph(g)

    def test_decentralized_reexports_engine_topology(self):
        from repro.engine import topology as engine_topology
        from repro.federated import decentralized

        assert decentralized.make_topology is engine_topology.make_topology
        assert (
            decentralized.metropolis_weights
            is engine_topology.metropolis_weights
        )

"""Event-stream tests: golden sequences and payload integrity."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.device.registry import make_device
from repro.engine import (
    ClientDispatched,
    ClientDropped,
    ClientFinished,
    EventBus,
    ModelAggregated,
    RoundCompleted,
)
from repro.federated.dropout import DropoutPolicy
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic


def make_sim(dataset, n_users=2, devices=None, **cfg_kw):
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n_users, rng)
    model = logistic(input_shape=dataset.input_shape, seed=1)
    return FederatedSimulation(
        dataset, model, users, devices=devices,
        config=SimulationConfig(lr=0.05, **cfg_kw),
    )


class TestGoldenSequence:
    def test_two_users_two_rounds_sync(self, tiny_dataset):
        """The exact event sequence of a 2-user, 2-round sync run."""
        devices = [make_device("pixel2", jitter=0.0) for _ in range(2)]
        sim = make_sim(tiny_dataset, devices=devices, eval_every=1)
        events = []
        sim.events.subscribe(events.append)
        sim.run(2)

        kinds = [e.kind for e in events]
        per_round = [
            "client_dispatched",
            "client_finished",
            "client_dispatched",
            "client_finished",
            "model_aggregated",
            "round_completed",
        ]
        assert kinds == per_round + per_round

        # round indices: first six events belong to round 1, rest to 2
        assert all(e.round_idx == 1 for e in events[:6])
        assert all(e.round_idx == 2 for e in events[6:])
        # clients dispatched in order 0, 1 each round
        dispatches = [
            e for e in events if isinstance(e, ClientDispatched)
        ]
        assert [e.client_id for e in dispatches] == [0, 1, 0, 1]
        # aggregation saw both participants with the fedavg strategy
        agg = [e for e in events if isinstance(e, ModelAggregated)]
        assert all(e.participants == (0, 1) for e in agg)
        assert all(e.strategy == "fedavg" for e in agg)

    def test_round_completed_matches_record(self, tiny_dataset):
        devices = [
            make_device(n, jitter=0.0) for n in ("pixel2", "mate10")
        ]
        sim = make_sim(tiny_dataset, devices=devices, eval_every=1)
        events = []
        sim.events.subscribe(events.append)
        record = sim.run_round()
        done = [e for e in events if isinstance(e, RoundCompleted)]
        assert len(done) == 1
        assert done[0].makespan_s == pytest.approx(record.makespan_s)
        assert done[0].mean_time_s == pytest.approx(record.mean_time_s)
        assert done[0].participant_count == record.participant_count
        assert done[0].accuracy == record.accuracy

    def test_client_finished_times_sum(self, tiny_dataset):
        devices = [make_device("pixel2", jitter=0.0) for _ in range(2)]
        sim = make_sim(tiny_dataset, devices=devices)
        events = []
        sim.events.subscribe(events.append)
        record = sim.run_round(train=False)
        finished = [e for e in events if isinstance(e, ClientFinished)]
        for e in finished:
            assert e.total_s == pytest.approx(e.compute_s + e.comm_s)
            assert e.total_s == pytest.approx(
                record.per_user_time_s[e.client_id]
            )

    def test_dropped_straggler_emits_event(self, tiny_dataset):
        devices = [
            make_device(n, jitter=0.0)
            for n in ("pixel2", "pixel2", "nexus6p")
        ]
        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset, model, users, devices=devices,
            dropout=DropoutPolicy(deadline_factor=1.2),
        )
        events = []
        sim.events.subscribe(events.append)
        record = sim.run_round(train=False)
        dropped = [e for e in events if isinstance(e, ClientDropped)]
        assert [e.client_id for e in dropped] == [2]
        assert record.participant_count == 2


class TestEventPayloads:
    def test_to_dict_is_json_safe(self):
        import json

        e = ModelAggregated(
            round_idx=1,
            participants=(0, 2),
            strategy="fedavg",
            version=1,
            time_s=1.5,
        )
        payload = e.to_dict()
        assert payload["event"] == "model_aggregated"
        assert payload["participants"] == [0, 2]
        json.dumps(payload)  # must not raise

    def test_events_are_frozen(self):
        e = ClientDispatched(
            round_idx=1, client_id=0, n_samples=10, time_s=0.0
        )
        with pytest.raises(AttributeError):
            e.client_id = 3


class TestEventBus:
    def test_subscribe_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        event = RoundCompleted(
            round_idx=1, makespan_s=0.0, mean_time_s=0.0,
            participant_count=1, accuracy=None, time_s=0.0,
        )
        bus.emit(event)
        unsubscribe()
        bus.emit(event)
        assert len(seen) == 1

    def test_global_listener_sees_every_bus(self):
        seen = []
        EventBus.add_global_listener(seen.append)
        try:
            event = RoundCompleted(
                round_idx=1, makespan_s=0.0, mean_time_s=0.0,
                participant_count=1, accuracy=None, time_s=0.0,
            )
            EventBus().emit(event)
            EventBus().emit(event)
        finally:
            EventBus.remove_global_listener(seen.append)
        assert len(seen) == 2

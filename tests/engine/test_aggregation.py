"""Aggregation-strategy tests: FedAvg, staleness decay, gossip mixing."""

import numpy as np
import pytest

from repro.engine.aggregation import (
    GossipAverage,
    StalenessWeighted,
    SyncFedAvg,
    fedavg_aggregate,
)
from repro.engine.topology import make_topology, metropolis_weights


class TestFedAvgHome:
    def test_server_reexports_engine_implementation(self):
        from repro.federated import server

        assert server.fedavg_aggregate is fedavg_aggregate

    def test_sync_strategy_matches_direct_call(self):
        vecs = [np.array([0.0, 0.0]), np.array([1.0, 2.0])]
        counts = [1, 3]
        np.testing.assert_allclose(
            SyncFedAvg().aggregate(vecs, counts),
            fedavg_aggregate(vecs, counts),
        )


class TestStalenessWeighted:
    def test_poly_default_is_classic_decay(self):
        s = StalenessWeighted(base_mix=0.6)
        for tau in range(6):
            assert s.mix_weight(tau) == pytest.approx(0.6 / (1 + tau))

    def test_constant_never_decays(self):
        s = StalenessWeighted(base_mix=0.5, decay="constant")
        assert s.mix_weight(0) == s.mix_weight(100) == 0.5

    def test_hinge_flat_then_hyperbolic(self):
        s = StalenessWeighted(base_mix=0.6, decay="hinge", a=2.0, b=4.0)
        assert s.mix_weight(4) == pytest.approx(0.6)
        assert s.mix_weight(6) == pytest.approx(0.6 / (2.0 * 2.0))

    def test_poly_exponent_steepens_decay(self):
        shallow = StalenessWeighted(base_mix=0.6, decay="poly", a=0.5)
        steep = StalenessWeighted(base_mix=0.6, decay="poly", a=2.0)
        assert steep.mix_weight(5) < shallow.mix_weight(5)

    def test_merge_blends_towards_client(self):
        s = StalenessWeighted(base_mix=0.5, decay="constant")
        new, mix = s.merge(np.zeros(3), np.ones(3), staleness=0)
        assert mix == 0.5
        np.testing.assert_allclose(new, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StalenessWeighted(base_mix=0.0)
        with pytest.raises(ValueError):
            StalenessWeighted(decay="exp")
        with pytest.raises(ValueError):
            StalenessWeighted(a=0.0)
        with pytest.raises(ValueError):
            StalenessWeighted().mix_weight(-1)


class TestGossipAverage:
    def test_mix_matches_matrix_product(self):
        g = make_topology("ring", 4)
        w = metropolis_weights(g)
        strategy = GossipAverage(w)
        replicas = np.arange(8.0).reshape(4, 2)
        np.testing.assert_allclose(strategy.mix(replicas), w @ replicas)

    def test_mix_preserves_mean(self):
        """Doubly-stochastic mixing conserves the replica average."""
        g = make_topology("complete", 5)
        strategy = GossipAverage(metropolis_weights(g))
        rng = np.random.default_rng(0)
        replicas = rng.normal(size=(5, 7))
        mixed = strategy.mix(replicas)
        np.testing.assert_allclose(
            mixed.mean(axis=0), replicas.mean(axis=0), atol=1e-12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipAverage(np.zeros((2, 3)))
        strategy = GossipAverage(np.eye(3))
        with pytest.raises(ValueError):
            strategy.mix(np.zeros((4, 2)))

"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* valid input, spanning the NumPy DL
stack, the device simulator, the partitioners and the schedulers.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.baselines import equal_schedule, random_schedule
from repro.core.cost import enforce_property1
from repro.core.lbap import fed_lbap
from repro.core.schedule import Schedule, evaluate_makespan
from repro.data.partition import (
    imbalanced_iid_sizes,
    nclass_noniid_classes,
)
from repro.device.specs import ClusterSpec, DeviceSpec, ThermalSpec
from repro.device.thermal import ThermalState
from repro.federated.server import fedavg_aggregate
from repro.models.layers import col2im, im2col
from repro.models.losses import softmax, softmax_cross_entropy


class TestModelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 6),
        k=st.integers(2, 12),
    )
    def test_softmax_is_distribution(self, seed, n, k):
        rng = np.random.default_rng(seed)
        logits = rng.normal(0, 5, size=(n, k))
        p = softmax(logits)
        assert (p >= 0).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cross_entropy_nonnegative_and_grad_sums_zero(self, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(5, 8))
        labels = rng.integers(0, 8, size=5)
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= 0.0
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        kh=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
    )
    def test_im2col_col2im_adjoint(self, seed, kh, stride, pad):
        """<im2col(x), c> == <x, col2im(c)> for all geometries."""
        rng = np.random.default_rng(seed)
        h = kh + 2  # ensure the kernel fits
        x = rng.normal(size=(2, 2, h, h))
        cols, _, _ = im2col(x, kh, kh, (stride, stride), (pad, pad))
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float(
            (x * col2im(c, x.shape, kh, kh, (stride, stride), (pad, pad))).sum()
        )
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestFedAvgProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_clients=st.integers(1, 6),
    )
    def test_aggregate_is_convex_combination(self, seed, n_clients):
        """Each coordinate of the aggregate lies within the clients'
        min/max envelope."""
        rng = np.random.default_rng(seed)
        vecs = [rng.normal(size=7) for _ in range(n_clients)]
        counts = rng.integers(1, 100, size=n_clients).tolist()
        agg = fedavg_aggregate(vecs, counts)
        stack = np.stack(vecs)
        assert (agg >= stack.min(axis=0) - 1e-12).all()
        assert (agg <= stack.max(axis=0) + 1e-12).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_aggregate_scale_equivariant(self, seed):
        rng = np.random.default_rng(seed)
        vecs = [rng.normal(size=5) for _ in range(3)]
        counts = [3, 5, 2]
        a = fedavg_aggregate(vecs, counts)
        b = fedavg_aggregate([2.0 * v for v in vecs], counts)
        np.testing.assert_allclose(2.0 * a, b, atol=1e-12)


class TestThermalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        p1=st.floats(0.0, 10.0),
        p2=st.floats(0.0, 10.0),
        dt=st.floats(0.1, 100.0),
    )
    def test_more_power_never_cooler(self, p1, p2, dt):
        assume(p1 <= p2)
        a = ThermalState(ThermalSpec())
        b = ThermalState(ThermalSpec())
        a.update(p1, dt)
        b.update(p2, dt)
        assert b.temp_c >= a.temp_c - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.floats(0.0, 10.0),
        dt1=st.floats(0.1, 50.0),
        dt2=st.floats(0.1, 50.0),
    )
    def test_update_composes(self, p, dt1, dt2):
        """Two consecutive updates equal one combined update (the exact
        integrator property)."""
        a = ThermalState(ThermalSpec())
        a.update(p, dt1)
        a.update(p, dt2)
        b = ThermalState(ThermalSpec())
        b.update(p, dt1 + dt2)
        assert a.temp_c == pytest.approx(b.temp_c, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(p=st.floats(0.0, 20.0))
    def test_temperature_bounded_by_steady_state(self, p):
        spec = ThermalSpec()
        st_ = ThermalState(spec)
        steady = spec.ambient_c + spec.r_thermal_c_per_w * p
        for _ in range(20):
            st_.update(p, 10.0)
            lo = min(spec.ambient_c, steady) - 1e-9
            hi = max(spec.ambient_c, steady) + 1e-9
            assert lo <= st_.temp_c <= hi


class TestPartitionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(2, 20),
        ratio=st.floats(0.0, 1.2),
    )
    def test_imbalanced_sizes_exact_total(self, seed, n_users, ratio):
        rng = np.random.default_rng(seed)
        total = 100 * n_users
        sizes = imbalanced_iid_sizes(n_users, total, ratio, rng)
        assert int(sizes.sum()) == total
        assert (sizes >= 1).all()

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(3, 12),
        k=st.integers(1, 10),
    )
    def test_noniid_class_sets_valid(self, seed, n_users, k):
        rng = np.random.default_rng(seed)
        sets = nclass_noniid_classes(n_users, k, 10, rng)
        for s in sets:
            assert 1 <= len(s) <= 10
            assert len(set(s)) == len(s)
        if n_users * k >= 10:
            assert set(c for s in sets for c in s) == set(range(10))


class TestSchedulerProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property1_enforcement_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        c = rng.uniform(0, 10, size=(4, 8))
        once = enforce_property1(c)
        twice = enforce_property1(once)
        np.testing.assert_allclose(once, twice)
        assert (np.diff(once, axis=1) >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), total=st.integers(2, 30))
    def test_lbap_not_worse_than_equal(self, seed, total):
        """Fed-LBAP's realized bottleneck is never worse than Equal's
        under the same cost matrix."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        cost = np.cumsum(rng.uniform(0.05, 1.0, size=(n, total)), axis=1)
        sched, c_star = fed_lbap(cost, total)
        eq = equal_schedule(n, total, 1)

        def bottleneck(counts):
            return max(
                cost[j, k - 1] for j, k in enumerate(counts) if k > 0
            )

        assert c_star <= bottleneck(eq.shard_counts) + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_makespan_consistent_with_curves(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        slopes = rng.uniform(0.001, 0.1, size=n)
        counts = rng.integers(0, 10, size=n)
        assume(counts.sum() > 0)
        sched = Schedule(counts, shard_size=100)
        curves = [lambda x, s=s: s * x for s in slopes]
        cost = evaluate_makespan(sched, curves)
        expected = max(
            slopes[j] * counts[j] * 100
            for j in range(n)
            if counts[j] > 0
        )
        assert cost.makespan_s == pytest.approx(expected)
        assert cost.mean_s <= cost.makespan_s + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), total=st.integers(1, 50))
    def test_random_schedule_total(self, seed, total):
        rng = np.random.default_rng(seed)
        s = random_schedule(5, total, 10, rng)
        assert s.total_shards == total


class TestTelemetryProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(1, 4),
        n_rounds=st.integers(1, 3),
    )
    def test_telemetry_makespans_match_history(
        self, tiny_dataset, seed, n_users, n_rounds
    ):
        """For any sync run, the event stream's per-round makespans are
        exactly the ConvergenceHistory's makespans."""
        from repro.data.partition import iid_partition
        from repro.device.registry import DEVICE_NAMES, make_device
        from repro.engine.telemetry import TelemetryAggregator
        from repro.federated.simulation import FederatedSimulation
        from repro.models import logistic

        rng = np.random.default_rng(seed)
        users = iid_partition(tiny_dataset, n_users, rng)
        names = sorted(DEVICE_NAMES)
        devices = [
            make_device(names[int(rng.integers(len(names)))], jitter=0.0)
            for _ in range(n_users)
        ]
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset, model, users, devices=devices
        )
        agg = TelemetryAggregator()
        sim.events.subscribe(agg)
        history = sim.run(n_rounds, train=False)

        assert agg.round_makespans() == pytest.approx(
            history.makespans()
        )
        assert len(agg.rounds) == n_rounds
        assert agg.dispatch_count() == n_users * n_rounds


class TestDeviceProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        f1=st.floats(0.5, 2.0),
        f2=st.floats(0.5, 2.0),
        flops=st.floats(1e6, 1e10),
    )
    def test_throughput_monotone_in_frequency(self, f1, f2, flops):
        assume(f1 <= f2)
        spec = DeviceSpec(
            name="t",
            soc="t",
            clusters=(
                ClusterSpec(
                    name="uni",
                    n_cores=4,
                    freq_min_ghz=0.5,
                    freq_max_ghz=2.0,
                    gflops_per_core_ghz=1.0,
                ),
            ),
        )
        a = spec.effective_gflops(flops, {"uni": f1})
        b = spec.effective_gflops(flops, {"uni": f2})
        assert b >= a - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(
        flops1=st.floats(1e6, 1e10),
        flops2=st.floats(1e6, 1e10),
    )
    def test_efficiency_monotone_in_intensity(self, flops1, flops2):
        assume(flops1 <= flops2)
        spec = DeviceSpec(
            name="t",
            soc="t",
            clusters=(
                ClusterSpec(
                    name="uni",
                    n_cores=1,
                    freq_min_ghz=1.0,
                    freq_max_ghz=1.0,
                    gflops_per_core_ghz=1.0,
                ),
            ),
            flops_half=5e7,
        )
        assert spec.efficiency(flops2) >= spec.efficiency(flops1)

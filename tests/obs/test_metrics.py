"""Metric primitives: specs, catalog, instruments, registry."""

import pytest

from repro.obs import catalog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricSpec,
    available_metrics,
    metric_spec,
    register_metric,
)


class TestMetricSpec:
    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="metric name"):
            MetricSpec(name="Bad-Name", kind="counter", help="x")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MetricSpec(name="ok_name", kind="summary", help="x")

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError, match="label"):
            MetricSpec(
                name="ok_name", kind="gauge", help="x", labels=("Bad!",)
            )

    def test_buckets_only_on_histograms(self):
        with pytest.raises(ValueError, match="histograms"):
            MetricSpec(
                name="ok_name", kind="counter", help="x", buckets=(1.0,)
            )

    def test_buckets_must_be_sorted_distinct(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricSpec(
                name="ok_name",
                kind="histogram",
                help="x",
                buckets=(2.0, 1.0),
            )
        with pytest.raises(ValueError, match="distinct"):
            MetricSpec(
                name="ok_name",
                kind="histogram",
                help="x",
                buckets=(1.0, 1.0),
            )


class TestCatalogRegistration:
    def test_reregistering_identical_spec_is_noop(self):
        spec = catalog.ROUNDS_TOTAL
        again = register_metric(
            spec.name, spec.kind, spec.help, labels=spec.labels,
            unit=spec.unit, buckets=spec.buckets,
        )
        assert again == spec

    def test_conflicting_spec_is_an_error(self):
        with pytest.raises(ValueError, match="different spec"):
            register_metric(
                catalog.ROUNDS_TOTAL.name, "gauge", "not a counter"
            )

    def test_lookup_and_listing(self):
        assert metric_spec("repro_rounds_total") == catalog.ROUNDS_TOTAL
        names = available_metrics()
        assert names == tuple(sorted(names))
        assert "repro_battery_soc" in names
        with pytest.raises(KeyError, match="unknown metric"):
            metric_spec("no_such_metric")

    def test_catalog_covers_every_engine_surface(self):
        """The catalog names the paper's three stories: time, energy,
        scheduling."""
        names = set(available_metrics())
        assert {
            "repro_round_makespan_seconds",
            "repro_client_energy_joules_total",
            "repro_battery_soc",
            "repro_schedule_solve_ms",
        } <= names


class TestCounter:
    def test_inc_and_series(self):
        c = Counter(catalog.CLIENT_ROUNDS_TOTAL)
        c.inc(client=2)
        c.inc(client=0)
        c.inc(2.0, client=0)
        assert c.value(client=0) == pytest.approx(3.0)
        assert c.value(client=5) == 0.0
        assert list(c.series()) == [(("0",), 3.0), (("2",), 1.0)]
        assert c.total() == pytest.approx(4.0)

    def test_negative_increment_rejected(self):
        c = Counter(catalog.ROUNDS_TOTAL)
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_label_set_is_enforced(self):
        c = Counter(catalog.CLIENT_ROUNDS_TOTAL)
        with pytest.raises(ValueError, match="takes labels"):
            c.inc()
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(client=1, extra="nope")


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge(catalog.BATTERY_SOC)
        g.set(0.9, client=1)
        g.set(0.7, client=1)
        assert g.value(client=1) == pytest.approx(0.7)
        assert g.value(client=2) is None


class TestHistogram:
    def test_cumulative_buckets_and_exact_quantiles(self):
        spec = register_metric(
            "test_obs_hist_seconds",
            "histogram",
            "test histogram",
            buckets=(1.0, 5.0, 10.0),
        )
        h = Histogram(spec)
        for v in (0.5, 2.0, 7.0, 20.0):
            h.observe(v)
        ((_labels, series),) = list(h.series())
        # cumulative Prometheus semantics: le=1 -> 1, le=5 -> 2, le=10 -> 3
        assert series.bucket_counts == [1, 2, 3]
        assert h.count() == 4
        assert h.sum() == pytest.approx(29.5)
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(20.0)
        assert h.quantile(0.5) in (2.0, 7.0)

    def test_quantile_of_empty_series_is_none(self):
        h = Histogram(catalog.ROUND_MAKESPAN_SECONDS)
        assert h.quantile(0.5) is None
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        a = reg.counter(catalog.ROUNDS_TOTAL)
        b = reg.counter("repro_rounds_total")
        assert a is b
        assert "repro_rounds_total" in reg
        assert reg.get("repro_rounds_total") is a

    def test_kind_mismatch_is_an_error(self):
        reg = MetricRegistry()
        with pytest.raises(TypeError, match="is a counter"):
            reg.gauge(catalog.ROUNDS_TOTAL)

    def test_registries_are_isolated(self):
        a = MetricRegistry()
        b = MetricRegistry()
        a.counter(catalog.ROUNDS_TOTAL).inc()
        assert b.counter(catalog.ROUNDS_TOTAL).value() == 0.0

    def test_metrics_iterate_in_name_order(self):
        reg = MetricRegistry()
        reg.gauge(catalog.BATTERY_SOC)
        reg.counter(catalog.ROUNDS_TOTAL)
        reg.counter(catalog.EVENTS_TOTAL)
        assert [m.name for m in reg.metrics()] == sorted(reg.names())

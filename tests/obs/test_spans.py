"""Span tree construction: live fold, replay fold, edge cases."""

import pytest

from repro.obs.spans import Span, SpanBuilder, spans_from_events


def _span_index(roots):
    """(category, name) -> span for every span in the forest."""
    out = {}
    for root in roots:
        for span in root.walk():
            out[(span.category, span.name)] = span
    return out


class TestReplay:
    def test_hierarchy_run_round_client(self, synthetic_dicts):
        (run,) = spans_from_events(synthetic_dicts, run_name="test-run")
        assert run.category == "run"
        assert run.name == "test-run"
        assert run.start_s == pytest.approx(0.0)
        assert run.end_s == pytest.approx(16.0)
        rounds = [s for s in run.children if s.category == "round"]
        assert [r.attrs["round"] for r in rounds] == [1, 2]
        r1, r2 = rounds
        assert r1.end_s == pytest.approx(9.0)
        assert r1.attrs["makespan_s"] == pytest.approx(9.0)
        assert r2.start_s == pytest.approx(9.0)
        assert r2.end_s == pytest.approx(16.0)

    def test_client_span_intervals_and_attrs(self, synthetic_dicts):
        (run,) = spans_from_events(synthetic_dicts)
        r1 = next(
            s
            for s in run.children
            if s.category == "round" and s.attrs["round"] == 1
        )
        c0 = next(
            s
            for s in r1.children
            if s.category == "client" and s.attrs["client"] == 0
        )
        # round 1's client 0: dispatched at 0, finished at 4
        assert c0.start_s == pytest.approx(0.0)
        assert c0.end_s == pytest.approx(4.0)
        assert c0.attrs["compute_s"] == pytest.approx(3.0)
        assert c0.attrs["energy_j"] == pytest.approx(30.0)
        assert c0.attrs["battery_soc"] == pytest.approx(0.95)

    def test_dropped_client_is_marked(self, synthetic_dicts):
        roots = spans_from_events(synthetic_dicts)
        (run,) = roots
        r1 = run.children[0] if run.children[0].category == "round" else None
        dropped = [
            s
            for s in run.walk()
            if s.category == "client" and s.attrs.get("dropped")
        ]
        assert len(dropped) == 1
        assert dropped[0].attrs["client"] == 1
        assert dropped[0].end_s == pytest.approx(8.0)
        assert r1 is not None and dropped[0] in r1.children

    def test_instant_spans_for_sched_and_aggregate(self, synthetic_dicts):
        roots = spans_from_events(synthetic_dicts)
        spans = _span_index(roots)
        sched = spans[("sched", "schedule [olar]")]
        assert sched.duration_s == pytest.approx(0.0)
        assert sched.attrs["solve_ms"] == pytest.approx(2.5)
        aggs = [
            s
            for root in roots
            for s in root.walk()
            if s.category == "aggregate"
        ]
        assert [a.attrs["participants"] for a in aggs] == [1, 2]

    def test_unknown_kinds_are_ignored(self, synthetic_dicts):
        noisy = (
            [{"event": "telemetry_meta", "schema_version": 2}]
            + synthetic_dicts
            + [{"event": "future_kind", "time_s": 99.0}]
        )
        assert len(spans_from_events(noisy)) == 1


class TestLiveEquivalence:
    def test_live_and_replay_agree(self, synthetic_events, synthetic_dicts):
        live = SpanBuilder("x")
        for event in synthetic_dicts:
            live.add(event)
        replay = spans_from_events(synthetic_dicts, run_name="x")

        def shape(roots):
            return [
                (s.category, s.name, round(s.start_s, 9), round(s.end_s, 9))
                for root in roots
                for s in root.walk()
            ]

        assert shape(live.finish()) == shape(replay)


class TestEdgeCases:
    def test_empty_stream_yields_no_spans(self):
        assert SpanBuilder().finish() == []

    def test_finish_is_idempotent(self, synthetic_dicts):
        builder = SpanBuilder()
        for event in synthetic_dicts:
            builder.add(event)
        assert builder.finish() == builder.finish()

    def test_add_after_finish_raises(self, synthetic_dicts):
        builder = SpanBuilder()
        builder.add(synthetic_dicts[0])
        builder.finish()
        with pytest.raises(RuntimeError, match="finished"):
            builder.add(synthetic_dicts[1])

    def test_finish_without_round_completed_closes_open_spans(self):
        """Async-style stream: no barrier events at all."""
        builder = SpanBuilder()
        builder.add(
            {
                "event": "client_dispatched",
                "round_idx": 0,
                "client_id": 3,
                "n_samples": 10,
                "time_s": 1.0,
            }
        )
        builder.add(
            {
                "event": "client_dispatched",
                "round_idx": 0,
                "client_id": 4,
                "n_samples": 10,
                "time_s": 2.0,
            }
        )
        builder.add(
            {
                "event": "client_finished",
                "round_idx": 0,
                "client_id": 3,
                "compute_s": 1.0,
                "comm_s": 0.5,
                "total_s": 1.5,
                "time_s": 2.5,
            }
        )
        (run,) = builder.finish()
        spans = {s.name: s for s in run.walk() if s.category == "client"}
        assert spans["client 3"].end_s == pytest.approx(2.5)
        # client 4 never finished: closed at the last seen time, marked
        assert spans["client 4"].end_s == pytest.approx(2.5)
        assert spans["client 4"].attrs.get("unclosed") is True

    def test_finish_without_dispatch_synthesises_interval(self):
        """Trimmed captures still produce client spans."""
        roots = spans_from_events(
            [
                {
                    "event": "client_finished",
                    "round_idx": 2,
                    "client_id": 7,
                    "compute_s": 2.0,
                    "comm_s": 1.0,
                    "total_s": 3.0,
                    "time_s": 10.0,
                }
            ]
        )
        spans = _span_index(roots)
        c7 = spans[("client", "client 7")]
        assert c7.start_s == pytest.approx(7.0)
        assert c7.end_s == pytest.approx(10.0)

    def test_walk_is_preorder(self):
        root = Span("a", "run", 0.0, 1.0)
        child = Span("b", "round", 0.0, 1.0)
        grand = Span("c", "client", 0.0, 1.0)
        child.children.append(grand)
        root.children.append(child)
        assert [s.name for s in root.walk()] == ["a", "b", "c"]


class TestMembershipSpans:
    """Regression: between-round churn hangs off the run, not a round."""

    def _events(self):
        return [
            {
                "event": "client_dispatched", "round_idx": 1,
                "client_id": 0, "n_samples": 100, "time_s": 0.0,
            },
            {
                "event": "client_finished", "round_idx": 1,
                "client_id": 0, "compute_s": 3.0, "comm_s": 1.0,
                "total_s": 4.0, "time_s": 4.0,
            },
            {
                "event": "round_completed", "round_idx": 1,
                "makespan_s": 4.0, "mean_time_s": 4.0,
                "participant_count": 1, "time_s": 4.0,
            },
            # churn strictly between round 1 and round 2
            {
                "event": "device_joined", "device_id": "d7",
                "client_id": 7, "time_s": 5.0,
            },
            {
                "event": "device_lost", "device_id": "d0",
                "client_id": 0, "reason": "timeout", "time_s": 6.0,
            },
            {
                "event": "client_dispatched", "round_idx": 2,
                "client_id": 7, "n_samples": 100, "time_s": 7.0,
            },
            {
                "event": "round_completed", "round_idx": 2,
                "makespan_s": 2.0, "mean_time_s": 2.0,
                "participant_count": 1, "time_s": 9.0,
            },
        ]

    def test_membership_instants_are_run_children(self):
        (run,) = spans_from_events(self._events(), run_name="serve")
        membership = [
            s for s in run.children if s.category == "membership"
        ]
        assert [s.name for s in membership] == [
            "device_joined [d7]",
            "device_lost [d0]",
        ]
        # instants: zero duration, stamped at the event time
        for span in membership:
            assert span.start_s == span.end_s
        assert membership[0].attrs == {"device_id": "d7", "client": 7}
        assert membership[1].attrs["reason"] == "timeout"
        # and *no* round span claims them
        for round_span in run.children:
            if round_span.category == "round":
                assert all(
                    s.category != "membership"
                    for s in round_span.walk()
                )

    def test_membership_does_not_distort_round_intervals(self):
        (run,) = spans_from_events(self._events())
        rounds = [s for s in run.children if s.category == "round"]
        assert [r.attrs["round"] for r in rounds] == [1, 2]
        r1, r2 = rounds
        # round 1 closed at its completion time; the 5.0s/6.0s churn
        # instants did not stretch it
        assert r1.end_s == pytest.approx(4.0)
        assert r2.end_s == pytest.approx(9.0)
        # but the run itself spans the churn
        assert run.start_s <= 0.0 and run.end_s >= 9.0

    def test_live_fold_matches_replay(self):
        from repro.obs.spans import SpanBuilder

        builder = SpanBuilder(run_name="serve")
        for event in self._events():
            builder.add(event)
        (run,) = builder.finish()
        membership = [
            s for s in run.children if s.category == "membership"
        ]
        assert len(membership) == 2

"""Exporters: Prometheus exposition, Chrome trace JSON, dashboard.

The golden files under ``tests/obs/golden/`` are rendered from the
shared synthetic stream (see ``conftest.py``); regenerate them by
re-rendering after an intentional format change and eyeballing the
diff — they are the exporters' compatibility contract.
"""

import json
import re
from pathlib import Path

import pytest

from repro.obs import (
    MetricRegistry,
    ObsRecorder,
    catalog,
    render_prometheus,
    render_summary,
    render_trace_json,
    trace_events,
)

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture
def recorder(synthetic_events):
    rec = ObsRecorder(run_name="synthetic")
    for event in synthetic_events:
        rec(event)
    return rec


class TestPrometheusGolden:
    def test_matches_golden_file(self, recorder):
        text = render_prometheus(
            recorder.metrics,
            extra_info={"source": "synthetic", "schema_version": "2"},
        )
        assert text == (GOLDEN / "synthetic.prom").read_text()

    def test_exposition_grammar(self, recorder):
        """Every non-comment line is ``name{labels} value``."""
        text = render_prometheus(recorder.metrics)
        sample = re.compile(
            r"^[a-z_][a-z0-9_]*(\{[^}]*\})? "
            r"(NaN|[+-]?Inf|[-+0-9.e]+)$"
        )
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert sample.match(line), f"bad exposition line: {line!r}"

    def test_histogram_buckets_are_cumulative_and_capped(self, recorder):
        text = render_prometheus(recorder.metrics)
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'^repro_round_makespan_seconds_bucket\{le="[^"]+"\} '
                r"(\d+)$",
                text,
                re.M,
            )
        ]
        assert counts == sorted(counts)  # cumulative
        (total,) = re.findall(
            r"^repro_round_makespan_seconds_count (\d+)$", text, re.M
        )
        assert counts[-1] == int(total)  # +Inf bucket == _count

    def test_integers_render_without_decimal_point(self, recorder):
        text = render_prometheus(recorder.metrics)
        assert "repro_rounds_total 2\n" in text
        assert "repro_rounds_total 2.0" not in text

    def test_label_values_are_escaped(self):
        reg = MetricRegistry()
        reg.counter(catalog.AGGREGATIONS_TOTAL).inc(
            strategy='we"ird\nname'
        )
        text = render_prometheus(reg)
        assert r'strategy="we\"ird\nname"' in text

    def test_unlabelled_counter_renders_zero_when_untouched(self):
        reg = MetricRegistry()
        reg.counter(catalog.ROUNDS_TOTAL)
        assert "repro_rounds_total 0" in render_prometheus(reg)


class TestTraceGolden:
    def test_matches_golden_file(self, recorder):
        text = render_trace_json(
            recorder.finish_spans(), process_name="synthetic"
        )
        assert text + "\n" == (
            GOLDEN / "synthetic.trace.json"
        ).read_text()

    def test_payload_is_loadable_and_well_formed(self, recorder):
        payload = json.loads(
            render_trace_json(recorder.finish_spans())
        )
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("X", "i", "M")
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_clients_get_their_own_threads(self, recorder):
        events = trace_events(recorder.finish_spans())
        client_tids = {
            e["tid"] for e in events if e.get("cat") == "client"
        }
        assert client_tids == {1, 2}  # client 0 -> tid 1, client 1 -> 2
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"engine", "client 0", "client 1"} <= thread_names

    def test_timestamps_are_microseconds(self, recorder):
        events = trace_events(recorder.finish_spans())
        runs = [e for e in events if e.get("cat") == "run"]
        assert runs[0]["dur"] == pytest.approx(16.0 * 1e6)


class TestDashboard:
    def test_summary_sections_and_numbers(self, recorder):
        text = render_summary(recorder)
        assert "== run ==" in text
        assert "rounds: 2" in text
        assert "fleet energy: 105.00 J" in text
        assert "== rounds ==" in text
        assert "== clients ==" in text
        assert "== scheduling ==" in text
        assert "olar" in text

    def test_summary_row_limits(self, recorder):
        text = render_summary(recorder, max_rounds=1)
        assert "(last 1 of 2)" in text

    def test_empty_recorder_renders(self):
        text = render_summary(ObsRecorder())
        assert "events: 0" in text

"""Phase profiler lifecycle: nesting, unwinding, disabled fast path,
exports and the Prometheus fold cursor."""

import json

import pytest

from repro.obs import render_prometheus, render_trace_json
from repro.obs.export_trace import profile_counter_events
from repro.obs.metrics import MetricRegistry
from repro.obs.prof import (
    PROFILER,
    PhaseHandle,
    PhaseProfiler,
    PhaseSample,
    PhaseStats,
    fold_profile,
    profile_payload,
    render_profile,
)


def _profiler():
    return PhaseProfiler(enabled=True)


class TestLifecycle:
    def test_disabled_phase_is_a_cached_noop(self):
        prof = PhaseProfiler()
        handle = prof.phase("anything")
        # the whole point of the disabled fast path: no allocation,
        # same object every call, nothing recorded
        assert prof.phase("other") is handle
        assert isinstance(handle, PhaseHandle)
        with handle:
            pass
        assert prof.stats == {}
        assert prof.samples == []
        assert prof.total_count() == 0

    def test_disabled_profiler_accepts_any_name(self):
        prof = PhaseProfiler()
        with prof.phase("Not Valid!"):  # not validated when off
            pass

    def test_enabled_validates_names(self):
        prof = _profiler()
        with pytest.raises(ValueError, match="phase name"):
            prof.phase("Bad Name")

    def test_nesting_records_paths(self):
        prof = _profiler()
        with prof.phase("round"):
            with prof.phase("dispatch"):
                with prof.phase("fold"):
                    pass
            with prof.phase("fold"):
                pass
        assert set(prof.stats) == {
            ("round",),
            ("round", "dispatch"),
            ("round", "dispatch", "fold"),
            ("round", "fold"),
        }
        paths = [s.path for s in prof.samples]
        # samples are recorded at phase *exit*, innermost first
        assert paths == [
            "round/dispatch/fold",
            "round/dispatch",
            "round/fold",
            "round",
        ]
        assert prof.depth == 0

    def test_exception_unwinds_the_stack(self):
        prof = _profiler()
        with pytest.raises(RuntimeError):
            with prof.phase("outer"):
                with prof.phase("inner"):
                    raise RuntimeError("boom")
        # both phases recorded despite the raise, stack fully popped
        assert prof.depth == 0
        assert set(prof.stats) == {("outer",), ("outer", "inner")}
        with prof.phase("outer"):
            pass
        assert prof.stats[("outer",)].count == 2

    def test_reset_drops_everything(self):
        prof = _profiler()
        with prof.phase("a"):
            pass
        prof.reset()
        assert prof.stats == {}
        assert prof.samples == []
        assert prof.dropped_samples == 0
        assert prof.total_count() == 0

    def test_observer_fires_per_completed_phase(self):
        prof = _profiler()
        seen = []
        prof.observer = lambda path, dur_s: seen.append((path, dur_s))
        with prof.phase("a"):
            with prof.phase("b"):
                pass
        assert [path for path, _ in seen] == ["a/b", "a"]
        assert all(dur >= 0.0 for _, dur in seen)

    def test_sample_cap_keeps_aggregates_complete(self):
        prof = PhaseProfiler(enabled=True, max_samples=3)
        for _ in range(5):
            with prof.phase("a"):
                pass
        assert len(prof.samples) == 3
        assert prof.dropped_samples == 2
        assert prof.stats[("a",)].count == 5
        assert isinstance(prof.samples[0], PhaseSample)

    def test_stats_aggregate(self):
        stats = PhaseStats()
        for dur in (0.2, 0.1, 0.3):
            stats.add(dur)
        assert stats.count == 3
        assert stats.min_s == pytest.approx(0.1)
        assert stats.max_s == pytest.approx(0.3)
        assert stats.mean_s == pytest.approx(0.2)

    def test_module_profiler_starts_disabled(self):
        assert PROFILER.enabled is False


class TestExports:
    def test_payload_is_schema_versioned_and_sorted(self):
        prof = _profiler()
        with prof.phase("b"):
            pass
        with prof.phase("a"):
            pass
        payload = profile_payload(prof)
        assert payload["schema"] == 1
        assert [p["path"] for p in payload["phases"]] == ["a", "b"]
        assert payload["dropped_samples"] == 0
        json.dumps(payload)  # JSON-able end to end

    def test_render_is_deterministic_but_for_durations(self):
        prof = _profiler()
        with prof.phase("round"):
            with prof.phase("fold"):
                pass
        text = render_profile(prof)
        lines = text.splitlines()
        assert lines[0] == "== phase profile (host ms, perf_counter) =="
        assert lines[2].startswith("round")
        assert lines[3].startswith("  fold")  # nested ⇒ indented

    def test_render_empty(self):
        assert "no phases recorded" in render_profile(PhaseProfiler())

    def test_fold_profile_cursor_prevents_double_counting(self):
        prof = _profiler()
        registry = MetricRegistry()
        with prof.phase("a"):
            pass
        cursor = fold_profile(prof, registry, start=0)
        assert cursor == 1
        with prof.phase("a"):
            pass
        cursor = fold_profile(prof, registry, start=cursor)
        assert cursor == 2
        text = render_prometheus(registry)
        assert 'repro_prof_phase_seconds_count{phase="a"} 2' in text


class TestTraceMerge:
    def test_trace_identical_without_profiler(self):
        # profiling off must not change the exporter output by a byte
        base = render_trace_json([], process_name="x")
        assert render_trace_json([], process_name="x", profiler=None) == base
        assert (
            render_trace_json(
                [], process_name="x", profiler=PhaseProfiler()
            )
            == base
        )

    def test_counter_tracks_merge_in(self):
        prof = _profiler()
        with prof.phase("solve"):
            pass
        text = render_trace_json([], process_name="x", profiler=prof)
        events = json.loads(text)["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters and all(e["pid"] == 2 for e in counters)
        assert counters[0]["name"] == "prof/solve"
        assert counters[0]["args"]["ms"] >= 0.0
        assert profile_counter_events(prof)  # standalone export too

"""Prometheus 0.0.4 exposition escaping, pinned against hostile input.

Label values must escape backslash, newline and the double quote;
HELP text (unquoted) must escape backslash and newline. The golden
file pins the exact bytes so an escaping regression cannot slip
through as a "cosmetic" diff.
"""

from pathlib import Path

from repro.obs.export_prom import render_prometheus
from repro.obs.metrics import MetricRegistry, MetricSpec

GOLDEN = Path(__file__).parent / "golden" / "hostile_labels.prom"


def _hostile_registry():
    registry = MetricRegistry()
    counter = registry.counter(
        MetricSpec(
            name="hostile_total",
            kind="counter",
            help='help with "quotes", a \\ backslash\nand a newline',
            labels=("route",),
        )
    )
    counter.inc(route='plain')
    counter.inc(route='back\\slash')
    counter.inc(route='quo"te')
    counter.inc(route="new\nline")
    counter.inc(route="trailing\\")
    gauge = registry.gauge(
        MetricSpec(name="plain_gauge", kind="gauge", help="no escapes")
    )
    gauge.set(1.5)
    return registry


def test_hostile_labels_match_golden():
    text = render_prometheus(_hostile_registry())
    assert text == GOLDEN.read_text(encoding="utf-8")


def test_escaped_values_round_trip_distinctly():
    """Escaping must keep hostile values distinguishable: five label
    values in, five series out, none colliding after the escape."""
    text = render_prometheus(_hostile_registry())
    lines = [
        line
        for line in text.splitlines()
        if line.startswith("hostile_total{")
    ]
    assert len(lines) == 5
    assert len(set(lines)) == 5
    assert 'route="back\\\\slash"' in text
    assert 'route="quo\\"te"' in text
    assert 'route="new\\nline"' in text
    assert 'route="trailing\\\\"' in text
    assert "\nand a newline" not in text  # HELP newline escaped


def test_help_text_escaping():
    text = render_prometheus(_hostile_registry())
    help_lines = [
        line for line in text.splitlines() if line.startswith("# HELP")
    ]
    hostile = [line for line in help_lines if "hostile_total" in line]
    assert hostile == [
        "# HELP hostile_total help with \"quotes\", "
        "a \\\\ backslash\\nand a newline"
    ]

"""Shared fixtures: a hand-built, fully deterministic event stream.

The synthetic stream exercises every span/metric path — a scheduler
invocation, a finished client, a dropped straggler, an aggregation and
two completed rounds — with round numbers chosen to survive replay
byte-for-byte (golden exporter files are rendered from exactly this).
"""

import json

import pytest

from repro.engine.events import (
    ClientDispatched,
    ClientDropped,
    ClientFinished,
    ModelAggregated,
    RoundCompleted,
    ScheduleComputed,
)

SYNTHETIC_EVENTS = (
    ScheduleComputed(
        round_idx=1,
        scheduler="olar",
        shard_counts=(2, 1),
        shard_size=100,
        predicted_makespan_s=10.0,
        predicted_energy_j=120.0,
        time_s=0.0,
        solve_ms=2.5,
    ),
    ClientDispatched(round_idx=1, client_id=0, n_samples=200, time_s=0.0),
    ClientDispatched(round_idx=1, client_id=1, n_samples=100, time_s=0.0),
    ClientFinished(
        round_idx=1,
        client_id=0,
        compute_s=3.0,
        comm_s=1.0,
        total_s=4.0,
        time_s=4.0,
        energy_j=30.0,
        battery_soc=0.95,
    ),
    ClientDropped(round_idx=1, client_id=1, total_s=8.0, time_s=8.0),
    ModelAggregated(
        round_idx=1,
        participants=(0,),
        strategy="sync_fedavg",
        version=1,
        time_s=9.0,
    ),
    RoundCompleted(
        round_idx=1,
        makespan_s=9.0,
        mean_time_s=4.0,
        participant_count=1,
        accuracy=0.5,
        time_s=9.0,
    ),
    ClientDispatched(round_idx=2, client_id=0, n_samples=200, time_s=9.0),
    ClientDispatched(round_idx=2, client_id=1, n_samples=100, time_s=9.0),
    ClientFinished(
        round_idx=2,
        client_id=0,
        compute_s=2.0,
        comm_s=1.0,
        total_s=3.0,
        time_s=12.0,
        energy_j=20.0,
        battery_soc=0.9,
    ),
    ClientFinished(
        round_idx=2,
        client_id=1,
        compute_s=5.0,
        comm_s=1.0,
        total_s=6.0,
        time_s=15.0,
        energy_j=55.0,
        battery_soc=0.8,
    ),
    ModelAggregated(
        round_idx=2,
        participants=(0, 1),
        strategy="sync_fedavg",
        version=2,
        time_s=16.0,
    ),
    RoundCompleted(
        round_idx=2,
        makespan_s=7.0,
        mean_time_s=4.5,
        participant_count=2,
        accuracy=0.75,
        time_s=16.0,
    ),
)


@pytest.fixture
def synthetic_events():
    """The typed synthetic stream."""
    return SYNTHETIC_EVENTS


@pytest.fixture
def synthetic_dicts():
    """The same stream as JSONL-style dicts."""
    return [e.to_dict() for e in SYNTHETIC_EVENTS]


@pytest.fixture
def synthetic_jsonl(tmp_path):
    """The same stream written as a telemetry JSONL file (with the
    schema header a real :class:`JsonlSink` would emit)."""
    path = tmp_path / "synthetic.jsonl"
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            json.dumps({"event": "telemetry_meta", "schema_version": 2})
            + "\n"
        )
        for event in SYNTHETIC_EVENTS:
            fh.write(json.dumps(event.to_dict()) + "\n")
    return path

"""ObsRecorder: live fold vs JSONL replay, energy ledger, summaries."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticConfig, make_dataset
from repro.device.registry import make_device
from repro.engine.telemetry import TELEMETRY_SCHEMA_VERSION, JsonlSink
from repro.federated.simulation import FederatedSimulation, SimulationConfig
from repro.models import logistic
from repro.obs import ObsRecorder, observe_engine
from repro.obs import catalog


@pytest.fixture(scope="module")
def small_dataset():
    return make_dataset(
        SyntheticConfig(
            name="obs-test",
            shape=(1, 8, 8),
            num_classes=10,
            train_size=200,
            test_size=80,
            noise=1.0,
            seed=42,
        )
    )


def make_sim(dataset, n_users=3):
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n_users, rng)
    devices = [make_device("pixel2", jitter=0.0) for _ in range(n_users)]
    model = logistic(input_shape=dataset.input_shape, seed=1)
    return FederatedSimulation(
        dataset, model, users, devices=devices,
        config=SimulationConfig(lr=0.05),
    )


class TestSyntheticFold:
    def test_metrics_from_synthetic_stream(self, synthetic_dicts):
        rec = ObsRecorder().replay(synthetic_dicts)
        m = rec.metrics
        assert m.counter(catalog.ROUNDS_TOTAL).value() == 2
        assert m.counter(catalog.EVENTS_TOTAL).value(
            kind="client_finished"
        ) == 3
        assert m.counter(catalog.CLIENTS_DROPPED_TOTAL).value(
            client=1
        ) == 1
        assert m.gauge(catalog.ACCURACY).value() == pytest.approx(0.75)
        assert m.gauge(catalog.CLOCK_SECONDS).value() == pytest.approx(16.0)
        assert m.counter(catalog.CLIENT_ENERGY_JOULES_TOTAL).value(
            client=0
        ) == pytest.approx(50.0)
        assert m.gauge(catalog.BATTERY_SOC).value(client=1) == (
            pytest.approx(0.8)
        )
        assert m.histogram(catalog.ROUND_MAKESPAN_SECONDS).count() == 2
        assert m.histogram(catalog.SCHEDULE_SOLVE_MS).count(
            scheduler="olar"
        ) == 1

    def test_round_summaries(self, synthetic_dicts):
        rec = ObsRecorder().replay(synthetic_dicts)
        assert [r.round_idx for r in rec.rounds] == [1, 2]
        r1, r2 = rec.rounds
        assert r1.dropped == 1
        assert r1.energy_j == pytest.approx(30.0)
        assert r1.straggler_id == 0  # only client 0 finished
        assert r2.dropped == 0
        assert r2.energy_j == pytest.approx(75.0)
        assert r2.straggler_id == 1
        assert r2.straggler_s == pytest.approx(6.0)

    def test_energy_ledger(self, synthetic_dicts):
        rec = ObsRecorder().replay(synthetic_dicts)
        ledger = rec.energy
        assert ledger.total_energy_j == pytest.approx(105.0)
        by_client = {c.client_id: c for c in ledger.by_client()}
        assert by_client[0].energy_j == pytest.approx(50.0)
        assert by_client[0].rounds == 2
        assert by_client[1].dropped == 1
        assert by_client[1].last_soc == pytest.approx(0.8)
        assert ledger.round_energy == [
            (1, pytest.approx(30.0)),
            (2, pytest.approx(75.0)),
        ]

    def test_event_counts(self, synthetic_dicts):
        rec = ObsRecorder().replay(synthetic_dicts)
        counts = rec.event_counts()
        assert counts["round_completed"] == 2
        assert counts["client_dropped"] == 1
        assert rec.n_events == len(synthetic_dicts)

    def test_trace_disabled_skips_spans(self, synthetic_dicts):
        rec = ObsRecorder(trace=False).replay(synthetic_dicts)
        assert rec.spans is None
        assert rec.finish_spans() == []
        # metrics still fold
        assert rec.metrics.counter(catalog.ROUNDS_TOTAL).value() == 2


class TestLiveVsReplay:
    def test_live_engine_matches_jsonl_replay(
        self, small_dataset, tmp_path
    ):
        """Acceptance: the live recorder and a replay from the JSONL
        the same run streamed agree on every exported number."""
        from repro.obs import render_prometheus

        path = tmp_path / "run.jsonl"
        sim = make_sim(small_dataset)
        sink = JsonlSink(str(path))
        sim.events.subscribe(sink)
        live = ObsRecorder()
        sim.events.subscribe(live)
        sim.run(2, train=False)
        sink.close()

        replayed = ObsRecorder.from_jsonl(path)
        assert replayed.schema_version == TELEMETRY_SCHEMA_VERSION
        assert replayed.corrupt_lines == 0
        assert render_prometheus(replayed.metrics) == render_prometheus(
            live.metrics
        )
        assert len(replayed.rounds) == len(live.rounds) == 2
        assert replayed.energy.total_energy_j == pytest.approx(
            live.energy.total_energy_j
        )

    def test_live_typed_and_dict_folds_agree(self, synthetic_events):
        from repro.obs import render_prometheus

        typed = ObsRecorder()
        for event in synthetic_events:
            typed(event)
        dicts = ObsRecorder().replay(
            [e.to_dict() for e in synthetic_events]
        )
        assert render_prometheus(typed.metrics) == render_prometheus(
            dicts.metrics
        )

    def test_observe_engine_unsubscribes(self, small_dataset):
        sim = make_sim(small_dataset)
        with observe_engine(sim.engine) as recorder:
            sim.run(1, train=False)
        inside = recorder.n_events
        assert inside > 0
        sim.run(1, train=False)
        assert recorder.n_events == inside  # detached after the context


class TestFromJsonlRobustness:
    def test_corrupt_lines_counted(self, synthetic_jsonl):
        with synthetic_jsonl.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "round_comp')  # torn final write
        rec = ObsRecorder.from_jsonl(synthetic_jsonl)
        assert rec.corrupt_lines == 1
        assert rec.metrics.counter(catalog.ROUNDS_TOTAL).value() == 2

    def test_meta_header_not_counted_as_event(self, synthetic_jsonl):
        rec = ObsRecorder.from_jsonl(synthetic_jsonl)
        n_lines = len(synthetic_jsonl.read_text().splitlines())
        assert rec.n_events == n_lines - 1  # minus the meta header

    def test_run_name_defaults_to_file_stem(self, synthetic_jsonl):
        rec = ObsRecorder.from_jsonl(synthetic_jsonl)
        (run,) = rec.finish_spans()
        assert run.name == "synthetic"


class TestMembershipFold:
    """Membership events tally and span, on both fold paths."""

    def test_live_fold_counts_joins_and_losses(self):
        from repro.engine.events import DeviceJoined, DeviceLost

        rec = ObsRecorder(run_name="serve")
        rec(DeviceJoined(device_id="a", client_id=0, time_s=1.0))
        rec(DeviceJoined(device_id="b", client_id=1, time_s=2.0))
        rec(
            DeviceLost(
                device_id="a", client_id=0,
                reason="timeout", time_s=9.0,
            )
        )
        assert rec.device_joins == 2
        assert rec.device_losses == 1
        (run,) = rec.finish_spans()
        membership = [
            s for s in run.children if s.category == "membership"
        ]
        assert len(membership) == 3

    def test_dict_fold_matches_live(self):
        rec = ObsRecorder(run_name="serve")
        rec.add_dict(
            {
                "event": "device_joined", "device_id": "a",
                "client_id": 0, "time_s": 1.0,
            }
        )
        rec.add_dict(
            {
                "event": "device_lost", "device_id": "a",
                "client_id": 0, "reason": "deregistered",
                "time_s": 2.0,
            }
        )
        assert rec.device_joins == 1
        assert rec.device_losses == 1
        events = rec.metrics.counter(catalog.EVENTS_TOTAL)
        assert events.value(kind="device_joined") == 1
        assert events.value(kind="device_lost") == 1

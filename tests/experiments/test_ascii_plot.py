"""ASCII plotting tests."""

import numpy as np
import pytest

from repro.experiments.ascii_plot import line_plot, multi_series


class TestLinePlot:
    def test_contains_extremes(self):
        out = line_plot(np.linspace(0, 10, 100), title="ramp")
        assert "ramp" in out
        assert "10.00" in out
        assert "0.00" in out

    def test_width_resampling(self):
        out = line_plot(np.sin(np.linspace(0, 6, 500)), width=40, height=8)
        body_lines = [l for l in out.splitlines() if "|" in l]
        assert all(len(l.split("|")[1]) == 40 for l in body_lines)

    def test_constant_series(self):
        out = line_plot(np.full(10, 3.0))
        assert "3.00" in out

    def test_empty_series(self):
        assert "(no data)" in line_plot([])

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([1, 2], width=4)


class TestMultiSeries:
    def test_legend_contains_names(self):
        out = multi_series(
            {"temp": np.arange(10.0), "freq": np.ones(10)}
        )
        assert "temp" in out and "freq" in out

    def test_shared_range(self):
        out = multi_series(
            {"a": np.array([0.0, 1.0]), "b": np.array([9.0, 10.0])}
        )
        assert "10.00" in out and "0.00" in out

    def test_empty(self):
        assert "(no data)" in multi_series({})

"""Shape tests for the timing experiments (Fig. 1, Table II, Fig. 4,
Fig. 5, Fig. 7) at reduced scale."""

import numpy as np
import pytest

from repro.experiments import fig1, fig4, fig5, fig7, table2
from repro.experiments.realized import realized_makespan, realized_times
from repro.experiments.testbeds import clear_curve_cache
from repro.models import lenet


@pytest.fixture(autouse=True)
def _fresh_cache():
    yield
    clear_curve_cache()


class TestFig1:
    def test_small_run_shapes(self):
        cfg = fig1.Fig1Config(
            models=("lenet",), devices=("pixel2", "nexus6p"), n_samples=4000
        )
        r = fig1.run(cfg)
        assert len(r.rows) == 2
        by_dev = {row["device"]: row for row in r.rows}
        # Nexus6P throttles on sustained LeNet; Pixel2 does not.
        assert by_dev["nexus6p"]["throttled"]
        assert not by_dev["pixel2"]["throttled"]
        assert (
            by_dev["nexus6p"]["mean_batch_s"]
            > by_dev["pixel2"]["mean_batch_s"]
        )

    def test_freq_temp_series(self):
        trace = fig1.collect_trace("nexus6", "lenet", 1000)
        series = fig1.freq_temp_series(trace, sample_every_s=5.0)
        assert series["time_s"].size == series["freq_ghz"].size
        assert series["temp_c"].min() >= 25.0


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(
            table2.Table2Config(models=("lenet",), sample_counts=(3000,))
        )

    def test_comm_percentages_in_paper_band(self, result):
        for row in result.rows:
            assert 0.05 < row["comm_pct"] < 16.0

    def test_lte_costlier_than_wifi(self, result):
        by = {(r["device"], r["link"]): r["total_s"] for r in result.rows}
        for dev in ("nexus6", "pixel2"):
            assert by[(dev, "lte")] > by[(dev, "wifi")]

    def test_close_to_paper(self, result):
        for row in result.rows:
            if row["link"] == "wifi":
                assert row["total_s"] == pytest.approx(
                    row["paper_s"], rel=0.2
                )


class TestFig4:
    def test_profiling_quality(self):
        r = fig4.run(
            fig4.Fig4Config(
                data_sizes=(500, 1000, 2000), eval_sizes=(750, 1500)
            )
        )
        r2s = [
            row["value"]
            for row in r.rows
            if str(row["quantity"]).startswith("r2")
        ]
        assert all(v > 0.9 for v in r2s)
        err = [
            row["value"]
            for row in r.rows
            if row["quantity"] == "mean_rel_error"
        ][0]
        assert err < 0.2


class TestRealized:
    def test_times_zero_for_idle_users(self):
        model = lenet()
        times = realized_times([0, 1000], ["pixel2", "pixel2"], model)
        assert times[0] == 0.0
        assert times[1] > 0.0

    def test_makespan_is_max(self):
        model = lenet()
        samples = [2000, 1000]
        names = ["nexus6p", "pixel2"]
        times = realized_times(samples, names, model)
        assert realized_makespan(samples, names, model) == pytest.approx(
            times.max()
        )

    def test_empty_schedule_raises(self):
        with pytest.raises(ValueError):
            realized_makespan([0, 0], ["pixel2", "pixel2"], lenet())


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(
            fig5.Fig5Config(
                testbeds=(1, 2),
                datasets=("mnist",),
                models=("lenet",),
                random_repeats=1,
            )
        )

    def test_fed_lbap_wins_every_cell(self, result):
        for row in result.rows:
            best_baseline = min(
                row["proportional"], row["random"], row["equal"]
            )
            assert row["fed-lbap"] <= best_baseline
            assert row["speedup"] >= 1.0

    def test_lbap_improves_with_more_devices(self, result):
        by_tb = {row["testbed"]: row["fed-lbap"] for row in result.rows}
        assert by_tb[2] < by_tb[1]

    def test_straggler_testbed_has_bigger_speedup(self, result):
        by_tb = {row["testbed"]: row["speedup"] for row in result.rows}
        assert by_tb[2] > by_tb[1]

    def test_schedule_iid_dispatch(self):
        sched = fig5.schedule_iid("equal", 1, "mnist", "lenet", 500)
        assert sched.total_shards == 120
        with pytest.raises(KeyError):
            fig5.schedule_iid("magic", 1, "mnist", "lenet", 500)


class TestFig7:
    def test_minavg_beats_baselines_on_straggler_testbed(self):
        r = fig7.run(
            fig7.Fig7Config(
                testbeds=(2,),
                datasets=("mnist",),
                models=("lenet",),
                permutations=1,
                alphas=(100.0, 1000.0),
            )
        )
        row = r.rows[0]
        assert row["fed-minavg"] < row["equal"]
        assert row["speedup"] > 1.0


class TestRealizedOptions:
    def test_link_adds_time(self):
        model = lenet()
        from repro.network import make_link

        base = realized_times([2000], ["pixel2"], model)
        with_link = realized_times(
            [2000], ["pixel2"], model, link=make_link("lte")
        )
        assert with_link[0] > base[0]

    def test_jitter_changes_times_reproducibly(self):
        model = lenet()
        a = realized_times([2000], ["pixel2"], model, jitter=0.05, seed=3)
        b = realized_times([2000], ["pixel2"], model, jitter=0.05, seed=3)
        c = realized_times([2000], ["pixel2"], model, jitter=0.05, seed=4)
        assert a[0] == b[0]
        assert a[0] != c[0]


class TestFig5LinkChoice:
    def test_lte_rounds_slower_than_wifi(self):
        wifi = fig5.run(
            fig5.Fig5Config(
                testbeds=(1,), datasets=("mnist",), models=("lenet",),
                random_repeats=1, link="wifi",
            )
        )
        lte = fig5.run(
            fig5.Fig5Config(
                testbeds=(1,), datasets=("mnist",), models=("lenet",),
                random_repeats=1, link="lte",
            )
        )
        # LTE's slower downlink adds seconds to every scheduler's round
        for col in ("equal", "fed-lbap"):
            assert lte.rows[0][col] > wifi.rows[0][col]

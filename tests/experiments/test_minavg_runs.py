"""Tests for the shared Fed-MinAvg experiment plumbing."""

import numpy as np
import pytest

from repro.experiments.minavg_runs import (
    best_alpha_schedule,
    class_capacities,
    dataset_shape,
    schedule_minavg,
)
from repro.experiments.scenarios import scenario_classes


class TestDatasetShape:
    def test_known_shapes(self):
        assert dataset_shape("mnist") == (1, 28, 28)
        assert dataset_shape("cifar10") == (3, 32, 32)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            dataset_shape("svhn")


class TestClassCapacities:
    def test_proportional_to_class_count(self):
        caps = class_capacities([(0,), (0, 1), (0, 1, 2, 3, 4)], 100)
        assert caps == [10, 20, 50]

    def test_minimum_one(self):
        caps = class_capacities([(0,)], 5)
        assert caps[0] >= 1


class TestScheduleMinavg:
    def test_scenario_schedule_totals(self):
        classes = scenario_classes("S1")
        sched = schedule_minavg(
            1, classes, "cifar10", "lenet", alpha=100.0, beta=0.0,
            shard_size=500,
        )
        assert sched.total_samples == 50_000
        assert sched.algorithm == "fed-minavg"

    def test_user_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            schedule_minavg(
                1, [(0,)], "cifar10", "lenet", alpha=100.0, beta=0.0
            )

    def test_capacities_can_be_disabled(self):
        classes = scenario_classes("S1")
        free = schedule_minavg(
            1, classes, "cifar10", "lenet",
            alpha=0.0, beta=0.0, shard_size=500, use_capacities=False,
        )
        capped = schedule_minavg(
            1, classes, "cifar10", "lenet",
            alpha=0.0, beta=0.0, shard_size=500, use_capacities=True,
        )
        # alpha=0: free mode is pure min-makespan; capacities bind the
        # 2-class pixel2 at 20% of the data
        assert capped.shard_counts[2] <= 20
        assert free.total_shards == capped.total_shards


class TestBestAlpha:
    def test_picks_lowest_makespan(self):
        classes = scenario_classes("S1")
        sched, val = best_alpha_schedule(
            1, classes, "cifar10", "lenet",
            alphas=(100.0, 5000.0), beta=0.0, shard_size=500,
        )
        # alpha=100 spreads more -> lower profiled bottleneck
        assert sched.meta["alpha"] == 100.0
        assert val > 0

    def test_custom_scoring_function(self):
        classes = scenario_classes("S1")

        def prefer_concentration(schedule):
            # adversarial score: reward the largest single allocation
            return -float(schedule.shard_counts.max())

        sched, _ = best_alpha_schedule(
            1, classes, "cifar10", "lenet",
            alphas=(100.0, 5000.0), beta=0.0, shard_size=500,
            makespan_fn=prefer_concentration,
        )
        assert sched.meta["alpha"] == 5000.0


class TestHistoryCsv:
    def test_history_export(self, tiny_dataset, tmp_path):
        import csv

        from repro.data import iid_partition
        from repro.federated import FederatedSimulation, SimulationConfig
        from repro.models import logistic

        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        model = logistic(input_shape=tiny_dataset.input_shape, seed=1)
        sim = FederatedSimulation(
            tiny_dataset, model, users,
            config=SimulationConfig(lr=0.05, eval_every=2),
        )
        sim.run(4)
        path = tmp_path / "history.csv"
        sim.history.to_csv(path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "round"
        assert len(rows) == 5
        assert rows[2][4] != ""  # eval round has accuracy
        assert rows[1][4] == ""  # non-eval round blank

class TestTrainPartitionDirect:
    def test_uses_requested_model(self, tiny_dataset):
        from repro.data import iid_partition
        from repro.experiments.flruns import FLRunConfig, train_partition

        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        acc = train_partition(
            tiny_dataset, users, FLRunConfig(model="mlp", rounds=3, lr=0.02)
        )
        assert 0.0 <= acc <= 1.0

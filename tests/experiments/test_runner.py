"""ExperimentResult / table formatting tests."""

import pytest

from repro.experiments.runner import ExperimentResult, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(
            ["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.125}]
        )
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert len(lines) == 4

    def test_missing_cells_blank(self):
        out = format_table(["a", "b"], [{"a": 1}])
        assert out.splitlines()[2].strip().startswith("1")


class TestExperimentResult:
    def make(self):
        r = ExperimentResult(
            name="t", description="d", columns=["x", "y"]
        )
        r.add_row(x=1, y=2.0)
        r.add_row(x=3, y=4.0)
        return r

    def test_column_extraction(self):
        r = self.make()
        assert r.column("x") == [1, 3]
        with pytest.raises(KeyError):
            r.column("z")

    def test_to_table_includes_notes(self):
        r = self.make()
        r.add_note("a note")
        text = r.to_table()
        assert "== t: d" in text
        assert "note: a note" in text


class TestFormatting:
    def test_large_and_small_floats(self):
        from repro.experiments.runner import _fmt

        assert _fmt(12345.6) == "12346"
        assert _fmt(12.345) == "12.35"
        assert _fmt(0.12345) == "0.1235"
        assert _fmt(0) == "0"
        assert _fmt(0.0) == "0"
        assert _fmt("text") == "text"

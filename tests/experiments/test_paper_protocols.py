"""The paper-scale protocol constructors must build valid configs.

Running them takes hours; constructing and sanity-checking them is
cheap and keeps the full protocol documented in code.
"""

import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig5,
    fig6,
    fig7,
    table3,
    table4,
    table5,
)


class TestPaperProtocols:
    def test_fig2_protocol(self):
        cfg = fig2.Fig2Config.paper()
        assert cfg.n_users == 20  # "partition the datasets among 20 users"
        assert cfg.repeats == 10  # "averaged over 10 experimental runs"
        assert set(cfg.datasets) == {"mnist", "cifar10"}

    def test_fig3_protocol(self):
        cfg = fig3.Fig3Config.paper()
        assert cfg.nclass_values == (2, 3, 4, 5, 6, 7, 8)  # "n from 2-8"
        assert cfg.dataset == "cifar10"
        assert cfg.fl.rounds == 50  # "50 epoches for CIFAR10"

    def test_fig5_protocol(self):
        cfg = fig5.Fig5Config.paper()
        assert cfg.shard_size == 100  # "e.g. 100 samples/shard"
        assert cfg.random_repeats == 10

    def test_fig6_protocol(self):
        cfg = fig6.Fig6Config.paper()
        assert min(cfg.alphas) == 100.0 and max(cfg.alphas) == 5000.0
        assert cfg.betas == (0.0, 2.0)  # "set beta = 2"

    def test_fig7_protocol(self):
        cfg = fig7.Fig7Config.paper()
        assert cfg.permutations == 10
        assert cfg.shard_size == 100

    def test_table_protocols(self):
        assert table3.Table3Config.paper().repeats == 10
        assert table4.Table4Config.paper().shard_size == 100
        assert table5.Table5Config.paper().repeats == 10

"""Shape tests for the accuracy experiments (Fig. 2, Fig. 3, Fig. 6,
Tables III/V) at reduced scale."""

import numpy as np
import pytest

from repro.experiments import fig2, fig3, fig6, table3, table4, table5
from repro.experiments.flruns import (
    FLRunConfig,
    accuracy_of_schedule,
    scale_counts,
)

FAST_FL = FLRunConfig(rounds=5)


class TestScaleCounts:
    def test_preserves_total_and_shape(self):
        counts = [100, 50, 0, 25]
        scaled = scale_counts(counts, 20)
        assert scaled.sum() == 20
        assert scaled[2] == 0
        assert scaled[0] > scaled[1] > scaled[3]

    def test_small_participants_keep_one_shard(self):
        scaled = scale_counts([1000, 1], 10)
        assert scaled[1] >= 1
        assert scaled.sum() == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_counts([0, 0], 10)
        with pytest.raises(ValueError):
            scale_counts([1, 1], 0)


class TestFig2:
    def test_imbalance_is_accuracy_neutral(self):
        cfg = fig2.Fig2Config(
            datasets=("mnist_mini",),
            ratios=(0.0, 0.8),
            n_users=8,
            fl=FAST_FL,
        )
        r = fig2.run(cfg)
        fed = [
            row["accuracy"] for row in r.rows if row["setting"] == "federated"
        ]
        # flat within a few points
        assert abs(fed[0] - fed[1]) < 0.08
        central = [
            row["accuracy"]
            for row in r.rows
            if row["setting"] == "centralized"
        ][0]
        assert min(fed) > central - 0.1


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(
            fig3.Fig3Config(
                dataset="mnist_mini",
                nclass_values=(2, 8),
                repeats=2,
                fl=FAST_FL,
            )
        )

    def test_more_classes_better(self, result):
        by = {row["setting"]: row["accuracy"] for row in result.rows}
        assert by["8-class"] > by["2-class"] + 0.05

    def test_missing_is_worst(self, result):
        by = {row["setting"]: row["accuracy"] for row in result.rows}
        assert by["missing"] < by["separate"]
        assert by["missing"] < by["merge"]


class TestTable3:
    def test_lbap_accuracy_neutral_under_iid(self):
        cfg = table3.Table3Config(
            datasets=("mnist",),
            models=("lenet",),
            testbeds=(1, 2),
            fl=FLRunConfig(rounds=6),
        )
        r = table3.run(cfg)
        for row in r.rows:
            assert row["lbap_loss_vs_best"] < 0.05

    def test_surrogate_fl_mapping(self):
        fl = table3.surrogate_fl("vgg6", FLRunConfig(rounds=3))
        assert fl.model == "mlp"
        assert fl.lr == 0.02
        fl = table3.surrogate_fl("unknown", FLRunConfig(rounds=3))
        assert fl.model == "logistic"


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run(table4.Table4Config(shard_size=250))

    def test_allocations_sum_to_dataset(self, result):
        for scen in ("S1", "S2", "S3"):
            rows = [r for r in result.rows if r["scenario"] == scen]
            for col in ("p1", "p2", "p3", "p4"):
                total = sum(r[col] for r in rows)
                assert total == pytest.approx(50.0, rel=0.01)  # 50K samples

    def test_high_alpha_zeroes_skewed_devices(self, result):
        s2 = {r["device"]: r for r in result.rows if r["scenario"] == "S2"}
        one_class = s2["nexus6p(3)"]  # classes (0,)
        assert one_class["p2"] == 0.0
        assert one_class["p4"] == 0.0

    def test_beta_includes_unique_class_outlier(self, result):
        s1 = {r["device"]: r for r in result.rows if r["scenario"] == "S1"}
        pixel2 = s1["pixel2(2)"]
        # beta=2 at alpha=100 (p3) allocates where beta=0 (p1..p2) may not
        assert pixel2["p3"] > 0.0
        assert pixel2["p3"] >= pixel2["p2"]


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(
            fig6.Fig6Config(
                scenarios=("S1",),
                alphas=(100.0, 5000.0),
                betas=(0.0, 2.0),
                fl=FAST_FL,
            )
        )

    def test_time_rises_with_alpha_at_beta0(self, result):
        rows = [r for r in result.rows if r["beta"] == 0.0]
        by_alpha = {r["alpha"]: r["makespan_s"] for r in rows}
        assert by_alpha[5000.0] >= by_alpha[100.0]

    def test_beta_improves_coverage_at_low_alpha(self, result):
        rows = {
            (r["alpha"], r["beta"]): r["coverage"] for r in result.rows
        }
        assert rows[(100.0, 2.0)] >= rows[(100.0, 0.0)]
        assert rows[(100.0, 2.0)] == pytest.approx(1.0)

    def test_beta_lifts_accuracy_at_low_alpha(self, result):
        rows = {
            (r["alpha"], r["beta"]): r["accuracy"] for r in result.rows
        }
        assert rows[(100.0, 2.0)] > rows[(100.0, 0.0)] - 0.02


class TestTable5:
    def test_minavg_near_best_baseline(self):
        cfg = table5.Table5Config(
            datasets=("mnist",),
            models=("lenet",),
            testbeds=(2,),
            alphas=(100.0, 1000.0),
            fl=FLRunConfig(rounds=6),
        )
        r = table5.run(cfg)
        assert r.rows[0]["minavg_loss_vs_best"] < 0.08


class TestAccuracyOfSchedule:
    def test_zero_coverage_hurts(self):
        classes = [(0, 1, 2, 3, 4), (5, 6, 7, 8, 9)]
        full = accuracy_of_schedule(
            "mnist_mini", [10, 10], classes, FAST_FL
        )
        half = accuracy_of_schedule(
            "mnist_mini", [20, 0], classes, FAST_FL
        )
        assert full > half + 0.2


class TestFig6TimeOnly:
    def test_with_accuracy_false_skips_training(self):
        cfg = fig6.Fig6Config(
            scenarios=("S2",),
            alphas=(100.0,),
            betas=(0.0,),
            with_accuracy=False,
        )
        r = fig6.run(cfg)
        assert len(r.rows) == 1
        import math

        assert math.isnan(r.rows[0]["accuracy"])
        assert r.rows[0]["makespan_s"] > 0

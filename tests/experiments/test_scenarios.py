"""Scenario-table tests (Table IV class distributions)."""

import pytest

from repro.experiments.scenarios import (
    SCENARIOS,
    scenario_classes,
    scenario_testbed,
)
from repro.experiments.testbeds import testbed_names as get_testbed_names


class TestScenarios:
    def test_sizes_match_testbeds(self):
        for name in SCENARIOS:
            classes = scenario_classes(name)
            assert len(classes) == len(
                get_testbed_names(scenario_testbed(name))
            )

    def test_s1_unique_class_seven(self):
        """In S(I) class 7 belongs only to Pixel2 — the paper's
        canonical unique-class outlier."""
        classes = scenario_classes("S1")
        holders = [i for i, cs in enumerate(classes) if 7 in cs]
        assert holders == [2]

    def test_s2_unique_class_four(self):
        classes = scenario_classes("S2")
        holders = [i for i, cs in enumerate(classes) if 4 in cs]
        assert holders == [4]  # Mate10(a)

    def test_s3_full_coverage(self):
        classes = scenario_classes("S3")
        covered = set(c for cs in classes for c in cs)
        assert covered == set(range(10))

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            scenario_classes("S4")
        with pytest.raises(KeyError):
            scenario_testbed("S4")

    def test_class_ids_valid(self):
        for name in SCENARIOS:
            for cs in scenario_classes(name):
                assert cs, "every user holds at least one class"
                assert all(0 <= c < 10 for c in cs)

"""Determinism tests: identical configs must yield identical rows.

Every reported number flows from explicit seeds and a virtual clock, so
re-running an experiment must reproduce it bit for bit — the property
that makes EXPERIMENTS.md auditable.
"""

import numpy as np
import pytest

from repro.experiments import fig2, fig5, table4
from repro.experiments.flruns import FLRunConfig
from repro.experiments.testbeds import clear_curve_cache


def rows_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for ra, rb in zip(a.rows, b.rows):
        assert ra.keys() == rb.keys()
        for k in ra:
            va, vb = ra[k], rb[k]
            if isinstance(va, float):
                assert va == pytest.approx(vb, abs=1e-12), k
            else:
                assert va == vb, k


class TestDeterminism:
    def test_table4_deterministic(self):
        cfg = table4.Table4Config(scenarios=("S1",), shard_size=500)
        a = table4.run(cfg)
        clear_curve_cache()  # even across a cold profile cache
        b = table4.run(cfg)
        rows_equal(a, b)

    def test_fig5_deterministic(self):
        cfg = fig5.Fig5Config(
            testbeds=(1,),
            datasets=("mnist",),
            models=("lenet",),
            random_repeats=1,
        )
        a = fig5.run(cfg)
        b = fig5.run(cfg)
        rows_equal(a, b)

    def test_fig2_training_deterministic(self):
        cfg = fig2.Fig2Config(
            datasets=("mnist_mini",),
            ratios=(0.5,),
            n_users=5,
            fl=FLRunConfig(rounds=3),
        )
        a = fig2.run(cfg)
        b = fig2.run(cfg)
        rows_equal(a, b)

    def test_different_seeds_differ(self):
        base = fig2.Fig2Config(
            datasets=("mnist_mini",),
            ratios=(0.7,),
            n_users=5,
            fl=FLRunConfig(rounds=3),
        )
        a = fig2.run(base)
        b = fig2.run(
            fig2.Fig2Config(
                datasets=("mnist_mini",),
                ratios=(0.7,),
                n_users=5,
                fl=FLRunConfig(rounds=3),
                seed=base.seed + 1,
            )
        )
        fed_a = [
            r["imbalance_ratio"]
            for r in a.rows
            if r["setting"] == "federated"
        ]
        fed_b = [
            r["imbalance_ratio"]
            for r in b.rows
            if r["setting"] == "federated"
        ]
        assert fed_a != fed_b  # different draws of the size vector

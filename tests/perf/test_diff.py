"""Regression-verdict semantics of ``repro bench diff``."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    SUITE_SCHEMA,
    Verdict,
    diff_payloads,
    format_diff,
    has_regression,
    load_payload,
)


def _payload(metrics):
    return {
        "schema": SUITE_SCHEMA,
        "git_sha": "deadbeef",
        "quick": False,
        "metrics": metrics,
    }


def _metric(value, gated=True, higher_is_better=False, **extra):
    doc = {
        "value": value,
        "unit": "ms",
        "higher_is_better": higher_is_better,
        "gated": gated,
    }
    doc.update(extra)
    return doc


def _by_name(verdicts):
    return {v.name: v for v in verdicts}


class TestVerdicts:
    def test_clean_diff(self):
        old = _payload({"m": _metric(10.0)})
        verdicts = diff_payloads(old, old)
        assert [v.status for v in verdicts] == ["ok"]
        assert not has_regression(verdicts)

    def test_gated_regression_beyond_threshold(self):
        old = _payload({"m": _metric(10.0)})
        new = _payload({"m": _metric(13.0)})
        (verdict,) = diff_payloads(old, new, threshold_pct=25.0)
        # 13 vs 10, lower-is-better: +30% worse, over the 25% gate
        assert verdict.status == "regression"
        assert verdict.worse_pct == pytest.approx(30.0)
        assert "threshold" in verdict.detail

    def test_threshold_boundary(self):
        old = _payload({"m": _metric(100.0)})
        exactly = _payload({"m": _metric(125.0)})
        beyond = _payload({"m": _metric(125.1)})
        (at,) = diff_payloads(old, exactly)
        (over,) = diff_payloads(old, beyond)
        assert at.status == "ok"  # threshold is strict
        assert over.status == "regression"
        assert has_regression([over])

    def test_higher_is_better_direction(self):
        old = _payload(
            {"rps": _metric(100.0, higher_is_better=True)}
        )
        new = _payload(
            {"rps": _metric(60.0, higher_is_better=True)}
        )
        (verdict,) = diff_payloads(old, new)
        assert verdict.status == "regression"
        assert verdict.worse_pct == pytest.approx(40.0)

    def test_improvement_is_reported(self):
        old = _payload({"m": _metric(100.0, gated=False)})
        new = _payload({"m": _metric(50.0, gated=False)})
        (verdict,) = diff_payloads(old, new)
        assert verdict.status == "improved"
        assert not has_regression([verdict])

    def test_ungated_regression_never_fails_the_gate(self):
        old = _payload({"m": _metric(10.0, gated=False)})
        new = _payload({"m": _metric(100.0, gated=False)})
        (verdict,) = diff_payloads(old, new)
        assert verdict.status == "ok"
        assert verdict.worse_pct == pytest.approx(900.0)

    def test_abs_max_breach_regresses_regardless_of_baseline(self):
        old = _payload({"m": _metric(0.9, abs_max=1.0)})
        new = _payload({"m": _metric(1.1, abs_max=1.0)})
        (verdict,) = diff_payloads(old, new)
        assert verdict.status == "regression"
        assert "ceiling" in verdict.detail

    def test_gated_metric_missing_from_new_is_a_regression(self):
        old = _payload({"m": _metric(10.0)})
        new = _payload({})
        (verdict,) = diff_payloads(old, new)
        assert verdict.status == "regression"
        assert verdict.new_value is None

    def test_ungated_missing_and_new_metrics(self):
        old = _payload({"gone": _metric(1.0, gated=False)})
        new = _payload({"fresh": _metric(2.0, gated=False)})
        by_name = _by_name(diff_payloads(old, new))
        assert by_name["gone"].status == "missing"
        assert by_name["fresh"].status == "new"
        assert not has_regression(list(by_name.values()))

    def test_format_diff_mentions_every_metric(self):
        old = _payload(
            {"a": _metric(1.0), "b": _metric(2.0, gated=False)}
        )
        text = format_diff(diff_payloads(old, old))
        assert "a" in text and "b" in text
        assert "gate clean" in text

    def test_verdict_is_a_frozen_record(self):
        verdict = Verdict(
            name="m",
            status="ok",
            gated=True,
            old_value=1.0,
            new_value=1.0,
            worse_pct=0.0,
        )
        with pytest.raises(AttributeError):
            verdict.status = "regression"


class TestLoadPayload:
    def test_rejects_missing_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_payload(path)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_payload(path)

    def test_rejects_unreadable(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_payload(tmp_path / "absent.json")


class TestCli:
    """The acceptance contract: ``repro bench diff`` exits non-zero
    on an injected >25% regression in a gated metric."""

    def _write(self, path, metrics):
        path.write_text(json.dumps(_payload(metrics)))

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        self._write(old, {"m": _metric(10.0)})
        assert main(["bench", "diff", str(old), str(old)]) == 0
        assert "gate clean" in capsys.readouterr().out

    def test_exit_one_on_injected_regression(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, {"m": _metric(10.0)})
        self._write(new, {"m": _metric(14.0)})  # +40% > 25%
        assert main(["bench", "diff", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_malformed_payload(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        bad = tmp_path / "bad.json"
        self._write(old, {"m": _metric(10.0)})
        bad.write_text("not json")
        assert main(["bench", "diff", str(old), str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, {"m": _metric(10.0)})
        self._write(new, {"m": _metric(11.0)})  # +10%
        assert main(["bench", "diff", str(old), str(new)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "bench", "diff", str(old), str(new),
                    "--threshold", "5",
                ]
            )
            == 1
        )

"""Suite payload shape and the lighter suite sections.

The full ``bench_suite`` run is exercised by the CI smoke job
(``repro bench suite --quick``); here we pin the payload contract and
run only the cheap sections so the tier-1 test pass stays fast.
"""

import json

import pytest

from repro.perf import (
    SUITE_SCHEMA,
    MetricResult,
    format_suite,
    load_payload,
    suite_payload,
    write_suite,
)
from repro.perf.suite import _serve_metric, _solve_metrics

RESULTS = [
    MetricResult(
        name="alpha_ms",
        value=1.25,
        unit="ms",
        higher_is_better=False,
        gated=False,
        note="a note",
    ),
    MetricResult(
        name="beta_pct",
        value=0.5,
        unit="%",
        higher_is_better=False,
        gated=True,
        abs_max=1.0,
    ),
]


class TestPayload:
    def test_schema_and_provenance(self):
        payload = suite_payload(RESULTS, quick=True, sha="abc123")
        assert payload["schema"] == SUITE_SCHEMA
        assert payload["git_sha"] == "abc123"
        assert payload["quick"] is True
        metrics = payload["metrics"]
        assert set(metrics) == {"alpha_ms", "beta_pct"}
        assert metrics["alpha_ms"]["note"] == "a note"
        assert "abs_max" not in metrics["alpha_ms"]
        assert metrics["beta_pct"]["abs_max"] == 1.0
        assert metrics["beta_pct"]["gated"] is True

    def test_write_round_trips_through_load(self, tmp_path):
        path = tmp_path / "BENCH_core.json"
        write_suite(RESULTS, path, quick=False, sha="abc123")
        loaded = load_payload(path)
        assert loaded == suite_payload(RESULTS, quick=False, sha="abc123")
        # committed artifact: stable key order, trailing newline
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            loaded, indent=2, sort_keys=True
        ) + "\n"

    def test_format_marks_gated_metrics(self):
        text = format_suite(RESULTS, quick=True)
        assert "== bench suite (quick) ==" in text
        assert "gated" in text
        assert "alpha_ms" in text and "beta_pct" in text


class TestSections:
    def test_solve_metrics_shape(self):
        results = {r.name: r for r in _solve_metrics(quick=True, seed=0)}
        assert set(results) == {
            "solve_ms_proportional_c128",
            "solve_ms_proportional_c512",
            "solve_scaling_proportional",
            "solve_ms_fed_lbap_c128",
            "solve_ms_fed_lbap_c512",
            "solve_scaling_fed_lbap",
        }
        # the only gated solve metric is the fed_lbap scaling ratio
        gated = [n for n, r in results.items() if r.gated]
        assert gated == ["solve_scaling_fed_lbap"]
        scaling = results["solve_scaling_fed_lbap"]
        assert scaling.unit == "x"
        assert scaling.value > 0
        assert results["solve_ms_fed_lbap_c512"].value > 0

    def test_serve_round_trip_runs_deterministic_workload(self):
        result = _serve_metric(quick=True, seed=0)
        assert result.name == "serve_round_trip_ms"
        assert result.value > 0
        assert not result.gated

    def test_metric_result_is_frozen(self):
        with pytest.raises(AttributeError):
            RESULTS[0].value = 2.0

"""Cost-matrix construction tests."""

import numpy as np
import pytest

from repro.core.cost import (
    build_cost_matrix,
    comm_costs_for,
    enforce_property1,
    oracle_curves,
)
from repro.device.registry import make_device
from repro.models import lenet_mini
from repro.network.link import make_link


class TestProperty1:
    def test_enforce_makes_rows_monotone(self):
        c = np.array([[3.0, 2.0, 5.0], [1.0, 1.0, 0.5]])
        out = enforce_property1(c)
        assert (np.diff(out, axis=1) >= 0).all()
        np.testing.assert_allclose(out[0], [3.0, 3.0, 5.0])

    def test_monotone_input_unchanged(self):
        c = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(enforce_property1(c), c)


class TestBuildCostMatrix:
    def test_shape_and_values(self):
        curves = [lambda x: 0.01 * x, lambda x: 0.02 * x]
        c = build_cost_matrix(curves, n_shards=4, shard_size=100)
        assert c.shape == (2, 4)
        np.testing.assert_allclose(c[0], [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(c[1], [2.0, 4.0, 6.0, 8.0])

    def test_comm_costs_added_per_row(self):
        curves = [lambda x: 0.01 * x]
        c = build_cost_matrix(curves, 3, 100, comm_costs=[10.0])
        np.testing.assert_allclose(c[0], [11.0, 12.0, 13.0])

    def test_rows_monotone_even_with_noisy_curves(self):
        noisy = [lambda x: 1.0 + 0.01 * x * (1 if x != 200 else 0.1)]
        c = build_cost_matrix(noisy, 4, 100)
        assert (np.diff(c[0]) >= 0).all()

    def test_negative_cost_rejected(self):
        curves = [lambda x: -1.0]
        with pytest.raises(ValueError):
            build_cost_matrix(curves, 2, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_cost_matrix([], 2, 100)
        with pytest.raises(ValueError):
            build_cost_matrix([lambda x: x], 0, 100)
        with pytest.raises(ValueError):
            build_cost_matrix([lambda x: x], 2, 100, comm_costs=[1.0, 2.0])


class TestOracleCurves:
    def test_oracle_matches_direct_simulation(self):
        model = lenet_mini()
        device = make_device("pixel2", jitter=0.0)
        curve = oracle_curves([device], model)[0]
        t = curve(1000)
        assert t > 0
        # same query twice: deterministic (cold start each time)
        assert curve(1000) == pytest.approx(t)

    def test_oracle_zero_samples(self):
        model = lenet_mini()
        device = make_device("pixel2", jitter=0.0)
        curve = oracle_curves([device], model)[0]
        assert curve(0) == 0.0


class TestCommCostsFor:
    def test_per_link_costs(self):
        model = lenet_mini()
        links = [make_link("wifi"), make_link("lte")]
        costs = comm_costs_for(model, links)
        assert costs.shape == (2,)
        assert (costs > 0).all()

"""Baseline scheduler tests."""

import numpy as np
import pytest

from repro.core.baselines import (
    equal_schedule,
    mean_cpu_freq_per_core,
    proportional_schedule,
    random_schedule,
)
from repro.device.registry import build_spec


class TestEqual:
    def test_even_split(self):
        s = equal_schedule(4, 20, 100)
        np.testing.assert_array_equal(s.shard_counts, [5, 5, 5, 5])

    def test_remainder(self):
        s = equal_schedule(3, 10, 100)
        assert s.total_shards == 10
        assert s.shard_counts.max() - s.shard_counts.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            equal_schedule(0, 10, 100)


class TestRandom:
    def test_total_preserved(self, rng):
        s = random_schedule(5, 33, 100, rng)
        assert s.total_shards == 33

    def test_deterministic_per_seed(self):
        a = random_schedule(5, 50, 100, np.random.default_rng(3))
        b = random_schedule(5, 50, 100, np.random.default_rng(3))
        np.testing.assert_array_equal(a.shard_counts, b.shard_counts)

    def test_spreads_on_average(self):
        totals = np.zeros(4)
        for seed in range(50):
            s = random_schedule(4, 40, 100, np.random.default_rng(seed))
            totals += s.shard_counts
        np.testing.assert_allclose(totals / 50, 10.0, atol=1.5)


class TestProportional:
    def test_mean_cpu_freq(self):
        n6 = build_spec("nexus6")
        assert mean_cpu_freq_per_core(n6) == pytest.approx(2.7)
        n6p = build_spec("nexus6p")
        assert mean_cpu_freq_per_core(n6p) == pytest.approx(
            (4 * 1.55 + 4 * 2.0) / 8
        )

    def test_proportional_to_frequency(self):
        specs = [build_spec("nexus6"), build_spec("nexus6p")]
        s = proportional_schedule(specs, 100, 100)
        assert s.total_shards == 100
        # 2.7 GHz/core vs 1.775 GHz/core -> nexus6 gets more
        assert s.shard_counts[0] > s.shard_counts[1]

    def test_explicit_weights(self):
        s = proportional_schedule([], 10, 100, weights=[1.0, 3.0])
        assert s.total_shards == 10
        assert s.shard_counts[1] >= 3 * s.shard_counts[0] - 1

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            proportional_schedule([], 10, 100, weights=[1.0, -1.0])
        with pytest.raises(ValueError):
            proportional_schedule([], 10, 100, weights=[])

    def test_algorithm_labels(self, rng):
        assert equal_schedule(2, 4, 1).algorithm == "equal"
        assert random_schedule(2, 4, 1, rng).algorithm == "random"
        assert (
            proportional_schedule([], 4, 1, weights=[1, 1]).algorithm
            == "proportional"
        )

"""Privacy-preserving Fed-MinAvg tests."""

import numpy as np
import pytest

from repro.core.minavg import fed_minavg
from repro.core.privacy import fed_minavg_private


def curves(slopes):
    return [lambda x, s=s: s * x for s in slopes]


def reported(classes, alpha, k=10):
    """What each user would report: alpha * K / |U_j|."""
    return [alpha * k / len(cs) for cs in classes]


class TestPrivateMode:
    def test_beta_zero_equals_full_algorithm(self):
        """Without the discount, scalar reports carry all the
        information Algorithm 2 uses — the schedules must coincide."""
        slopes = (0.013, 0.016, 0.009)
        classes = [(0, 1, 2, 3, 4, 5, 6, 9), (2, 3, 4, 5, 6, 8), (7, 8)]
        alpha = 150.0
        full = fed_minavg(
            curves(slopes), classes, 100, 100, 10, alpha=alpha, beta=0.0
        )
        private = fed_minavg_private(
            curves(slopes),
            reported(classes, alpha),
            total_shards=100,
            shard_size=100,
        )
        np.testing.assert_array_equal(
            full.shard_counts, private.shard_counts
        )

    def test_private_mode_never_sees_classes(self):
        """The API accepts no class information — construction alone
        demonstrates the privacy property."""
        sched = fed_minavg_private(
            curves((0.01, 0.02)),
            [100.0, 50.0],
            total_shards=10,
            shard_size=100,
        )
        assert sched.meta["private"] is True
        assert sched.total_shards == 10

    def test_discount_flags_recover_beta_behaviour(self):
        """With a truthful one-bit flag channel, the unique-class
        outlier gets subsidised just as in the full algorithm."""
        slopes = (0.013, 0.016, 0.009)
        classes = [(0, 1, 2, 3, 4, 5, 6, 9), (2, 3, 4, 5, 6, 8), (7, 8)]
        alpha, beta = 100.0, 2.0

        # User 2's truthful flag: "class 7 is still uncovered" — which
        # stays true as long as nobody else holds it (always, here).
        def flags(j, d_u):
            return j == 2

        without = fed_minavg_private(
            curves(slopes), reported(classes, alpha), 200, 100
        )
        with_flags = fed_minavg_private(
            curves(slopes),
            reported(classes, alpha),
            200,
            100,
            beta=beta,
            discount_flags=flags,
        )
        assert with_flags.shard_counts[2] > without.shard_counts[2]

    def test_capacities_and_comm(self):
        sched = fed_minavg_private(
            curves((0.01, 0.5)),
            [10.0, 10.0],
            total_shards=10,
            shard_size=100,
            capacities=[6, 10],
            comm_costs=[0.0, 100.0],
        )
        assert sched.shard_counts[0] == 6  # capped, rest spills over
        assert sched.total_shards == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            fed_minavg_private([], [], 10, 100)
        with pytest.raises(ValueError):
            fed_minavg_private(curves((0.01,)), [1.0, 2.0], 10, 100)
        with pytest.raises(ValueError):
            fed_minavg_private(
                curves((0.01,)), [1.0], 10, 100, capacities=[5]
            )

"""Accuracy-cost (Eq. 6) tests across all discount semantics."""

import pytest

from repro.core.accuracy_cost import AccuracyCostTracker, accuracy_cost


class TestAccuracyCostFunction:
    def test_inverse_in_class_count(self):
        a = accuracy_cost((0,), {0}, 10, alpha=1.0, beta=0.0,
                          scheduled_shards=0)
        b = accuracy_cost((0, 1), {0}, 10, alpha=1.0, beta=0.0,
                          scheduled_shards=0)
        assert a == pytest.approx(10.0)
        assert b == pytest.approx(5.0)

    def test_strict_condition_blocks_discount(self):
        # user shares class 0 with covered set: no deduction
        v = accuracy_cost((0, 7), {0}, 10, alpha=1.0, beta=2.0,
                          scheduled_shards=50)
        assert v == pytest.approx(10.0 / 2)

    def test_discount_applies_when_disjoint(self):
        v = accuracy_cost((7, 8), {0, 1}, 10, alpha=1.0, beta=2.0,
                          scheduled_shards=50)
        assert v == pytest.approx(5.0 - 100.0)

    def test_forced_discount_flag(self):
        v = accuracy_cost((0,), {0}, 10, alpha=1.0, beta=1.0,
                          scheduled_shards=10, discount=True)
        assert v == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_cost((), set(), 10, 1.0, 0.0, 0)
        with pytest.raises(ValueError):
            accuracy_cost((0,), set(), 0, 1.0, 0.0, 0)
        with pytest.raises(ValueError):
            accuracy_cost((0,), set(), 10, -1.0, 0.0, 0)
        with pytest.raises(ValueError):
            accuracy_cost((0,), set(), 10, 1.0, 0.0, -1)


class TestTrackerDisjoint:
    def make(self, beta=2.0, semantics="disjoint"):
        return AccuracyCostTracker(
            [(0, 1, 2), (2, 3), (7, 8)],
            num_classes=10,
            alpha=30.0,
            beta=beta,
            semantics=semantics,
        )

    def test_initial_costs_are_bases(self):
        tr = self.make()
        assert tr.scaled_cost(0) == pytest.approx(100.0)
        assert tr.scaled_cost(1) == pytest.approx(150.0)
        assert tr.scaled_cost(2) == pytest.approx(150.0)

    def test_disjoint_shards_accumulate_only_for_disjoint_users(self):
        tr = self.make()
        tr.record_assignment(0, 5)  # classes {0,1,2}
        # user 1 shares class 2 -> no discount; user 2 disjoint -> -10
        assert tr.scaled_cost(1) == pytest.approx(150.0)
        assert tr.scaled_cost(2) == pytest.approx(150.0 - 2.0 * 5)

    def test_own_shards_do_not_discount_self(self):
        tr = self.make()
        tr.record_assignment(2, 4)
        assert tr.scaled_cost(2) == pytest.approx(150.0)

    def test_coverage_fraction(self):
        tr = self.make()
        assert tr.coverage_fraction() == 0.0
        tr.record_assignment(0, 1)
        assert tr.coverage_fraction() == pytest.approx(0.3)
        tr.record_assignment(2, 1)
        assert tr.coverage_fraction() == pytest.approx(0.5)

    def test_brings_new_classes(self):
        tr = self.make()
        tr.record_assignment(0, 1)
        assert not tr.brings_new_classes(0)
        assert tr.brings_new_classes(1)  # class 3 new
        assert tr.brings_new_classes(2)

    def test_scheduled_shards_counter(self):
        tr = self.make()
        tr.record_assignment(0, 3)
        tr.record_assignment(1, 2)
        assert tr.scheduled_shards == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyCostTracker([(0,)], 10, 1.0, 0.0, semantics="bogus")
        with pytest.raises(ValueError):
            AccuracyCostTracker([()], 10, 1.0, 0.0)
        with pytest.raises(ValueError):
            AccuracyCostTracker([(10,)], 10, 1.0, 0.0)
        tr = self.make()
        with pytest.raises(ValueError):
            tr.record_assignment(0, 0)


class TestTrackerAlternativeSemantics:
    def test_strict_loses_discount_on_any_overlap(self):
        tr = AccuracyCostTracker(
            [(0, 1), (1, 7)], 10, alpha=1.0, beta=2.0, semantics="strict"
        )
        tr.record_assignment(0, 5)
        # user 1 shares class 1 with covered set -> base only
        assert tr.scaled_cost(1) == pytest.approx(5.0)

    def test_strict_discounts_fully_disjoint_user(self):
        tr = AccuracyCostTracker(
            [(0, 1), (7, 8)], 10, alpha=1.0, beta=2.0, semantics="strict"
        )
        tr.record_assignment(0, 5)
        assert tr.scaled_cost(1) == pytest.approx(5.0 - 10.0)

    def test_unique_semantics_persists_for_sole_holder(self):
        tr = AccuracyCostTracker(
            [(0, 1), (1, 7)], 10, alpha=1.0, beta=2.0, semantics="unique"
        )
        tr.record_assignment(0, 3)
        tr.record_assignment(1, 2)
        # class 7 held only by user 1: still discounted after scheduling
        assert tr.scaled_cost(1) < 5.0

    def test_coverage_semantics_tracks_balance(self):
        tr = AccuracyCostTracker(
            [(0,), (1,)], 10, alpha=1.0, beta=2.0, semantics="coverage"
        )
        tr.record_assignment(0, 10)
        # class 1 has zero supply < balanced share -> user 1 discounted
        assert tr.scaled_cost(1) < 10.0
        # class 0 has 10 shards > balanced 1.0 -> user 0 not discounted
        assert tr.scaled_cost(0) == pytest.approx(10.0)

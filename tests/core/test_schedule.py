"""Schedule container and makespan-evaluation tests."""

import numpy as np
import pytest

from repro.core.schedule import RoundCost, Schedule, evaluate_makespan


def sched(counts, shard_size=100):
    return Schedule(np.asarray(counts), shard_size)


class TestSchedule:
    def test_totals(self):
        s = sched([2, 0, 3])
        assert s.n_users == 3
        assert s.total_shards == 5
        assert s.total_samples == 500
        np.testing.assert_array_equal(s.samples_per_user(), [200, 0, 300])

    def test_participants(self):
        s = sched([2, 0, 3])
        np.testing.assert_array_equal(s.participants(), [0, 2])

    def test_validate_total(self):
        s = sched([2, 3])
        s.validate_total(5)
        with pytest.raises(ValueError):
            s.validate_total(6)

    def test_validate_capacities(self):
        s = sched([2, 3])
        s.validate_capacities([2, 3])
        with pytest.raises(ValueError):
            s.validate_capacities([1, 3])
        with pytest.raises(ValueError):
            s.validate_capacities([1])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            sched([-1, 2])

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            Schedule(np.array([1]), 0)


class TestEvaluateMakespan:
    def curves(self):
        return [lambda x: 0.01 * x, lambda x: 0.05 * x]

    def test_makespan_is_max_participant(self):
        cost = evaluate_makespan(sched([10, 10]), self.curves())
        assert cost.makespan_s == pytest.approx(50.0)
        assert cost.mean_s == pytest.approx(30.0)

    def test_idle_users_excluded(self):
        cost = evaluate_makespan(sched([10, 0]), self.curves())
        assert cost.makespan_s == pytest.approx(10.0)
        assert cost.per_user_s[1] == 0.0

    def test_comm_costs_added_to_participants(self):
        cost = evaluate_makespan(
            sched([10, 0]), self.curves(), comm_costs=[5.0, 5.0]
        )
        assert cost.makespan_s == pytest.approx(15.0)
        assert cost.per_user_s[1] == 0.0  # idle user pays nothing

    def test_straggler_gap_and_efficiency(self):
        cost = evaluate_makespan(sched([10, 10]), self.curves())
        assert cost.straggler_gap == pytest.approx(20.0)
        assert cost.parallel_efficiency == pytest.approx(0.6)

    def test_empty_schedule(self):
        cost = evaluate_makespan(sched([0, 0]), self.curves())
        assert cost.makespan_s == 0.0
        assert cost.parallel_efficiency == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_makespan(sched([1]), self.curves())
        with pytest.raises(ValueError):
            evaluate_makespan(sched([1, 1]), self.curves(), comm_costs=[1.0])

"""Brute-force oracle tests (the oracles themselves must be right)."""

import math

import numpy as np
import pytest

from repro.core.brute import brute_force_makespan, brute_force_p2, compositions


class TestCompositions:
    def test_count(self):
        # C(total + parts - 1, parts - 1)
        assert len(list(compositions(4, 2))) == 5
        assert len(list(compositions(3, 3))) == math.comb(5, 2)

    def test_all_sum_to_total(self):
        for comp in compositions(5, 3):
            assert sum(comp) == 5
            assert all(k >= 0 for k in comp)

    def test_single_part(self):
        assert list(compositions(7, 1)) == [(7,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(compositions(3, 0))
        with pytest.raises(ValueError):
            list(compositions(-1, 2))


class TestBruteForceMakespan:
    def test_known_optimum(self):
        # user 0 cheap, user 1 expensive: all shards to user 0
        cost = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        comp, val = brute_force_makespan(cost, 3)
        assert comp == (3, 0)
        assert val == 3.0

    def test_balanced_optimum(self):
        cost = np.array([[1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0]])
        comp, val = brute_force_makespan(cost, 4)
        assert val == 2.0
        assert comp == (2, 2)

    def test_infeasible_raises(self):
        cost = np.ones((1, 2))
        with pytest.raises(ValueError):
            brute_force_makespan(cost, 3)


class TestBruteForceP2:
    def test_prefers_cheap_user_when_alpha_zero(self):
        curves = [lambda x: 0.001 * x, lambda x: 1.0 * x]
        comp, val = brute_force_p2(
            curves, [(0,), (1,)], total_shards=4, shard_size=10,
            num_classes=10, alpha=0.0,
        )
        assert comp == (4, 0)

    def test_alpha_penalises_one_class_user(self):
        curves = [lambda x: 0.1 * x, lambda x: 0.1 * x]
        # user 0 has 1 class (F=10), user 1 has all (F=1)
        comp, _ = brute_force_p2(
            curves,
            [(0,), tuple(range(10))],
            total_shards=4,
            shard_size=10,
            num_classes=10,
            alpha=100.0,
        )
        assert comp == (0, 4)

    def test_capacity_respected(self):
        curves = [lambda x: 0.001 * x, lambda x: 1.0 * x]
        comp, _ = brute_force_p2(
            curves, [(0,), (1,)], 4, 10, 10, alpha=0.0, capacities=[2, 4]
        )
        assert comp[0] <= 2

"""Vectorised Fed-MinAvg: equivalence with the reference and the P2
objective evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minavg import fed_minavg
from repro.core.minavg_fast import fed_minavg_affine
from repro.core.objective import p2_objective
from repro.core.schedule import Schedule


def random_instance(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    a = rng.uniform(0.0, 5.0, n)
    b = rng.uniform(0.001, 0.05, n)
    classes = [
        tuple(
            int(c)
            for c in rng.choice(10, size=int(rng.integers(1, 5)), replace=False)
        )
        for _ in range(n)
    ]
    total = int(rng.integers(5, 40))
    alpha = float(rng.uniform(0, 200))
    beta = float(rng.choice([0.0, 1.0, 2.0]))
    return a, b, classes, total, alpha, beta


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_reference_implementation(self, seed):
        a, b, classes, total, alpha, beta = random_instance(seed)
        curves = [
            lambda x, ai=ai, bi=bi: ai + bi * x for ai, bi in zip(a, b)
        ]
        ref = fed_minavg(
            curves, classes, total, 100, 10, alpha=alpha, beta=beta
        )
        fast = fed_minavg_affine(
            a, b, classes, total, 100, 10, alpha=alpha, beta=beta
        )
        np.testing.assert_array_equal(
            ref.shard_counts, fast.shard_counts
        )
        assert ref.meta["coverage"] == pytest.approx(
            fast.meta["coverage"]
        )

    def test_matches_with_capacities_and_comm(self):
        a = [1.0, 2.0, 0.5]
        b = [0.01, 0.02, 0.005]
        classes = [(0, 1), (2, 3, 4), (5,)]
        caps = [10, 10, 5]
        comm = [0.5, 3.0, 0.1]
        ref = fed_minavg(
            [lambda x, ai=ai, bi=bi: ai + bi * x for ai, bi in zip(a, b)],
            classes,
            20,
            100,
            10,
            alpha=50.0,
            beta=2.0,
            capacities=caps,
            comm_costs=comm,
        )
        fast = fed_minavg_affine(
            a, b, classes, 20, 100, 10,
            alpha=50.0, beta=2.0, capacities=caps, comm_costs=comm,
        )
        np.testing.assert_array_equal(ref.shard_counts, fast.shard_counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            fed_minavg_affine([], [], [], 10, 100, 10, 1.0)
        with pytest.raises(ValueError):
            fed_minavg_affine([1.0], [0.1, 0.2], [(0,)], 10, 100, 10, 1.0)
        with pytest.raises(ValueError):
            fed_minavg_affine(
                [1.0], [0.1], [(0,)], 10, 100, 10, 1.0, capacities=[5]
            )

    def test_faster_than_reference(self):
        """The vector path wins by a wide margin at production scale."""
        import time

        rng = np.random.default_rng(0)
        n, total = 50, 600
        a = rng.uniform(0, 5, n)
        b = rng.uniform(0.001, 0.05, n)
        classes = [
            tuple(int(c) for c in rng.choice(10, size=4, replace=False))
            for _ in range(n)
        ]
        curves = [
            lambda x, ai=ai, bi=bi: ai + bi * x for ai, bi in zip(a, b)
        ]
        t0 = time.perf_counter()
        fed_minavg(curves, classes, total, 100, 10, alpha=100.0, beta=2.0)
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        fed_minavg_affine(
            a, b, classes, total, 100, 10, alpha=100.0, beta=2.0
        )
        t_fast = time.perf_counter() - t0
        assert t_fast < t_ref  # typically 20-50x; assert direction only


class TestP2Objective:
    def curves(self):
        return [lambda x: 0.01 * x, lambda x: 0.02 * x]

    def test_counts_only_participants(self):
        sched = Schedule(np.array([5, 0]), 100)
        val = p2_objective(
            sched, self.curves(), [(0,), (1,)], 10, alpha=1.0
        )
        # user 0: T(500)=5 + alpha*K/1 = 10 -> 15
        assert val == pytest.approx(15.0)

    def test_comm_added(self):
        sched = Schedule(np.array([5, 0]), 100)
        val = p2_objective(
            sched,
            self.curves(),
            [(0,), (1,)],
            10,
            alpha=0.0,
            comm_costs=[2.0, 2.0],
        )
        assert val == pytest.approx(7.0)

    def test_greedy_minavg_not_worse_than_equal(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 2, 4)
        b = rng.uniform(0.005, 0.05, 4)
        classes = [(0, 1, 2), (3, 4), (5,), (6, 7, 8, 9)]
        curves = [
            lambda x, ai=ai, bi=bi: ai + bi * x for ai, bi in zip(a, b)
        ]
        greedy = fed_minavg(
            curves, classes, 20, 100, 10, alpha=30.0
        )
        equal = Schedule(np.full(4, 5), 100)
        g = p2_objective(greedy, curves, classes, 10, alpha=30.0)
        e = p2_objective(equal, curves, classes, 10, alpha=30.0)
        assert g <= e + 1e-9

    def test_validation(self):
        sched = Schedule(np.array([1]), 100)
        with pytest.raises(ValueError):
            p2_objective(sched, [], [(0,)], 10, 1.0)
        with pytest.raises(ValueError):
            p2_objective(
                sched, self.curves()[:1], [(0,)], 10, 1.0,
                comm_costs=[1.0, 2.0],
            )


class TestEquivalenceWithConstraints:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_reference_with_caps_and_comm(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        a = rng.uniform(0.0, 3.0, n)
        b = rng.uniform(0.001, 0.05, n)
        classes = [
            tuple(
                int(c)
                for c in rng.choice(
                    10, size=int(rng.integers(1, 5)), replace=False
                )
            )
            for _ in range(n)
        ]
        total = int(rng.integers(5, 30))
        caps = rng.integers(
            max(1, total // n), total + 1, size=n
        )
        while caps.sum() < total:
            caps[int(rng.integers(n))] += 1
        comm = rng.uniform(0.0, 5.0, n)
        alpha = float(rng.uniform(0, 150))
        beta = float(rng.choice([0.0, 2.0]))
        curves = [
            lambda x, ai=ai, bi=bi: ai + bi * x for ai, bi in zip(a, b)
        ]
        ref = fed_minavg(
            curves, classes, total, 100, 10,
            alpha=alpha, beta=beta,
            capacities=caps.tolist(), comm_costs=comm.tolist(),
        )
        fast = fed_minavg_affine(
            a, b, classes, total, 100, 10,
            alpha=alpha, beta=beta,
            capacities=caps.tolist(), comm_costs=comm.tolist(),
        )
        np.testing.assert_array_equal(
            ref.shard_counts, fast.shard_counts
        )

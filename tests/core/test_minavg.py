"""Fed-MinAvg tests: allocation invariants, alpha/beta dynamics,
capacities, and the paper's qualitative Table IV behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minavg import fed_minavg


def linear_curves(slopes):
    return [lambda x, s=s: s * x for s in slopes]


class TestInvariants:
    def test_total_allocated(self):
        sched = fed_minavg(
            linear_curves([0.01, 0.02]),
            [(0, 1), (2, 3)],
            total_shards=10,
            shard_size=100,
            num_classes=10,
            alpha=10.0,
        )
        assert sched.total_shards == 10

    def test_capacities_respected(self):
        sched = fed_minavg(
            linear_curves([0.01, 1.0]),
            [(0,), (1,)],
            total_shards=10,
            shard_size=100,
            num_classes=10,
            alpha=1.0,
            capacities=[4, 10],
        )
        assert sched.shard_counts[0] <= 4
        assert sched.total_shards == 10

    def test_infeasible_capacity_raises(self):
        with pytest.raises(ValueError):
            fed_minavg(
                linear_curves([0.01, 0.02]),
                [(0,), (1,)],
                total_shards=10,
                shard_size=100,
                num_classes=10,
                alpha=1.0,
                capacities=[2, 2],
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            fed_minavg([], [], 10, 100, 10, 1.0)
        with pytest.raises(ValueError):
            fed_minavg(
                linear_curves([0.01]), [(0,), (1,)], 10, 100, 10, 1.0
            )
        with pytest.raises(ValueError):
            fed_minavg(linear_curves([0.01]), [(0,)], 0, 100, 10, 1.0)

    def test_meta_records_parameters(self):
        sched = fed_minavg(
            linear_curves([0.01]),
            [tuple(range(10))],
            5,
            100,
            10,
            alpha=7.0,
            beta=1.0,
        )
        assert sched.meta["alpha"] == 7.0
        assert sched.meta["coverage"] == 1.0
        assert sched.algorithm == "fed-minavg"

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        alpha=st.floats(0.0, 100.0),
        beta=st.floats(0.0, 5.0),
    )
    def test_property_full_allocation(self, seed, alpha, beta):
        r = np.random.default_rng(seed)
        n = int(r.integers(2, 6))
        slopes = r.uniform(0.005, 0.05, n)
        classes = [
            tuple(
                int(c)
                for c in r.choice(10, size=int(r.integers(1, 5)), replace=False)
            )
            for _ in range(n)
        ]
        total = int(r.integers(5, 40))
        sched = fed_minavg(
            linear_curves(slopes),
            classes,
            total,
            100,
            10,
            alpha=alpha,
            beta=beta,
        )
        assert sched.total_shards == total
        assert (sched.shard_counts >= 0).all()


class TestAlphaBetaDynamics:
    def setup_scenario(self):
        """S(I)-like: fast 2-class outlier with a unique class, slow
        many-class users."""
        curves = linear_curves([0.013, 0.016, 0.009])  # pixel2 fastest
        classes = [
            (0, 1, 2, 3, 4, 5, 6, 9),
            (2, 3, 4, 5, 6, 8),
            (7, 8),  # class 7 unique to this user
        ]
        return curves, classes

    def test_alpha_zero_is_time_only(self):
        curves, classes = self.setup_scenario()
        sched = fed_minavg(curves, classes, 100, 100, 10, alpha=0.0)
        # fastest user dominates when accuracy cost is off
        assert sched.shard_counts[2] == sched.shard_counts.max()

    def test_large_alpha_starves_few_class_users(self):
        curves, classes = self.setup_scenario()
        sched = fed_minavg(curves, classes, 100, 100, 10, alpha=5000.0)
        assert sched.shard_counts[2] == 0

    def test_beta_recovers_unique_class_outlier(self):
        curves, classes = self.setup_scenario()
        without = fed_minavg(
            curves, classes, 200, 100, 10, alpha=100.0, beta=0.0
        )
        with_beta = fed_minavg(
            curves, classes, 200, 100, 10, alpha=100.0, beta=2.0
        )
        assert with_beta.shard_counts[2] > without.shard_counts[2]
        assert with_beta.meta["coverage"] == 1.0

    def test_beta_coverage_dominates_at_moderate_alpha(self):
        curves, classes = self.setup_scenario()
        sched = fed_minavg(
            curves, classes, 200, 100, 10, alpha=100.0, beta=2.0
        )
        assert sched.meta["coverage"] == 1.0

    def test_semantics_strict_excludes_shared_class_outlier(self):
        """Under the printed Eq. (6), the outlier sharing class 8 with a
        scheduled user never earns the discount."""
        curves, classes = self.setup_scenario()
        strict = fed_minavg(
            curves,
            classes,
            200,
            100,
            10,
            alpha=100.0,
            beta=2.0,
            semantics="strict",
        )
        default = fed_minavg(
            curves, classes, 200, 100, 10, alpha=100.0, beta=2.0
        )
        assert strict.shard_counts[2] <= default.shard_counts[2]

    def test_unknown_semantics_rejected(self):
        curves, classes = self.setup_scenario()
        with pytest.raises(ValueError):
            fed_minavg(
                curves, classes, 10, 100, 10, 1.0, semantics="magic"
            )

    def test_comm_cost_penalises_opening(self):
        curves = linear_curves([0.01, 0.01])
        classes = [(0, 1), (0, 1)]
        # huge comm cost on user 1: everything lands on user 0
        sched = fed_minavg(
            curves,
            classes,
            20,
            100,
            10,
            alpha=0.0,
            comm_costs=[0.0, 1e6],
        )
        assert sched.shard_counts[1] == 0

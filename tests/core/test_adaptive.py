"""Closed-loop adaptive scheduler tests."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveScheduler
from repro.experiments.realized import realized_times
from repro.experiments.testbeds import testbed_names
from repro.models import lenet


def flat_curves(n, value=10.0):
    """Uninformative priors: every user predicted identical."""
    return [lambda x, v=value: v + 0.001 * x for _ in range(n)]


class TestAdaptiveScheduler:
    def test_first_schedule_uses_priors(self):
        sched = AdaptiveScheduler(
            initial_curves=[lambda x: 0.01 * x, lambda x: 0.05 * x],
            total_shards=10,
            shard_size=100,
        ).next_schedule()
        assert sched.total_shards == 10
        assert sched.shard_counts[0] > sched.shard_counts[1]

    def test_observations_correct_wrong_priors(self):
        """Priors say the users are equal; reality says user 1 is 10x
        slower. After a few rounds the allocation shifts to user 0."""
        truth = [lambda x: 0.001 * x, lambda x: 0.01 * x]
        ada = AdaptiveScheduler(
            initial_curves=flat_curves(2),
            total_shards=20,
            shard_size=100,
            probe_every=0,
        )
        first = ada.next_schedule()
        # Priors are symmetric: roughly even split.
        assert abs(first.shard_counts[0] - first.shard_counts[1]) <= 2
        for _ in range(5):
            sched = ada.next_schedule()
            samples = sched.samples_per_user()
            times = [
                truth[j](float(s)) if s > 0 else 0.0
                for j, s in enumerate(samples)
            ]
            ada.observe_round(sched, times)
        final = ada.next_schedule()
        assert final.shard_counts[0] > 3 * final.shard_counts[1]

    def test_probing_revives_starved_user(self):
        """A user written off by a bad prior gets probe shards and can
        re-enter once observed fast."""
        truth = [lambda x: 0.005 * x, lambda x: 0.005 * x]
        ada = AdaptiveScheduler(
            initial_curves=[lambda x: 0.005 * x, lambda x: 1e3 + x],
            total_shards=20,
            shard_size=100,
            probe_every=1,
        )
        for _ in range(6):
            sched = ada.next_schedule()
            samples = sched.samples_per_user()
            times = [
                truth[j](float(s)) if s > 0 else 0.0
                for j, s in enumerate(samples)
            ]
            ada.observe_round(sched, times)
        final = ada.next_schedule()
        assert final.shard_counts[1] >= 5  # rehabilitated

    def test_no_probe_starves_forever(self):
        ada = AdaptiveScheduler(
            initial_curves=[lambda x: 0.005 * x, lambda x: 1e3 + x],
            total_shards=20,
            shard_size=100,
            probe_every=0,
        )
        for _ in range(4):
            sched = ada.next_schedule()
            samples = sched.samples_per_user()
            times = [
                0.005 * float(s) if s > 0 else 0.0 for s in samples
            ]
            ada.observe_round(sched, times)
            assert sched.shard_counts[1] <= 1

    def test_comm_costs_subtracted_from_observations(self):
        ada = AdaptiveScheduler(
            initial_curves=flat_curves(1),
            total_shards=5,
            shard_size=100,
            comm_costs=[7.0],
            probe_every=0,
        )
        sched = ada.next_schedule()
        ada.observe_round(sched, [7.0 + 2.0])  # 2 s of compute
        assert ada.profiles[0].predict(500) < 10.0

    def test_predicted_makespan(self):
        ada = AdaptiveScheduler(
            initial_curves=[lambda x: 0.01 * x, lambda x: 0.02 * x],
            total_shards=10,
            shard_size=100,
            probe_every=0,
        )
        sched = ada.next_schedule()
        pred = ada.predicted_makespan(sched)
        assert pred > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler([], 10, 100)
        with pytest.raises(ValueError):
            AdaptiveScheduler(flat_curves(2), 0, 100)
        ada = AdaptiveScheduler(flat_curves(2), 10, 100)
        sched = ada.next_schedule()
        with pytest.raises(ValueError):
            ada.observe_round(sched, [1.0])


class TestAdaptiveOnSimulator:
    def test_recovers_from_cold_uniform_priors(self):
        """Starting from identical priors on Testbed 1, three rounds of
        feedback land within 25% of the offline-profiled makespan."""
        from repro.experiments.testbeds import cached_time_curves

        names = testbed_names(1)
        model = lenet()
        shards, d = 60, 500
        ada = AdaptiveScheduler(
            initial_curves=flat_curves(len(names), 30.0),
            total_shards=shards,
            shard_size=d,
            probe_every=0,
        )
        makespans = []
        for _ in range(4):
            sched = ada.next_schedule()
            times = realized_times(
                sched.samples_per_user(), names, model
            )
            makespans.append(times[sched.samples_per_user() > 0].max())
            ada.observe_round(sched, times)
        # Reference: offline-profiled Fed-LBAP.
        from repro.core import build_cost_matrix, fed_lbap

        curves = cached_time_curves(names, model)
        ref_sched, _ = fed_lbap(
            build_cost_matrix(curves, shards, d), shards, d
        )
        ref = realized_times(
            ref_sched.samples_per_user(), names, model
        ).max()
        assert makespans[-1] <= ref * 1.25
        assert makespans[-1] <= makespans[0] + 1e-9

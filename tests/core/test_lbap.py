"""Fed-LBAP tests: correctness vs brute force (including property-based
instances), threshold feasibility, and the exact-LBAP reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import brute_force_makespan
from repro.core.lbap import (
    fed_lbap,
    feasible_at_threshold,
    solve_lbap_threshold_exact,
)


def monotone_cost(rng, n, s, scale=1.0):
    """Random non-decreasing cost rows."""
    inc = rng.uniform(0.1, 1.0, size=(n, s)) * scale
    return np.cumsum(inc, axis=1)


class TestFeasibility:
    def test_counts_match_threshold(self):
        cost = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
        feasible, counts = feasible_at_threshold(cost, 2.0, 3)
        np.testing.assert_array_equal(counts, [2, 1])
        assert feasible

    def test_infeasible_below_min(self):
        cost = np.array([[1.0, 2.0], [1.5, 3.0]])
        feasible, counts = feasible_at_threshold(cost, 0.5, 1)
        assert not feasible
        assert counts.sum() == 0


class TestFedLbap:
    def test_matches_brute_force_small(self, rng):
        for trial in range(20):
            r = np.random.default_rng(trial)
            n = int(r.integers(2, 4))
            s = int(r.integers(3, 7))
            total = int(r.integers(2, min(n * s, 10)))
            cost = monotone_cost(r, n, s)
            sched, c_star = fed_lbap(cost, total)
            _, opt = brute_force_makespan(cost, total)
            assert c_star == pytest.approx(opt), (trial, n, s, total)

    def test_allocation_achieves_bottleneck(self, rng):
        cost = monotone_cost(rng, 4, 10)
        sched, c_star = fed_lbap(cost, 12)
        realized = max(
            cost[j, k - 1]
            for j, k in enumerate(sched.shard_counts)
            if k > 0
        )
        assert realized <= c_star + 1e-12

    def test_total_allocated_exactly(self, rng):
        cost = monotone_cost(rng, 5, 8)
        sched, _ = fed_lbap(cost, 17)
        assert sched.total_shards == 17

    def test_heterogeneous_favours_fast_user(self, rng):
        slow = np.cumsum(np.full(10, 10.0))
        fast = np.cumsum(np.full(10, 1.0))
        cost = np.vstack([slow, fast])
        sched, _ = fed_lbap(cost, 10)
        assert sched.shard_counts[1] > sched.shard_counts[0]

    def test_full_capacity_feasible(self):
        cost = np.cumsum(np.ones((2, 3)), axis=1)
        sched, c_star = fed_lbap(cost, 6)
        np.testing.assert_array_equal(sched.shard_counts, [3, 3])
        assert c_star == pytest.approx(3.0)

    def test_infeasible_raises(self):
        cost = np.cumsum(np.ones((2, 3)), axis=1)
        with pytest.raises(ValueError):
            fed_lbap(cost, 7)

    def test_non_monotone_rows_rejected(self):
        cost = np.array([[2.0, 1.0, 3.0]])
        with pytest.raises(ValueError):
            fed_lbap(cost, 2)

    def test_validation(self, rng):
        cost = monotone_cost(rng, 2, 3)
        with pytest.raises(ValueError):
            fed_lbap(cost, 0)
        with pytest.raises(ValueError):
            fed_lbap(cost[0], 2)

    def test_shard_size_propagates(self, rng):
        cost = monotone_cost(rng, 3, 5)
        sched, _ = fed_lbap(cost, 6, shard_size=250)
        assert sched.shard_size == 250
        assert sched.total_samples == 1500

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 4),
        s=st.integers(2, 6),
    )
    def test_property_optimal_bottleneck(self, seed, n, s):
        """Fed-LBAP's threshold equals the exhaustive optimum on every
        random monotone instance."""
        r = np.random.default_rng(seed)
        cost = monotone_cost(r, n, s)
        total = int(r.integers(1, n * s + 1))
        _, c_star = fed_lbap(cost, total)
        _, opt = brute_force_makespan(cost, total)
        assert abs(c_star - opt) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_monotone_in_total(self, seed):
        """More shards can never reduce the optimal bottleneck."""
        r = np.random.default_rng(seed)
        cost = monotone_cost(r, 3, 6)
        values = []
        for total in (3, 6, 9, 12):
            _, c_star = fed_lbap(cost, total)
            values.append(c_star)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestExactLbapReference:
    def test_identity_cost(self):
        cost = np.eye(3) * 10 + 1  # diagonal expensive
        assignment, bottleneck = solve_lbap_threshold_exact(cost)
        # off-diagonal assignment achievable with bottleneck 1
        assert bottleneck == pytest.approx(1.0)
        assert all(assignment[j] != j for j in range(3))

    def test_matches_exhaustive_permutations(self, rng):
        import itertools

        for trial in range(10):
            r = np.random.default_rng(100 + trial)
            cost = r.uniform(0, 10, size=(4, 4))
            _, bottleneck = solve_lbap_threshold_exact(cost)
            best = min(
                max(cost[j, p[j]] for j in range(4))
                for p in itertools.permutations(range(4))
            )
            assert bottleneck == pytest.approx(best)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            solve_lbap_threshold_exact(rng.uniform(size=(2, 3)))


class TestLbapCapacities:
    def test_capacity_binds(self, rng):
        """The cheap user is capped; the overflow pays a higher
        bottleneck on the expensive user."""
        cheap = np.cumsum(np.full(10, 1.0))
        dear = np.cumsum(np.full(10, 5.0))
        cost = np.vstack([cheap, dear])
        unconstrained, c1 = fed_lbap(cost, 8)
        # optimum splits 7/1: max(7*1, 1*5) = 7 beats all-on-cheap (8)
        assert unconstrained.shard_counts[0] == 7
        capped, c2 = fed_lbap(cost, 8, capacities=np.array([4, 10]))
        assert capped.shard_counts[0] <= 4
        assert capped.total_shards == 8
        assert c2 >= c1

    def test_capacity_infeasible_raises(self, rng):
        cost = monotone_cost(rng, 2, 5)
        with pytest.raises(ValueError):
            fed_lbap(cost, 8, capacities=np.array([3, 3]))

    def test_capacity_matches_brute_force(self):
        """Exactness with capacities, vs capacity-filtered brute force."""
        rng = np.random.default_rng(7)
        for trial in range(10):
            r = np.random.default_rng(trial)
            cost = monotone_cost(r, 3, 5)
            caps = r.integers(1, 6, size=3)
            total = int(min(caps.sum(), 8))
            _, c_star = fed_lbap(cost, total, capacities=caps)
            # brute force over capacity-respecting compositions
            from repro.core.brute import compositions

            best = np.inf
            for comp in compositions(total, 3):
                if any(k > c for k, c in zip(comp, caps)):
                    continue
                if any(k > 5 for k in comp):
                    continue
                val = max(
                    (cost[j, k - 1] for j, k in enumerate(comp) if k > 0),
                    default=0.0,
                )
                best = min(best, val)
            assert c_star == pytest.approx(best), trial

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_capacity_exactness(self, seed):
        """Capacity-constrained Fed-LBAP equals the capacity-filtered
        exhaustive optimum on every random instance."""
        from repro.core.brute import compositions

        r = np.random.default_rng(seed)
        n = int(r.integers(2, 4))
        s = int(r.integers(2, 6))
        cost = monotone_cost(r, n, s)
        caps = r.integers(1, s + 1, size=n)
        total = int(r.integers(1, int(caps.sum()) + 1))
        _, c_star = fed_lbap(cost, total, capacities=caps)
        best = np.inf
        for comp in compositions(total, n):
            if any(k > c or k > s for k, c in zip(comp, caps)):
                continue
            val = max(
                (cost[j, k - 1] for j, k in enumerate(comp) if k > 0),
                default=0.0,
            )
            best = min(best, val)
        assert c_star == pytest.approx(best)

"""Smoke-run every example script.

Examples are the first thing a new user runs; these tests keep them
working as the API evolves. Each example is executed in-process with
its output captured and checked for its headline content.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Fed-LBAP speedup vs best baseline" in out
        speedup = float(out.rsplit(":", 1)[1].strip().rstrip("x"))
        assert speedup > 1.0

    def test_straggler_analysis(self, capsys):
        out = run_example("straggler_analysis.py", capsys)
        assert "cores went OFFLINE" in out  # the Nexus 6P pathology
        assert "straggler needs" in out

    def test_profiling_demo(self, capsys):
        out = run_example("profiling_demo.py", capsys)
        assert "R^2" in out
        assert "predicted" in out

    def test_noniid_scheduling(self, capsys):
        out = run_example("noniid_scheduling.py", capsys)
        assert "class 7 exists ONLY on pixel2" in out
        assert "100%" in out  # some row reaches full coverage

    def test_federated_training(self, capsys):
        out = run_example("federated_training.py", capsys)
        assert "final accuracy" in out
        assert "battery=" in out

    def test_adaptive_scheduling(self, capsys):
        out = run_example("adaptive_scheduling.py", capsys)
        assert "converged to within" in out

    def test_beyond_the_paper(self, capsys):
        out = run_example("beyond_the_paper.py", capsys)
        assert "discards nothing" in out
        assert "consensus distance" in out

"""Adapter fidelity: registry path vs. direct calls, capacity repair."""

import numpy as np
import pytest

from repro.core.baselines import equal_schedule, random_schedule
from repro.core.lbap import fed_lbap
from repro.core.minavg import fed_minavg
from repro.sched import SchedulingProblem, get_scheduler
from repro.sched.adapters import repair_to_capacities

from .conftest import synthetic_problem


class TestBitIdentity:
    """The adapters call the wrapped functions verbatim: same inputs,
    bit-identical schedules (acceptance criterion of the subsystem)."""

    def test_fed_lbap_adapter_matches_direct_call(self):
        for seed in range(5):
            p = synthetic_problem(seed=seed, n_users=5, total_shards=9)
            direct, bottleneck = fed_lbap(
                p.time_cost, p.total_shards, p.shard_size
            )
            a = get_scheduler("fed_lbap").schedule(p)
            np.testing.assert_array_equal(
                a.shard_counts, direct.shard_counts
            )
            assert a.meta["bottleneck"] == bottleneck
            assert a.schedule.algorithm == "fed-lbap"

    def test_fed_lbap_adapter_matches_with_capacities(self):
        p = synthetic_problem(
            seed=1, n_users=4, total_shards=8,
            capacities=[3, 3, 3, 3],
        )
        direct, _ = fed_lbap(
            p.time_cost, p.total_shards, p.shard_size,
            capacities=np.asarray(p.capacities),
        )
        a = get_scheduler("fed_lbap").schedule(p)
        np.testing.assert_array_equal(
            a.shard_counts, direct.shard_counts
        )

    def test_fed_minavg_adapter_uses_problem_curves_verbatim(self):
        rng = np.random.default_rng(4)
        n, total, d = 4, 9, 100
        a_coef = rng.uniform(0.5, 2.0, n)
        b_coef = rng.uniform(0.001, 0.02, n)
        curves = [
            (lambda x, ai=ai, bi=bi: ai + bi * x)
            for ai, bi in zip(a_coef, b_coef)
        ]
        comm = rng.uniform(0.1, 0.5, n)
        classes = [
            tuple(int(c) for c in rng.choice(10, 3, replace=False))
            for _ in range(n)
        ]
        k = np.arange(1, total + 1)
        time_cost = (
            a_coef[:, None] + b_coef[:, None] * (k * d)[None, :]
        )
        p = SchedulingProblem(
            time_cost=time_cost,
            total_shards=total,
            shard_size=d,
            user_classes=classes,
            alpha=50.0,
            beta=1.0,
            time_curves=curves,
            comm_costs=comm,
        )
        direct = fed_minavg(
            curves, classes, total, d, 10, 50.0, beta=1.0,
            capacities=p.effective_capacities(), comm_costs=comm,
        )
        adapted = get_scheduler("fed_minavg").schedule(p)
        np.testing.assert_array_equal(
            adapted.shard_counts, direct.shard_counts
        )
        assert adapted.schedule.algorithm == "fed-minavg"

    def test_fed_minavg_fast_matches_reference_on_affine(self):
        """The secant fit recovers exact affine coefficients, so the
        fast adapter reproduces the reference adapter's schedule."""
        p = synthetic_problem(
            seed=5, n_users=5, total_shards=8, alpha=80.0,
            user_classes=[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)],
        )
        ref = get_scheduler("fed_minavg").schedule(p)
        fast = get_scheduler("fed_minavg_fast").schedule(p)
        np.testing.assert_array_equal(
            fast.shard_counts, ref.shard_counts
        )

    def test_equal_adapter_matches_direct_call(self, problem):
        direct = equal_schedule(
            problem.n_users, problem.total_shards, problem.shard_size
        )
        a = get_scheduler("equal").schedule(problem)
        np.testing.assert_array_equal(
            a.shard_counts, direct.shard_counts
        )

    def test_random_adapter_matches_direct_call_with_same_seed(self):
        p = synthetic_problem(seed=9)
        direct = random_schedule(
            p.n_users, p.total_shards, p.shard_size,
            np.random.default_rng(9),
        )
        a = get_scheduler("random").schedule(p)
        np.testing.assert_array_equal(
            a.shard_counts, direct.shard_counts
        )


class TestRandomReproducibility:
    def test_same_seed_same_schedule(self, problem):
        a = get_scheduler("random").schedule(problem)
        b = get_scheduler("random").schedule(problem)
        np.testing.assert_array_equal(a.shard_counts, b.shard_counts)

    def test_global_state_is_irrelevant(self, problem):
        a = get_scheduler("random").schedule(problem)
        # deliberate global-state pollution: the scheduler must ignore it
        np.random.seed(12345)  # noqa: NPY002
        np.random.random(100)  # noqa: NPY002
        b = get_scheduler("random").schedule(problem)
        np.testing.assert_array_equal(a.shard_counts, b.shard_counts)

    def test_scheduler_seed_used_without_problem_rng(self):
        p = synthetic_problem()
        p.rng = None
        a = get_scheduler("random", seed=11).schedule(p)
        b = get_scheduler("random", seed=11).schedule(p)
        c = get_scheduler("random", seed=12).schedule(p)
        np.testing.assert_array_equal(a.shard_counts, b.shard_counts)
        assert not np.array_equal(a.shard_counts, c.shard_counts)

    def test_random_schedule_accepts_int_seed(self):
        a = random_schedule(5, 40, 10, 21)
        b = random_schedule(5, 40, 10, np.random.default_rng(21))
        np.testing.assert_array_equal(a.shard_counts, b.shard_counts)


class TestCapacityRepair:
    def test_noop_when_feasible(self):
        counts = np.array([3, 2, 1])
        caps = np.array([5, 5, 5])
        cost = np.tile(np.arange(1.0, 7.0), (3, 1))
        out = repair_to_capacities(counts, caps, cost)
        np.testing.assert_array_equal(out, counts)

    def test_overflow_moves_to_cheapest_slack(self):
        counts = np.array([4, 0, 0])
        caps = np.array([2, 4, 4])
        cost = np.vstack(
            [
                np.arange(1.0, 5.0),
                np.arange(1.0, 5.0) * 2,  # cheaper next shard
                np.arange(1.0, 5.0) * 5,
            ]
        )
        out = repair_to_capacities(counts, caps, cost)
        np.testing.assert_array_equal(out, [2, 2, 0])
        assert out.sum() == counts.sum()

    def test_impossible_repair_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            repair_to_capacities(
                np.array([4]), np.array([2]), np.ones((1, 4))
            )

    def test_baselines_respect_capacities_via_repair(self):
        p = synthetic_problem(
            seed=6, n_users=4, total_shards=10,
            capacities=[1, 4, 4, 4],
        )
        for name in ("equal", "random", "proportional"):
            a = get_scheduler(name).schedule(p)
            assert (
                a.shard_counts <= p.effective_capacities()
            ).all(), name
            assert a.schedule.total_shards == p.total_shards

"""MinEnergy DP: exactness, makespan cap, infeasibility reporting."""

import itertools

import numpy as np
import pytest

from repro.core.brute import compositions
from repro.sched import get_scheduler
from repro.sched.minenergy import min_energy_assign

from .conftest import synthetic_problem


def brute_force_energy(energy, total, capacities, time_cost=None, cap=None):
    """Exhaustive (MC)²MKP oracle for tiny instances."""
    n, s = energy.shape
    best, best_val = None, np.inf
    for comp in compositions(total, n):
        if any(k > min(capacities[j], s) for j, k in enumerate(comp)):
            continue
        if cap is not None and any(
            k > 0 and time_cost[j, k - 1] > cap
            for j, k in enumerate(comp)
        ):
            continue
        val = sum(
            energy[j, k - 1] for j, k in enumerate(comp) if k > 0
        )
        if val < best_val:
            best, best_val = comp, val
    return best, best_val


class TestMinEnergyAssign:
    def test_concentrates_on_cheapest_device(self):
        k = np.arange(1.0, 7.0)
        energy = np.vstack([1.0 * k, 5.0 * k, 9.0 * k])
        counts = min_energy_assign(energy, 6, np.full(3, 6))
        np.testing.assert_array_equal(counts, [6, 0, 0])

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(1, 4))
            total = int(rng.integers(1, 8))
            s = max(total, 1)
            # concave-ish random energies make splitting non-trivial
            energy = np.cumsum(
                rng.uniform(0.1, 3.0, size=(n, s)), axis=1
            )
            caps = rng.integers(0, s + 1, n)
            if caps.sum() < total:
                continue
            _, optimum = brute_force_energy(energy, total, caps)
            if not np.isfinite(optimum):
                continue
            counts = min_energy_assign(energy, total, caps)
            got = sum(
                energy[j, counts[j] - 1]
                for j in range(n)
                if counts[j] > 0
            )
            assert got == pytest.approx(optimum)

    def test_makespan_cap_filters_slow_devices(self):
        k = np.arange(1.0, 5.0)
        energy = np.vstack([1.0 * k, 3.0 * k])  # user 0 cheapest
        time_cost = np.vstack([10.0 * k, 1.0 * k])  # but slow
        counts = min_energy_assign(
            energy, 4, np.full(2, 4),
            time_cost=time_cost, makespan_cap_s=10.0,
        )
        # user 0 admits at most 1 shard under the 10 s deadline
        assert counts[0] <= 1
        assert counts.sum() == 4

    def test_cap_matches_capped_brute_force(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            n, total = 3, 6
            energy = np.cumsum(
                rng.uniform(0.1, 2.0, size=(n, total)), axis=1
            )
            time_cost = np.cumsum(
                rng.uniform(0.1, 2.0, size=(n, total)), axis=1
            )
            cap = float(np.median(time_cost))
            caps = np.full(n, total)
            comp, optimum = brute_force_energy(
                energy, total, caps, time_cost, cap
            )
            if comp is None:
                with pytest.raises(ValueError, match="infeasible"):
                    min_energy_assign(
                        energy, total, caps,
                        time_cost=time_cost, makespan_cap_s=cap,
                    )
                continue
            counts = min_energy_assign(
                energy, total, caps,
                time_cost=time_cost, makespan_cap_s=cap,
            )
            got = sum(
                energy[j, counts[j] - 1]
                for j in range(n)
                if counts[j] > 0
            )
            assert got == pytest.approx(optimum)
            assert all(
                time_cost[j, counts[j] - 1] <= cap
                for j in range(n)
                if counts[j] > 0
            )

    def test_cap_without_time_matrix_raises(self):
        energy = np.array([[1.0, 2.0]])
        with pytest.raises(ValueError, match="time_cost"):
            min_energy_assign(
                energy, 1, np.array([2]), makespan_cap_s=1.0
            )

    def test_infeasible_cap_raises(self):
        energy = np.array([[1.0, 2.0]])
        time_cost = np.array([[5.0, 9.0]])
        with pytest.raises(ValueError, match="infeasible"):
            min_energy_assign(
                energy, 2, np.array([2]),
                time_cost=time_cost, makespan_cap_s=1.0,
            )


class TestMinEnergyScheduler:
    def test_requires_energy_matrix(self):
        p = synthetic_problem(with_energy=False)
        with pytest.raises(ValueError, match="energy_cost"):
            get_scheduler("min_energy").schedule(p)

    def test_energy_never_above_other_schedulers(self, problem):
        me = get_scheduler("min_energy").schedule(problem)
        for other in ("fed_lbap", "olar", "equal", "proportional"):
            a = get_scheduler(other).schedule(problem)
            assert me.predicted_energy_j <= a.predicted_energy_j + 1e-9

    def test_instance_cap_overrides_problem_cap(self):
        p = synthetic_problem(seed=3, total_shards=6)
        uncapped = get_scheduler("min_energy").schedule(p)
        # the LBAP optimum is feasible by construction, so capping the
        # DP at it must succeed while forcing a faster schedule
        cap = float(
            get_scheduler("fed_lbap").schedule(p).predicted_makespan_s
        )
        capped = get_scheduler(
            "min_energy", makespan_cap_s=cap
        ).schedule(p)
        assert capped.predicted_makespan_s <= cap + 1e-12
        assert capped.meta["makespan_cap_s"] == cap
        # tightening the deadline can only cost energy
        assert (
            capped.predicted_energy_j
            >= uncapped.predicted_energy_j - 1e-9
        )

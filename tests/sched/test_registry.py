"""Registry behaviour: registration, lookup, error reporting."""

import pytest

from repro.sched import (
    Scheduler,
    available_schedulers,
    get_scheduler,
    is_registered,
    scheduler_class,
)
from repro.sched.registry import register

EXPECTED = {
    "equal",
    "fed_lbap",
    "fed_minavg",
    "fed_minavg_fast",
    "min_energy",
    "olar",
    "proportional",
    "random",
}


class TestRegistry:
    def test_all_expected_schedulers_registered(self):
        assert EXPECTED <= set(available_schedulers())

    def test_available_is_sorted(self):
        names = available_schedulers()
        assert list(names) == sorted(names)

    def test_lookup_is_case_insensitive(self):
        assert scheduler_class("OLAR") is scheduler_class("olar")
        assert is_registered("  Fed_LBAP ")

    def test_get_scheduler_instantiates(self):
        s = get_scheduler("olar")
        assert isinstance(s, Scheduler)
        assert s.name == "olar"

    def test_get_scheduler_passes_kwargs(self):
        s = get_scheduler("random", seed=7)
        assert s.seed == 7
        capped = get_scheduler("min_energy", makespan_cap_s=5.0)
        assert capped.makespan_cap_s == 5.0

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="olar"):
            get_scheduler("no_such_scheduler")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register("olar")
            class Impostor(Scheduler):
                def schedule(self, problem):  # pragma: no cover
                    raise NotImplementedError

    def test_non_scheduler_rejected(self):
        with pytest.raises(TypeError, match="must subclass Scheduler"):

            @register("not_a_scheduler")
            class Plain:
                pass

        assert not is_registered("not_a_scheduler")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register("  ")

"""Cost-model builders: testbed instances, caching, energy matrices."""

import numpy as np
import pytest

from repro.sched import available_schedulers, get_scheduler
from repro.sched.costs import (
    build_energy_matrix,
    cached_time_curves,
    testbed_problem,
)


@pytest.fixture(scope="module")
def tb1_problem():
    """Testbed 1 (3 devices), small budget — shared: profiling is the
    expensive part and the curves are cached module-wide anyway."""
    return testbed_problem(1, total_samples=6000, shard_size=500)


class TestTestbedProblem:
    def test_instance_shape_and_meta(self, tb1_problem):
        p = tb1_problem
        assert p.n_users == 3
        assert p.total_shards == 12
        assert p.energy_cost is not None
        assert p.energy_cost.shape == p.time_cost.shape
        assert p.weights is not None and len(p.weights) == 3
        assert p.meta["dataset"] == "mnist"
        assert len(p.meta["devices"]) == 3

    def test_rows_are_monotone(self, tb1_problem):
        assert (np.diff(tb1_problem.time_cost, axis=1) >= -1e-9).all()
        assert (np.diff(tb1_problem.energy_cost, axis=1) >= 0).all()

    def test_every_scheduler_solves_it(self, tb1_problem):
        for name in available_schedulers():
            a = get_scheduler(name).schedule(tb1_problem)
            assert a.schedule.total_shards == tb1_problem.total_shards

    def test_device_name_list_testbed(self):
        p = testbed_problem(
            ["nexus6", "pixel2"], total_samples=2000, shard_size=500
        )
        assert p.n_users == 2
        assert p.meta["devices"] == ("nexus6", "pixel2")

    def test_bad_inputs(self):
        with pytest.raises(KeyError, match="testbed"):
            testbed_problem(99, total_samples=2000)
        with pytest.raises(ValueError, match="device name"):
            testbed_problem([], total_samples=2000)
        with pytest.raises(KeyError, match="dataset"):
            testbed_problem(1, dataset="imagenet")
        with pytest.raises(ValueError, match="shards"):
            testbed_problem(1, total_samples=100, shard_size=500)

    def test_curves_are_cached(self):
        from repro.models.zoo import MNIST_SHAPE, build_model

        net = build_model("lenet", input_shape=MNIST_SHAPE)
        a = cached_time_curves(["pixel2"], net)
        b = cached_time_curves(["pixel2"], net)
        assert a[0] is b[0]


class TestEnergyMatrix:
    def test_monotone_and_shaped(self):
        curves = [lambda n: 0.5 + 0.01 * n, lambda n: 0.02 * n]
        e = build_energy_matrix(curves, 4, 100)
        assert e.shape == (2, 4)
        assert (np.diff(e, axis=1) >= 0).all()

    def test_rejects_bad_curves(self):
        with pytest.raises(ValueError, match="negative"):
            build_energy_matrix([lambda n: -1.0], 2, 100)
        with pytest.raises(ValueError):
            build_energy_matrix([lambda n: 1.0], 0, 100)

"""OLAR: heap greedy correctness, optimality, capacities, determinism."""

import numpy as np
import pytest

from repro.core.brute import brute_force_makespan
from repro.sched import get_scheduler
from repro.sched.olar import olar_assign

from .conftest import synthetic_problem


def monotone_matrix(rng, n, s):
    """Random non-decreasing rows (Property 1)."""
    return np.cumsum(rng.uniform(0.05, 2.0, size=(n, s)), axis=1)


class TestOlarAssign:
    def test_simple_instance(self):
        # one fast user, one slow: the fast user takes almost all
        cost = np.array(
            [[1.0, 2.0, 3.0, 4.0], [3.0, 6.0, 9.0, 12.0]]
        )
        counts = olar_assign(cost, 4, np.array([4, 4]))
        np.testing.assert_array_equal(counts, [3, 1])

    def test_respects_capacities(self):
        cost = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        counts = olar_assign(cost, 4, np.array([2, 3]))
        assert counts[0] == 2  # capped despite being cheapest
        assert counts.sum() == 4

    def test_zero_capacity_user_excluded(self):
        cost = np.array([[0.1, 0.2], [5.0, 6.0]])
        counts = olar_assign(cost, 2, np.array([0, 2]))
        np.testing.assert_array_equal(counts, [0, 2])

    def test_infeasible_raises(self):
        cost = np.array([[1.0, 2.0]])
        with pytest.raises(ValueError, match="infeasible"):
            olar_assign(cost, 3, np.array([2]))

    def test_ties_break_lowest_index(self):
        cost = np.ones((3, 4))
        counts = olar_assign(cost, 1, np.array([4, 4, 4]))
        np.testing.assert_array_equal(counts, [1, 0, 0])

    def test_matches_brute_force_on_random_instances(self):
        """Optimality (Pilla 2020, Thm. 1) against the exhaustive
        oracle on every small random instance."""
        rng = np.random.default_rng(0)
        for trial in range(30):
            n = int(rng.integers(1, 5))
            total = int(rng.integers(1, 9))
            cost = monotone_matrix(rng, n, max(total, 1))
            if total > n * cost.shape[1]:
                continue
            counts = olar_assign(
                cost, total, np.full(n, cost.shape[1])
            )
            got = max(
                cost[j, counts[j] - 1]
                for j in range(n)
                if counts[j] > 0
            )
            _, optimum = brute_force_makespan(cost, total)
            assert got == pytest.approx(optimum), (
                f"trial {trial}: OLAR {got} vs optimum {optimum}"
            )


class TestOlarScheduler:
    def test_full_assignment(self, problem):
        a = get_scheduler("olar").schedule(problem)
        assert a.scheduler == "olar"
        assert a.schedule.total_shards == problem.total_shards
        assert a.meta["makespan_optimal"] is True

    def test_matches_fed_lbap_makespan(self):
        """Both are exact for P1, so predicted makespans coincide."""
        for seed in range(5):
            p = synthetic_problem(seed=seed, n_users=5, total_shards=9)
            olar = get_scheduler("olar").schedule(p)
            lbap = get_scheduler("fed_lbap").schedule(p)
            assert olar.predicted_makespan_s == pytest.approx(
                lbap.predicted_makespan_s
            )

"""Shared fixtures for the scheduler-subsystem tests."""

import numpy as np
import pytest

from repro.sched import SchedulingProblem


def synthetic_problem(
    seed=0,
    n_users=4,
    n_slots=12,
    total_shards=10,
    shard_size=100,
    with_energy=True,
    **kwargs,
):
    """A random monotone instance: affine time rows, affine energy."""
    rng = np.random.default_rng(seed)
    intercepts = rng.uniform(0.5, 3.0, n_users)
    slopes = rng.uniform(0.1, 1.5, n_users)
    k = np.arange(1, n_slots + 1)
    time_cost = intercepts[:, None] + slopes[:, None] * k[None, :]
    energy_cost = None
    if with_energy:
        e_slopes = rng.uniform(0.2, 2.0, n_users)
        energy_cost = e_slopes[:, None] * k[None, :]
    kwargs.setdefault("rng", seed)
    return SchedulingProblem(
        time_cost=time_cost,
        total_shards=total_shards,
        shard_size=shard_size,
        energy_cost=energy_cost,
        **kwargs,
    )


@pytest.fixture
def problem():
    return synthetic_problem()

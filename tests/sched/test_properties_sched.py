"""Property-based invariants every registered scheduler must satisfy.

For arbitrary valid instances (random monotone cost matrices, random
capacities), each registered scheduler must (a) conserve the shard
budget exactly and (b) respect per-user capacity bounds; OLAR must
additionally match the brute-force P1 optimum on small instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import brute_force_makespan
from repro.sched import (
    SchedulingProblem,
    available_schedulers,
    get_scheduler,
)


def build_instance(seed, n_users, total_shards, capped):
    rng = np.random.default_rng(seed)
    n_slots = total_shards
    time_cost = np.cumsum(
        rng.uniform(0.05, 2.0, size=(n_users, n_slots)), axis=1
    )
    energy_cost = np.cumsum(
        rng.uniform(0.05, 3.0, size=(n_users, n_slots)), axis=1
    )
    capacities = None
    if capped:
        # feasible by construction: partition the budget, then pad
        splits = rng.multinomial(
            total_shards, np.full(n_users, 1.0 / n_users)
        )
        capacities = splits + rng.integers(0, 3, n_users)
    classes = [
        tuple(
            int(c)
            for c in rng.choice(10, size=int(rng.integers(1, 4)),
                                replace=False)
        )
        for _ in range(n_users)
    ]
    return SchedulingProblem(
        time_cost=time_cost,
        total_shards=total_shards,
        shard_size=50,
        energy_cost=energy_cost,
        capacities=capacities,
        user_classes=classes,
        alpha=10.0,
        rng=seed,
    )


@pytest.mark.parametrize("name", available_schedulers())
class TestSchedulerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(1, 6),
        total_shards=st.integers(1, 12),
        capped=st.booleans(),
    )
    def test_conserves_total_and_respects_capacities(
        self, name, seed, n_users, total_shards, capped
    ):
        problem = build_instance(seed, n_users, total_shards, capped)
        assignment = get_scheduler(name).schedule(problem)
        counts = assignment.shard_counts
        assert int(counts.sum()) == total_shards
        assert (counts >= 0).all()
        assert (counts <= problem.effective_capacities()).all()
        # the predicted makespan is the cost-model bottleneck
        expected = problem.predicted_makespan(counts)
        assert assignment.predicted_makespan_s == pytest.approx(
            expected
        )


class TestOlarOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(1, 6),
        total_shards=st.integers(1, 10),
    )
    def test_matches_brute_force_optimum(
        self, seed, n_users, total_shards
    ):
        """Acceptance: OLAR == exhaustive optimum on all small
        uncapacitated instances (n <= 6 users)."""
        problem = build_instance(seed, n_users, total_shards, False)
        assignment = get_scheduler("olar").schedule(problem)
        _, optimum = brute_force_makespan(
            problem.time_cost, total_shards
        )
        assert assignment.predicted_makespan_s == pytest.approx(
            optimum
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_users=st.integers(1, 6),
        total_shards=st.integers(1, 10),
    )
    def test_agrees_with_fed_lbap(self, seed, n_users, total_shards):
        """Two exact P1 solvers must report the same bottleneck."""
        problem = build_instance(seed, n_users, total_shards, False)
        olar = get_scheduler("olar").schedule(problem)
        lbap = get_scheduler("fed_lbap").schedule(problem)
        assert olar.predicted_makespan_s == pytest.approx(
            lbap.predicted_makespan_s
        )

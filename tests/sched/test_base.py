"""SchedulingProblem validation and Assignment scoring."""

import numpy as np
import pytest

from repro.sched import Assignment, SchedulingProblem
from repro.core.schedule import Schedule

from .conftest import synthetic_problem


def mat(rows):
    return np.asarray(rows, dtype=np.float64)


class TestValidation:
    def test_empty_user_list(self):
        with pytest.raises(ValueError, match="empty user list"):
            SchedulingProblem(
                time_cost=np.empty((0, 3)), total_shards=5
            )

    def test_non_positive_total(self):
        with pytest.raises(ValueError, match="total_shards"):
            SchedulingProblem(
                time_cost=mat([[1.0, 2.0]]), total_shards=0
            )
        with pytest.raises(ValueError, match="total_shards"):
            SchedulingProblem(
                time_cost=mat([[1.0, 2.0]]), total_shards=-3
            )

    def test_nan_cost_entries(self):
        with pytest.raises(ValueError, match="NaN"):
            SchedulingProblem(
                time_cost=mat([[1.0, np.nan]]), total_shards=1
            )

    def test_negative_cost_entries(self):
        with pytest.raises(ValueError, match="negative"):
            SchedulingProblem(
                time_cost=mat([[-0.5, 1.0]]), total_shards=1
            )

    def test_energy_matrix_validated_too(self):
        with pytest.raises(ValueError, match="energy_cost"):
            SchedulingProblem(
                time_cost=mat([[1.0, 2.0]]),
                energy_cost=mat([[np.inf, 1.0]]),
                total_shards=1,
            )
        with pytest.raises(ValueError, match="shape"):
            SchedulingProblem(
                time_cost=mat([[1.0, 2.0]]),
                energy_cost=mat([[1.0]]),
                total_shards=1,
            )

    def test_capacity_infeasibility(self):
        with pytest.raises(ValueError, match="infeasible"):
            SchedulingProblem(
                time_cost=mat([[1.0, 2.0], [1.0, 2.0]]),
                total_shards=5,
                capacities=[2, 2],
            )

    def test_effective_capacities_clip_to_slots(self):
        p = SchedulingProblem(
            time_cost=mat([[1.0, 2.0], [1.0, 2.0]]),
            total_shards=2,
            capacities=[100, 1],
        )
        np.testing.assert_array_equal(
            p.effective_capacities(), [2, 1]
        )


class TestRng:
    def test_seed_materialises_generator(self):
        p = synthetic_problem(rng=None)
        p.rng = 42
        a = p.generator().integers(0, 1000, 5)
        b = np.random.default_rng(42).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        p = synthetic_problem()
        p.rng = gen
        assert p.generator() is gen

    def test_fallback_seed(self):
        p = synthetic_problem()
        p.rng = None
        a = p.generator(fallback_seed=3).integers(0, 100, 4)
        b = np.random.default_rng(3).integers(0, 100, 4)
        np.testing.assert_array_equal(a, b)


class TestScoring:
    def test_predicted_makespan_is_bottleneck(self):
        p = SchedulingProblem(
            time_cost=mat([[1.0, 4.0], [2.0, 9.0]]), total_shards=2
        )
        assert p.predicted_makespan([2, 0]) == 4.0
        assert p.predicted_makespan([1, 1]) == 2.0
        assert p.predicted_makespan([0, 0]) == 0.0

    def test_predicted_energy_sums_active_users(self):
        p = SchedulingProblem(
            time_cost=mat([[1.0, 2.0], [1.0, 2.0]]),
            energy_cost=mat([[3.0, 5.0], [2.0, 7.0]]),
            total_shards=2,
        )
        assert p.predicted_energy([1, 1]) == 5.0
        assert p.predicted_energy([2, 0]) == 5.0

    def test_predicted_energy_none_without_matrix(self):
        p = synthetic_problem(with_energy=False)
        assert p.predicted_energy([1] * p.n_users) is None

    def test_from_schedule_scores_against_problem(self, problem):
        counts = np.zeros(problem.n_users, dtype=np.int64)
        counts[0] = problem.total_shards
        sched = Schedule(counts, problem.shard_size, algorithm="x")
        a = Assignment.from_schedule(problem, sched, "x")
        assert a.scheduler == "x"
        assert a.predicted_makespan_s == pytest.approx(
            problem.time_cost[0, problem.total_shards - 1]
        )
        assert a.predicted_energy_j == pytest.approx(
            problem.energy_cost[0, problem.total_shards - 1]
        )
        np.testing.assert_array_equal(a.shard_counts, counts)

"""Engine integration: per-round planning, events, sample overrides."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.engine.events import ClientDispatched, ScheduleComputed
from repro.federated.simulation import (
    FederatedSimulation,
    SimulationConfig,
)
from repro.models import logistic
from repro.sched import (
    EngineSchedulerBinding,
    SchedulingProblem,
    get_scheduler,
)


def make_sim(dataset, n_users=3, **cfg_kw):
    rng = np.random.default_rng(0)
    users = iid_partition(dataset, n_users, rng)
    model = logistic(input_shape=dataset.input_shape, seed=1)
    return FederatedSimulation(
        dataset, model, users,
        config=SimulationConfig(lr=0.05, **cfg_kw),
    )


def matrix_problem(sim, shard_size=50):
    """A synthetic instance sized to the simulation's fleet/data."""
    n = len(sim.users)
    total = sum(u.size for u in sim.users) // shard_size
    k = np.arange(1, total + 1)
    slopes = np.linspace(0.5, 2.0, n)
    time_cost = slopes[:, None] * k[None, :]
    energy_cost = 2.0 * time_cost
    return SchedulingProblem(
        time_cost=time_cost,
        total_shards=total,
        shard_size=shard_size,
        energy_cost=energy_cost,
    )


class TestEngineBinding:
    def test_round_follows_plan_and_emits_event(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        problem = matrix_problem(sim)
        binding = EngineSchedulerBinding("olar", problem=problem)
        sim.engine.bind_scheduler(binding)
        events = []
        sim.events.subscribe(events.append)
        sim.run_round(train=False)

        scheds = [e for e in events if isinstance(e, ScheduleComputed)]
        assert len(scheds) == 1
        assert scheds[0].scheduler == "olar"
        assert scheds[0].round_idx == 1
        assert sum(scheds[0].shard_counts) == problem.total_shards

        planned = binding.assignments[0].samples_per_user()
        dispatched = {
            e.client_id: e.n_samples
            for e in events
            if isinstance(e, ClientDispatched)
        }
        for j, n_samples in dispatched.items():
            assert n_samples == planned[j]
        # planned-out users are not dispatched at all
        for j in range(len(sim.users)):
            if planned[j] == 0:
                assert j not in dispatched

    def test_training_uses_planned_subset_sizes(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        problem = matrix_problem(sim)
        binding = EngineSchedulerBinding("fed_lbap", problem=problem)
        sim.engine.bind_scheduler(binding)
        record = sim.run_round(train=True)
        planned = binding.assignments[0].samples_per_user()
        assert record.participant_count == int((planned > 0).sum())

    def test_unbinding_restores_native_sizes(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        binding = EngineSchedulerBinding(
            "equal", problem=matrix_problem(sim)
        )
        sim.engine.bind_scheduler(binding)
        sim.run_round(train=False)
        sim.engine.bind_scheduler(None)
        events = []
        sim.events.subscribe(events.append)
        sim.run_round(train=False)
        assert not any(
            isinstance(e, ScheduleComputed) for e in events
        )
        dispatched = [
            e for e in events if isinstance(e, ClientDispatched)
        ]
        for e in dispatched:
            assert e.n_samples == sim.users[e.client_id].size

    def test_per_round_chooser(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        problem = matrix_problem(sim)
        chooser = lambda r: "olar" if r % 2 else "equal"  # noqa: E731
        binding = EngineSchedulerBinding(chooser, problem=problem)
        sim.engine.bind_scheduler(binding)
        events = []
        sim.events.subscribe(events.append)
        sim.run_round(train=False)
        sim.run_round(train=False)
        names = [
            e.scheduler
            for e in events
            if isinstance(e, ScheduleComputed)
        ]
        assert names == ["olar", "equal"]

    def test_scheduler_instance_accepted(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        binding = EngineSchedulerBinding(
            get_scheduler("min_energy"),
            problem=matrix_problem(sim),
        )
        sim.engine.bind_scheduler(binding)
        sim.run_round(train=False)
        assert binding.assignments[0].scheduler == "min_energy"

    def test_user_count_mismatch_raises(self, tiny_dataset):
        sim = make_sim(tiny_dataset, n_users=3)
        bad = SchedulingProblem(
            time_cost=np.ones((2, 4)), total_shards=4, shard_size=50
        )
        sim.engine.bind_scheduler(
            EngineSchedulerBinding("equal", problem=bad)
        )
        with pytest.raises(ValueError, match="users"):
            sim.run_round(train=False)

    def test_bad_scheduler_type_raises(self, tiny_dataset):
        sim = make_sim(tiny_dataset)
        binding = EngineSchedulerBinding(
            3.14, problem=matrix_problem(sim)
        )
        sim.engine.bind_scheduler(binding)
        with pytest.raises(TypeError, match="scheduler"):
            sim.run_round(train=False)


class TestRestrictProblem:
    """Membership restriction: the serve re-plan entry point."""

    def _problem(self, n=4, total=8, cap=4):
        k = np.arange(1, total + 1)
        time_cost = np.linspace(0.5, 2.0, n)[:, None] * k[None, :]
        return SchedulingProblem(
            time_cost=time_cost,
            total_shards=total,
            capacities=np.full(n, cap, dtype=np.int64),
        )

    def test_zeroes_non_eligible_capacities(self):
        from repro.sched.binding import restrict_problem

        p = self._problem()
        restricted = restrict_problem(p, [0, 2])
        assert restricted.capacities.tolist() == [4, 0, 4, 0]
        # the original instance is untouched
        assert p.capacities.tolist() == [4, 4, 4, 4]
        # budget is preserved: the workload does not shrink
        assert restricted.total_shards == p.total_shards

    def test_restricted_schedule_covers_only_eligible(self):
        from repro.sched.binding import restrict_problem

        p = self._problem()
        restricted = restrict_problem(p, [1, 3])
        a = get_scheduler("olar").schedule(restricted)
        counts = np.asarray(a.shard_counts)
        assert counts[0] == 0 and counts[2] == 0
        assert counts.sum() == p.total_shards

    def test_infeasible_restriction_is_loud(self):
        from repro.sched.binding import restrict_problem

        p = self._problem(n=4, total=8, cap=4)
        with pytest.raises(RuntimeError, match="infeasible"):
            restrict_problem(p, [0])  # 4 < 8 shards

    def test_uncapped_problem_defaults_to_budget(self):
        from repro.sched.binding import restrict_problem

        k = np.arange(1, 7)
        p = SchedulingProblem(
            time_cost=np.ones((3, 6)) * k[None, :],
            total_shards=6,
        )
        restricted = restrict_problem(p, [2])
        # effective capacity of an uncapped user is the full budget,
        # so one survivor can still absorb everything
        assert restricted.capacities.tolist() == [0, 0, 6]


class TestProblemFromEngine:
    def test_builds_from_devices_and_users(self, tiny_dataset):
        from repro.device.registry import make_device
        from repro.sched.binding import problem_from_engine

        rng = np.random.default_rng(0)
        users = iid_partition(tiny_dataset, 3, rng)
        devices = [
            make_device(n, jitter=0.0)
            for n in ("nexus6", "mate10", "pixel2")
        ]
        model = logistic(
            input_shape=tiny_dataset.input_shape, seed=1
        )
        sim = FederatedSimulation(
            tiny_dataset, model, users, devices=devices,
            config=SimulationConfig(lr=0.05),
        )
        p = problem_from_engine(sim.engine, shard_size=100)
        assert p.n_users == 3
        total = sum(u.size for u in users)
        assert p.total_shards == total // 100
        assert p.energy_cost is not None
        assert p.meta["devices"] == ("nexus6", "mate10", "pixel2")
        # the matrix is usable by every registered scheduler
        a = get_scheduler("olar").schedule(p)
        assert a.schedule.total_shards == p.total_shards

    def test_requires_devices(self, tiny_dataset):
        from repro.sched.binding import problem_from_engine

        sim = make_sim(tiny_dataset)
        with pytest.raises(ValueError, match="devices"):
            problem_from_engine(sim.engine)

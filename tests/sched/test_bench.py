"""Comparison harness: rows, events, error isolation, table rendering."""

import numpy as np
import pytest

from repro.engine.events import EventBus
from repro.sched import available_schedulers
from repro.sched.bench import CompareRow, compare, format_table, sweep

from .conftest import synthetic_problem


class TestCompare:
    def test_runs_every_registered_scheduler_by_default(self, problem):
        rows = compare(problem)
        assert [r.scheduler for r in rows] == list(
            available_schedulers()
        )
        for r in rows:
            assert r.error is None, f"{r.scheduler}: {r.error}"
            assert r.makespan_s > 0
            assert r.energy_j > 0
            assert 1 <= r.participants <= problem.n_users
            assert r.runtime_ms >= 0

    def test_scheduler_subset(self, problem):
        rows = compare(problem, ["olar", "equal"])
        assert [r.scheduler for r in rows] == ["olar", "equal"]

    def test_exact_solvers_beat_equal_split(self, problem):
        rows = {r.scheduler: r for r in compare(problem)}
        assert (
            rows["olar"].makespan_s
            <= rows["equal"].makespan_s + 1e-9
        )
        assert (
            rows["fed_lbap"].makespan_s
            <= rows["equal"].makespan_s + 1e-9
        )
        assert (
            rows["min_energy"].energy_j
            <= rows["equal"].energy_j + 1e-9
        )

    def test_missing_energy_yields_error_row_not_abort(self):
        p = synthetic_problem(with_energy=False)
        rows = {r.scheduler: r for r in compare(p)}
        assert rows["min_energy"].error is not None
        assert "energy" in rows["min_energy"].error
        assert rows["olar"].error is None
        assert rows["olar"].energy_j is None

    def test_strict_mode_propagates(self):
        p = synthetic_problem(with_energy=False)
        with pytest.raises(ValueError, match="energy"):
            compare(p, ["min_energy"], strict=True)

    def test_unknown_scheduler_is_error_row(self, problem):
        rows = compare(problem, ["olar", "bogus"])
        assert rows[1].scheduler == "bogus"
        assert rows[1].error is not None

    def test_emits_schedule_computed_events(self, problem):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        compare(problem, ["olar", "min_energy"], bus=bus)
        assert [e.kind for e in seen] == ["schedule_computed"] * 2
        assert seen[0].scheduler == "olar"
        assert sum(seen[0].shard_counts) == problem.total_shards
        d = seen[0].to_dict()
        assert d["event"] == "schedule_computed"
        assert d["predicted_makespan_s"] == pytest.approx(
            seen[0].predicted_makespan_s
        )


class TestSweep:
    def test_grid_tags_instances(self):
        # device-name testbeds keep the sweep fast (3 tiny fleets)
        rows = sweep(
            [["nexus6", "pixel2"]],
            [2000, 4000],
            schedulers=["olar", "equal"],
            shard_size=500,
        )
        tags = {r.instance for r in rows}
        assert len(tags) == 2
        assert all("D=2000" in t or "D=4000" in t for t in tags)
        assert len(rows) == 4


class TestFormatTable:
    def test_single_instance_layout(self, problem):
        text = format_table(compare(problem, ["olar", "equal"]))
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["scheduler", "n", "makespan_s"]
        assert "instance" not in lines[0]
        assert any(line.startswith("olar") for line in lines)

    def test_sweep_layout_includes_instance_column(self):
        rows = [
            CompareRow(
                scheduler="olar",
                makespan_s=1.0,
                energy_j=None,
                accuracy_cost=0.0,
                participants=2,
                runtime_ms=0.1,
                instance="tb1/D=2000",
            )
        ]
        text = format_table(rows)
        assert text.splitlines()[0].split()[0] == "instance"
        assert "tb1/D=2000" in text
        assert "  -" in text  # missing energy renders as a dash

    def test_error_rows_render(self):
        rows = [
            CompareRow(
                scheduler="min_energy",
                makespan_s=None,
                energy_j=None,
                accuracy_cost=None,
                participants=None,
                runtime_ms=0.2,
                error="needs energy_cost",
            )
        ]
        text = format_table(rows)
        assert "error: needs energy_cost" in text

"""Linear-regression tests."""

import numpy as np
import pytest

from repro.profiling.regression import LinearRegressor


class TestLinearRegressor:
    def test_exact_recovery_on_linear_data(self, rng):
        x = rng.normal(size=(50, 2))
        y = 3.0 + 2.0 * x[:, 0] - 1.5 * x[:, 1]
        reg = LinearRegressor().fit(x, y)
        assert reg.intercept_ == pytest.approx(3.0, abs=1e-9)
        np.testing.assert_allclose(reg.coef_, [2.0, -1.5], atol=1e-9)
        assert reg.r2(x, y) == pytest.approx(1.0)

    def test_noisy_fit_good_r2(self, rng):
        x = rng.normal(size=(200, 2))
        y = 1.0 + x @ np.array([2.0, 3.0]) + rng.normal(0, 0.1, 200)
        reg = LinearRegressor().fit(x, y)
        assert reg.r2(x, y) > 0.95

    def test_quadratic_features(self, rng):
        x = rng.uniform(0, 5, size=(80, 1))
        y = 1.0 + 2.0 * x[:, 0] + 0.5 * x[:, 0] ** 2
        lin = LinearRegressor().fit(x, y)
        quad = LinearRegressor(quadratic=True).fit(x, y)
        assert quad.r2(x, y) > 0.999
        assert quad.r2(x, y) > lin.r2(x, y)

    def test_predict_shape(self, rng):
        reg = LinearRegressor().fit(rng.normal(size=(10, 3)), rng.normal(size=10))
        out = reg.predict(rng.normal(size=(4, 3)))
        assert out.shape == (4,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict([[1.0]])

    def test_feature_count_mismatch_raises(self, rng):
        reg = LinearRegressor().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ValueError):
            reg.predict(rng.normal(size=(3, 4)))

    def test_underdetermined_raises(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit([[1.0, 2.0]], [1.0])

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            LinearRegressor().fit(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_constant_target_r2(self):
        x = np.arange(5.0).reshape(-1, 1)
        y = np.full(5, 2.0)
        reg = LinearRegressor().fit(x, y)
        assert reg.r2(x, y) == 1.0

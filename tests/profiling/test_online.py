"""Online RLS profile tests."""

import numpy as np
import pytest

from repro.profiling.online import OnlineTimeProfile


class TestOnlineTimeProfile:
    def test_recovers_linear_relation(self, rng):
        prof = OnlineTimeProfile(forgetting=1.0)
        for _ in range(50):
            n = float(rng.uniform(100, 5000))
            prof.observe(n, 2.0 + 0.01 * n)
        assert prof.predict(3000) == pytest.approx(32.0, rel=1e-3)
        np.testing.assert_allclose(
            prof.theta, [2.0, 0.01], rtol=1e-3, atol=1e-3
        )

    def test_forgetting_tracks_drift(self, rng):
        """After the device starts throttling (slope doubles), the
        forgetting profile converges to the new regime while ordinary
        RLS stays anchored to the average."""
        adaptive = OnlineTimeProfile(forgetting=0.8)
        frozen = OnlineTimeProfile(forgetting=1.0)
        for _ in range(40):
            n = float(rng.uniform(500, 4000))
            t = 0.01 * n
            adaptive.observe(n, t)
            frozen.observe(n, t)
        for _ in range(40):
            n = float(rng.uniform(500, 4000))
            t = 0.02 * n  # throttled regime
            adaptive.observe(n, t)
            frozen.observe(n, t)
        truth = 0.02 * 3000
        assert abs(adaptive.predict(3000) - truth) < abs(
            frozen.predict(3000) - truth
        )
        assert adaptive.predict(3000) == pytest.approx(truth, rel=0.1)

    def test_seeded_from_offline_curve(self):
        prof = OnlineTimeProfile(initial_curve=lambda n: 1.0 + 0.005 * n)
        assert prof.predict(2000) == pytest.approx(11.0, rel=0.05)
        assert prof.n_observations == 2

    def test_curve_is_live(self):
        prof = OnlineTimeProfile()
        curve = prof.curve()
        prof.observe(1000, 10.0)
        prof.observe(2000, 20.0)
        assert curve(1500) == pytest.approx(15.0, rel=0.05)

    def test_prediction_floor(self):
        prof = OnlineTimeProfile()
        assert prof.predict(100) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineTimeProfile(forgetting=0.0)
        with pytest.raises(ValueError):
            OnlineTimeProfile(prior_scale=0.0)
        prof = OnlineTimeProfile()
        with pytest.raises(ValueError):
            prof.observe(0, 1.0)
        with pytest.raises(ValueError):
            prof.observe(100, -1.0)

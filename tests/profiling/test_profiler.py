"""Two-step profiler tests against the device simulator."""

import numpy as np
import pytest

from repro.device.registry import make_device
from repro.device.workload import TrainingWorkload
from repro.models import MNIST_SHAPE, lenet, model_training_flops
from repro.models.zoo import profiling_family
from repro.profiling import (
    DeviceProfile,
    bootstrap_curve,
    build_profile,
    measure_grid,
)


@pytest.fixture(scope="module")
def mate10_profile():
    device = make_device("mate10", jitter=0.0)
    family = profiling_family(
        input_shape=MNIST_SHAPE,
        conv_widths=(4, 8, 16),
        dense_widths=(32, 256),
    )
    return build_profile(device, family, data_sizes=(500, 1000, 2000))


class TestMeasureGrid:
    def test_grid_size(self):
        device = make_device("pixel2", jitter=0.0)
        family = profiling_family(conv_widths=(4, 8), dense_widths=(32,))
        ms = measure_grid(device, family, (200, 400))
        assert len(ms) == 4
        assert all(m.time_s > 0 for m in ms)

    def test_cold_start_times_repeatable(self):
        device = make_device("pixel2", jitter=0.0)
        family = profiling_family(conv_widths=(4,), dense_widths=(32,))
        a = measure_grid(device, family, (300,))[0].time_s
        b = measure_grid(device, family, (300,))[0].time_s
        assert a == pytest.approx(b)

    def test_validation(self):
        device = make_device("pixel2")
        with pytest.raises(ValueError):
            measure_grid(device, [], (100,))
        family = profiling_family(conv_widths=(4,), dense_widths=(32,))
        with pytest.raises(ValueError):
            measure_grid(device, family, (0,))


class TestTwoStepProfile:
    def test_step1_fits_tightly(self, mate10_profile):
        """Fig. 4(a): time is near-linear in (conv, dense) params."""
        for d, r2 in mate10_profile.step1_r2().items():
            assert r2 > 0.95, f"poor step-1 fit at {d} samples"

    def test_curve_monotone_nondecreasing(self, mate10_profile):
        curve = mate10_profile.time_curve(lenet())
        xs = [100, 500, 1000, 3000, 6000]
        ys = [curve(x) for x in xs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert all(y > 0 for y in ys)

    def test_holdout_prediction_close(self, mate10_profile):
        """Fig. 4(b): the step-2 curve tracks direct measurement for an
        architecture outside the profiled family."""
        model = lenet()
        curve = mate10_profile.time_curve(model)
        device = make_device("mate10", jitter=0.0)
        flops = model_training_flops(model)
        for n in (800, 1600):
            device.reset()
            measured = device.run_workload(
                TrainingWorkload(flops, n, 20), record=False
            ).total_time_s
            assert curve(n) == pytest.approx(measured, rel=0.3)

    def test_needs_three_architectures(self):
        device = make_device("mate10")
        family = profiling_family(conv_widths=(4,), dense_widths=(32,))
        with pytest.raises(ValueError):
            build_profile(device, family[:1], (100,))


class TestBootstrapCurve:
    def test_linear_device_near_exact(self):
        """On a non-throttling device the bootstrap curve is accurate."""
        device = make_device("pixel2", jitter=0.0)
        model = lenet()
        curve = bootstrap_curve(device, model, (500, 1000, 2000))
        device.reset()
        measured = device.run_workload(
            TrainingWorkload(model_training_flops(model), 1500, 20),
            record=False,
        ).total_time_s
        assert curve(1500) == pytest.approx(measured, rel=0.05)

    def test_throttling_device_linear_fit_interpolates(self):
        """On the Nexus 6P the measured curve is convex (cold -> hot), so
        a least-squares line sits *above* the truth mid-range."""
        device = make_device("nexus6p", jitter=0.0)
        model = lenet()
        curve = bootstrap_curve(device, model, (500, 3000, 6000, 12000))
        flops = model_training_flops(model)

        def measured(n):
            device.reset()
            return device.run_workload(
                TrainingWorkload(flops, n, 20), record=False
            ).total_time_s

        assert curve(3000) > measured(3000)

    def test_quadratic_improves_throttled_fit(self):
        device = make_device("nexus6p", jitter=0.0)
        model = lenet()
        sizes = (500, 1500, 3000, 6000, 9000)
        lin = bootstrap_curve(device, model, sizes)
        quad = bootstrap_curve(device, model, sizes, quadratic=True)
        flops = model_training_flops(model)
        device.reset()
        truth = device.run_workload(
            TrainingWorkload(flops, 4500, 20), record=False
        ).total_time_s
        assert abs(quad(4500) - truth) <= abs(lin(4500) - truth)

    def test_needs_enough_sizes(self):
        device = make_device("pixel2")
        with pytest.raises(ValueError):
            bootstrap_curve(device, lenet(), (500,))

    def test_curve_floor_positive(self):
        device = make_device("pixel2", jitter=0.0)
        curve = bootstrap_curve(device, lenet(), (500, 1000))
        assert curve(-1e9) > 0


class TestQuadraticTwoStep:
    def test_quadratic_step2_on_linear_device_matches_linear(self):
        """On a non-throttling device the quadratic term fits ~0 and the
        curve agrees with the linear two-step profile."""
        device = make_device("pixel2", jitter=0.0)
        family = profiling_family(
            input_shape=MNIST_SHAPE,
            conv_widths=(4, 8, 16),
            dense_widths=(32, 256),
        )
        lin = build_profile(device, family, (500, 1000, 2000, 4000))
        quad = build_profile(
            device, family, (500, 1000, 2000, 4000),
            quadratic_step2=True,
        )
        model = lenet()
        c_lin = lin.time_curve(model)
        c_quad = quad.time_curve(model)
        for n in (800, 2500):
            assert c_quad(n) == pytest.approx(c_lin(n), rel=0.05)

"""The service-clock seam: real by default, manual in tests."""

import time

import pytest

from repro.serve import ManualClock, NowFn, now


def test_now_reads_the_wall_clock():
    before = time.time()
    t = now()
    after = time.time()
    assert before <= t <= after


def test_now_satisfies_the_seam_type():
    fn: NowFn = now
    assert isinstance(fn(), float)


def test_manual_clock_starts_where_told():
    assert ManualClock()() == 0.0
    assert ManualClock(start_s=42.5)() == 42.5


def test_manual_clock_advances():
    clock = ManualClock()
    clock.advance(3.0)
    clock.advance(0.5)
    assert clock() == 3.5
    clock.set(10.0)
    assert clock() == 10.0


def test_manual_clock_never_runs_backwards():
    clock = ManualClock(start_s=5.0)
    with pytest.raises(ValueError, match="backwards"):
        clock.advance(-1.0)
    with pytest.raises(ValueError, match="backwards"):
        clock.set(4.0)
    # failed moves leave the clock untouched
    assert clock() == 5.0

"""Request-body validation: every malformed body is a SchemaError."""

import pytest

from repro.serve import SchemaError
from repro.serve.schemas import (
    HeartbeatRequest,
    RegisterRequest,
    RoundRequest,
)


class TestRegisterRequest:
    def test_minimal(self):
        req = RegisterRequest.from_dict({"device_id": "phone-1"})
        assert req.device_id == "phone-1"
        assert req.data_size is None
        assert req.battery_soc is None

    def test_full(self):
        req = RegisterRequest.from_dict(
            {"device_id": "p", "data_size": 500, "battery_soc": 0.8}
        )
        assert req.data_size == 500
        assert req.battery_soc == 0.8

    def test_missing_device_id(self):
        with pytest.raises(SchemaError, match="device_id"):
            RegisterRequest.from_dict({})

    def test_empty_device_id(self):
        with pytest.raises(SchemaError, match="non-empty"):
            RegisterRequest.from_dict({"device_id": ""})

    def test_unknown_key_is_named(self):
        with pytest.raises(SchemaError, match="device-id"):
            RegisterRequest.from_dict({"device-id": "typo"})

    def test_data_size_must_be_positive_int(self):
        with pytest.raises(SchemaError, match="data_size"):
            RegisterRequest.from_dict(
                {"device_id": "p", "data_size": 0}
            )
        with pytest.raises(SchemaError, match="integer"):
            RegisterRequest.from_dict(
                {"device_id": "p", "data_size": "500"}
            )
        # bool is an int subclass: still rejected
        with pytest.raises(SchemaError, match="integer"):
            RegisterRequest.from_dict(
                {"device_id": "p", "data_size": True}
            )

    def test_soc_range(self):
        for bad in (-0.1, 1.5, "full", True):
            with pytest.raises(SchemaError):
                RegisterRequest.from_dict(
                    {"device_id": "p", "battery_soc": bad}
                )
        req = RegisterRequest.from_dict(
            {"device_id": "p", "battery_soc": 1}
        )
        assert req.battery_soc == 1.0


class TestHeartbeatRequest:
    def test_empty_body_ok(self):
        assert HeartbeatRequest.from_dict({}).battery_soc is None

    def test_soc(self):
        assert (
            HeartbeatRequest.from_dict({"battery_soc": 0.5}).battery_soc
            == 0.5
        )

    def test_unknown_key(self):
        with pytest.raises(SchemaError, match="unknown keys"):
            HeartbeatRequest.from_dict({"soc": 0.5})


class TestRoundRequest:
    def test_defaults(self):
        req = RoundRequest.from_dict({})
        assert req.scheduler is None
        assert req.cohort_size is None

    def test_explicit(self):
        req = RoundRequest.from_dict(
            {"scheduler": "greedy", "cohort_size": 8}
        )
        assert req.scheduler == "greedy"
        assert req.cohort_size == 8

    def test_cohort_size_minimum(self):
        with pytest.raises(SchemaError, match=">= 1"):
            RoundRequest.from_dict({"cohort_size": 0})

    def test_scheduler_type(self):
        with pytest.raises(SchemaError, match="string"):
            RoundRequest.from_dict({"scheduler": 3})

"""Simulated devices: seeded churn traces and the in-process driver."""

import asyncio

import pytest

from repro.serve import ChurnEvent, ManualClock, SimClientDriver, churn_trace

from .conftest import make_app


def test_trace_is_a_pure_function_of_the_seed():
    a = churn_trace(20, horizon_s=100.0, seed=7)
    b = churn_trace(20, horizon_s=100.0, seed=7)
    c = churn_trace(20, horizon_s=100.0, seed=8)
    assert a == b
    assert a != c


def test_trace_shape():
    trace = churn_trace(10, horizon_s=100.0, seed=0)
    assert sorted(e.at_s for e in trace) == [e.at_s for e in trace]
    joins = [e for e in trace if e.action == "join"]
    assert len(joins) == 10
    assert {e.device_id for e in joins} == {
        f"sim-{i:04d}" for i in range(10)
    }
    # joins land in the first quarter by default
    assert max(e.at_s for e in joins) <= 25.0
    # nothing escapes the horizon
    assert all(e.at_s < 100.0 or e.action == "leave" for e in trace)


def test_trace_validation():
    with pytest.raises(ValueError, match="positive"):
        churn_trace(0, horizon_s=10.0)
    with pytest.raises(ValueError, match="positive"):
        churn_trace(5, horizon_s=-1.0)
    with pytest.raises(ValueError, match="frac"):
        churn_trace(5, horizon_s=10.0, leave_frac=0.9, silence_frac=0.9)


def test_churn_event_rejects_unknown_actions():
    with pytest.raises(ValueError, match="unknown churn action"):
        ChurnEvent(1.0, "reboot", "sim-0000")


def test_driver_is_deterministic_end_to_end():
    def run(seed):
        app, clock = make_app(n=32)
        trace = churn_trace(
            20, horizon_s=200.0, seed=seed, heartbeat_every_s=4.0
        )
        driver = SimClientDriver(app, clock, trace)
        asyncio.run(driver.run())
        return app.registry.counts(), driver.statuses()

    counts_a, statuses_a = run(3)
    counts_b, statuses_b = run(3)
    assert counts_a == counts_b
    assert statuses_a == statuses_b
    # churn actually happened: somebody joined, somebody died
    assert sum(counts_a.values()) >= 20
    assert counts_a["dead"] > 0


def test_driver_sweeps_catch_silent_devices():
    app, clock = make_app(n=8)  # stale at 10s, dead at 30s
    trace = [ChurnEvent(0.0, "join", "sim-0000")]  # then silence
    driver = SimClientDriver(app, clock, trace)
    asyncio.run(driver.run_until(29.0))
    assert app.registry.get("sim-0000").state == "stale"
    asyncio.run(driver.run_until(31.0))
    assert app.registry.get("sim-0000").state == "dead"
    assert app.registry.get("sim-0000").lost_reason == "timeout"


def test_driver_delivers_over_a_transport_seam():
    app, clock = make_app(n=8)
    calls = []

    async def transport(method, path, body):
        calls.append((method, path))
        return app.handle_request(method, path, body)

    trace = [
        ChurnEvent(0.0, "join", "a"),
        ChurnEvent(1.0, "heartbeat", "a"),
        ChurnEvent(2.0, "leave", "a"),
    ]
    driver = SimClientDriver(app, clock, trace, transport=transport)
    asyncio.run(driver.run())
    assert [m for m, _ in calls] == ["POST", "POST", "DELETE"]
    assert driver.statuses() == {
        "join": [201],
        "heartbeat": [200],
        "leave": [200],
    }


def test_driver_validates_sweep_cadence():
    app, clock = make_app(n=4)
    with pytest.raises(ValueError, match="sweep_every_s"):
        SimClientDriver(app, clock, [], sweep_every_s=0.0)


def test_driver_requires_manual_clock_semantics():
    clock = ManualClock(start_s=5.0)
    app, _ = make_app(n=4, clock=clock)
    driver = SimClientDriver(app, clock, [])
    asyncio.run(driver.run_until(10.0))
    assert clock() == 10.0

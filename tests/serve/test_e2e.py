"""End-to-end acceptance: a full service lifecycle, fully deterministic.

The scenario the issue pins: boot the app on a manual clock, churn a
simulated device population through it, run **three** training rounds
with a device loss injected *mid-round* (between plan and dispatch),
and verify the orchestrator's contract:

* the loss invalidates the plan and the scheduler is re-invoked
  (``DeviceLost`` → re-plan);
* no computed schedule — first plan or re-plan — ever names a dead
  device;
* every completed round commits exactly one model version, lineage
  unbroken back to genesis;
* ``/metrics`` exposes every ``repro_serve_*`` instrument.

No real sleeps, no wall clock, no sockets: identical on every run.
"""

import asyncio

from repro.engine.events import DeviceLost, RoundCompleted
from repro.serve import SimClientDriver, churn_trace

from .conftest import make_app

N_DEVICES = 24
N_ROUNDS = 3
HORIZON_S = 240.0

SERVE_METRICS = (
    "repro_serve_devices",
    "repro_serve_heartbeat_lag_seconds",
    "repro_serve_replans_total",
    "repro_serve_rounds_in_flight",
    "repro_serve_requests_total",
)


def run_lifecycle():
    app, clock = make_app(n=32)
    events = []
    app.bus.subscribe(events.append)
    trace = churn_trace(
        N_DEVICES,
        horizon_s=HORIZON_S,
        seed=11,
        heartbeat_every_s=3.0,
        join_window_s=30.0,
    )
    driver = SimClientDriver(app, clock, trace)

    injected = []

    def inject_loss(phase, job):
        # at round 2's *planned* checkpoint, a scheduled device
        # deregisters mid-round — after the plan, before dispatch
        if phase != "planned" or job.round_id != 2 or injected:
            return
        plan = app.coordinator.plan_log[-1]
        for record in app.registry.records.values():
            if (
                record.client_id in plan.scheduled
                and record.state != "dead"
            ):
                app.registry.deregister(record.device_id)
                injected.append(record.client_id)
                return

    app.coordinator.churn_hook = inject_loss

    async def lifecycle():
        await driver.run_until(30.0)  # everyone joins
        gap_s = (HORIZON_S - 30.0) / N_ROUNDS
        jobs = []
        for _ in range(N_ROUNDS):
            status, payload = app.handle_request(
                "POST", "/v1/rounds", {}
            )
            assert status == 202
            jobs.extend(await app.run_pending())
            await driver.run_until(clock() + gap_s)
        return jobs

    jobs = asyncio.run(lifecycle())
    return app, driver, events, jobs, injected


def test_full_service_lifecycle():
    app, driver, events, jobs, injected = run_lifecycle()

    # -- three completed rounds --------------------------------------------
    assert len(jobs) == N_ROUNDS
    assert [j.status for j in jobs] == ["completed"] * N_ROUNDS
    completions = [e for e in events if isinstance(e, RoundCompleted)]
    assert len(completions) == N_ROUNDS

    # -- the injected mid-round loss forced a re-plan ----------------------
    assert len(injected) == 1
    round2 = jobs[1]
    assert round2.replans >= 1
    losses = [e for e in events if isinstance(e, DeviceLost)]
    assert injected[0] in {e.client_id for e in losses}
    # the victim is gone from round 2's adopted plan and provenance
    final_plan = [
        p for p in app.coordinator.plan_log if p.round_id == 2
    ][-1]
    assert injected[0] not in final_plan.scheduled
    version2 = app.models.get(round2.model_version)
    assert injected[0] not in version2.metadata["participants"]

    # -- no schedule, ever, named a dead device ----------------------------
    assert app.coordinator.plan_log  # plans were actually recorded
    assert all(
        p.dead_scheduled == 0 for p in app.coordinator.plan_log
    )
    # and strictly more solves than rounds (the re-plan is real)
    assert len(app.coordinator.plan_log) > N_ROUNDS

    # -- exactly one model version per completed round ---------------------
    assert [j.model_version for j in jobs] == [1, 2, 3]
    assert len(app.models) == N_ROUNDS + 1  # + genesis
    assert app.models.lineage(N_ROUNDS) == [3, 2, 1, 0]
    for job in jobs:
        meta = app.models.get(job.model_version).metadata
        assert meta["round_id"] == job.round_id
        assert meta["participants"]

    # -- /metrics exposes the full serve instrument set --------------------
    status, text = app.handle_request("GET", "/metrics", None)
    assert status == 200
    for name in SERVE_METRICS:
        assert name in text
    assert "repro_serve_replans_total 1" in text


def test_lifecycle_is_deterministic():
    app_a, _, events_a, jobs_a, injected_a = run_lifecycle()
    app_b, _, events_b, jobs_b, injected_b = run_lifecycle()
    assert injected_a == injected_b
    assert [j.record for j in jobs_a] == [j.record for j in jobs_b]
    assert app_a.registry.counts() == app_b.registry.counts()
    assert app_a.coordinator.plan_log == app_b.coordinator.plan_log
    assert len(events_a) == len(events_b)

"""Socket smoke: the asyncio HTTP layer end to end on an ephemeral port.

These are the only serve tests that open a real socket; everything runs
on one event loop (server and client), so they are still sleep-free.
The heartbeat monitor is disabled — the app sits on a manual clock.
"""

import asyncio

from repro.serve.httpd import (
    MAX_BODY_BYTES,
    ServeHttpServer,
    http_request,
)

from .conftest import make_app


def with_server(fn):
    """Run ``fn(server, port)`` against a booted server, then stop."""

    async def runner():
        app, clock = make_app()
        server = ServeHttpServer(app, port=0, monitor=False)
        port = await server.start()
        try:
            return await fn(app, clock, server, port)
        finally:
            await server.stop()

    return asyncio.run(runner())


def test_ephemeral_port_is_resolved():
    async def check(app, clock, server, port):
        assert port > 0
        assert server.port == port

    with_server(check)


def test_register_heartbeat_over_http():
    async def check(app, clock, server, port):
        status, payload = await http_request(
            "127.0.0.1",
            port,
            "POST",
            "/v1/devices/register",
            {"device_id": "phone-1", "data_size": 400},
        )
        assert status == 201
        assert payload["client_id"] == 0
        clock.advance(1.5)
        status, payload = await http_request(
            "127.0.0.1", port, "POST", "/v1/devices/phone-1/heartbeat"
        )
        assert status == 200
        assert payload["state"] == "active"

    with_server(check)


def test_rounds_run_on_the_server_loop():
    async def check(app, clock, server, port):
        for i in range(4):
            await http_request(
                "127.0.0.1",
                port,
                "POST",
                "/v1/devices/register",
                {"device_id": f"d{i}", "data_size": 600},
            )
        status, payload = await http_request(
            "127.0.0.1", port, "POST", "/v1/rounds", {}
        )
        assert status == 202
        await server.round_tasks_done()
        status, payload = await http_request(
            "127.0.0.1", port, "GET", "/v1/rounds/1"
        )
        assert status == 200
        assert payload["status"] == "completed"
        assert payload["model_version"] == 1

    with_server(check)


def test_metrics_scrape_is_text():
    async def check(app, clock, server, port):
        status, text = await http_request(
            "127.0.0.1", port, "GET", "/metrics"
        )
        assert status == 200
        assert isinstance(text, str)
        assert "repro_serve_devices" in text

    with_server(check)


def test_malformed_json_is_400():
    async def check(app, clock, server, port):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        raw = b"{nope"
        writer.write(
            b"POST /v1/devices/register HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(raw)}\r\n\r\n".encode()
            + raw
        )
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        writer.close()
        await writer.wait_closed()

    with_server(check)


def test_oversized_body_is_rejected():
    async def check(app, clock, server, port):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        writer.write(
            b"POST /v1/rounds HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        writer.close()
        await writer.wait_closed()

    with_server(check)


def test_query_strings_are_ignored():
    async def check(app, clock, server, port):
        status, payload = await http_request(
            "127.0.0.1", port, "GET", "/healthz?verbose=1"
        )
        assert status == 200
        assert payload["ok"] is True

    with_server(check)

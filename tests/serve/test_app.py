"""Control-plane routing: transport-free request/response contract."""

import asyncio

import pytest

from repro.serve import SchemaError, ServeApp, ServeConfig
from repro.serve.app import parse_json_body

from .conftest import make_app, register_n


def test_default_config_builds_a_synthetic_fleet():
    app = ServeApp(ServeConfig(fleet_size=4))
    assert app.fleet.n == 4
    assert app.registry.live_count() == 0  # unclaimed until register


def test_register_route_returns_the_record():
    app, _ = make_app()
    status, payload = app.handle_request(
        "POST",
        "/v1/devices/register",
        {"device_id": "phone-1", "data_size": 500},
    )
    assert status == 201
    assert payload["device_id"] == "phone-1"
    assert payload["client_id"] == 0
    assert payload["state"] == "registered"


def test_register_validation_maps_to_400():
    app, _ = make_app()
    status, payload = app.handle_request(
        "POST", "/v1/devices/register", {"device-id": "typo"}
    )
    assert status == 400
    assert "device-id" in payload["error"]


def test_duplicate_register_maps_to_409():
    app, _ = make_app()
    body = {"device_id": "phone-1"}
    app.handle_request("POST", "/v1/devices/register", body)
    status, _ = app.handle_request(
        "POST", "/v1/devices/register", body
    )
    assert status == 409


def test_heartbeat_route_reports_state_and_lag():
    app, clock = make_app()
    register_n(app, 1)
    clock.advance(2.0)
    status, payload = app.handle_request(
        "POST", "/v1/devices/dev-000/heartbeat", {"battery_soc": 0.7}
    )
    assert status == 200
    assert payload == {
        "device_id": "dev-000",
        "state": "active",
        "lag_s": pytest.approx(2.0),
    }


def test_heartbeat_unknown_and_dead():
    app, _ = make_app()
    status, _ = app.handle_request(
        "POST", "/v1/devices/ghost/heartbeat", {}
    )
    assert status == 404
    register_n(app, 1)
    app.handle_request("DELETE", "/v1/devices/dev-000", None)
    status, _ = app.handle_request(
        "POST", "/v1/devices/dev-000/heartbeat", {}
    )
    assert status == 410


def test_device_listing_counts_and_snapshot():
    app, _ = make_app()
    register_n(app, 3)
    app.handle_request("DELETE", "/v1/devices/dev-001", None)
    status, payload = app.handle_request("GET", "/v1/devices", None)
    assert status == 200
    assert payload["counts"]["registered"] == 2
    assert payload["counts"]["dead"] == 1
    assert len(payload["devices"]) == 3


def test_round_submit_is_async_202():
    app, _ = make_app()
    register_n(app, 4)
    status, payload = app.handle_request("POST", "/v1/rounds", {})
    assert status == 202
    assert payload["round_id"] == 1
    assert payload["status"] == "pending"
    # nothing ran yet; the transport drains the queue
    jobs = asyncio.run(app.run_pending())
    assert jobs[0].status == "completed"
    status, payload = app.handle_request("GET", "/v1/rounds/1", None)
    assert status == 200
    assert payload["status"] == "completed"
    assert payload["model_version"] == 1


def test_round_request_overrides_scheduler():
    app, _ = make_app()
    register_n(app, 4)
    status, _ = app.handle_request(
        "POST", "/v1/rounds", {"scheduler": "olar", "cohort_size": 2}
    )
    assert status == 202
    job = asyncio.run(app.run_pending())[0]
    assert job.scheduler == "olar"
    # the cohort caps participation; the scheduler may concentrate
    assert 1 <= job.record["participant_count"] <= 2


def test_unknown_round_is_404():
    app, _ = make_app()
    status, _ = app.handle_request("GET", "/v1/rounds/7", None)
    assert status == 404


def test_cancel_route_lifecycle():
    app, _ = make_app()
    register_n(app, 4)
    app.handle_request("POST", "/v1/rounds", {})
    status, payload = app.handle_request(
        "POST", "/v1/rounds/1/cancel", None
    )
    assert status == 200
    job = asyncio.run(app.run_pending())[0]
    assert job.status == "cancelled"
    # cancelling a finished round is a conflict
    status, payload = app.handle_request(
        "POST", "/v1/rounds/1/cancel", None
    )
    assert status == 409
    assert "cancelled" in payload["error"]
    status, _ = app.handle_request("POST", "/v1/rounds/9/cancel", None)
    assert status == 404


def test_model_routes():
    app, _ = make_app()
    status, payload = app.handle_request(
        "GET", "/v1/models/latest", None
    )
    assert status == 200
    assert payload["version"] == 0
    register_n(app, 4)
    app.handle_request("POST", "/v1/rounds", {})
    asyncio.run(app.run_pending())
    status, payload = app.handle_request(
        "GET", "/v1/models/latest", None
    )
    assert payload["version"] == 1
    assert payload["parent"] == 0
    status, payload = app.handle_request("GET", "/v1/models/0", None)
    assert status == 200 and payload["metadata"]["genesis"] is True
    status, _ = app.handle_request("GET", "/v1/models/9", None)
    assert status == 404


def test_metrics_route_is_prometheus_text():
    app, _ = make_app()
    register_n(app, 2)
    status, text = app.handle_request("GET", "/metrics", None)
    assert status == 200
    assert isinstance(text, str)
    for name in (
        "repro_serve_devices",
        "repro_serve_heartbeat_lag_seconds",
        "repro_serve_replans_total",
        "repro_serve_rounds_in_flight",
        "repro_serve_requests_total",
    ):
        assert name in text
    assert 'mode="serve"' in text


def test_healthz():
    app, _ = make_app()
    status, payload = app.handle_request("GET", "/healthz", None)
    assert status == 200
    assert payload["ok"] is True
    assert payload["model_version"] == 0


def test_unroutable_is_404():
    app, _ = make_app()
    status, payload = app.handle_request("PUT", "/v1/devices", None)
    assert status == 404
    assert "no route" in payload["error"]


def test_request_counter_collapses_ids():
    app, _ = make_app()
    register_n(app, 2)
    app.handle_request("POST", "/v1/devices/dev-000/heartbeat", {})
    app.handle_request("POST", "/v1/devices/dev-001/heartbeat", {})
    _, text = app.handle_request("GET", "/metrics", None)
    # both heartbeats share one collapsed label
    assert 'route="POST /v1/devices/{id}/heartbeat"' in text
    assert "dev-000" not in text
    # the registration literal is *not* rewritten to {id}
    assert 'route="POST /v1/devices/register"' in text


def test_parse_json_body_contract():
    assert parse_json_body(b"") == {}
    assert parse_json_body(b"  \n") == {}
    assert parse_json_body(b'{"a": 1}') == {"a": 1}
    with pytest.raises(SchemaError, match="valid JSON"):
        parse_json_body(b"{nope")
    with pytest.raises(SchemaError, match="JSON object"):
        parse_json_body(b"[1, 2]")

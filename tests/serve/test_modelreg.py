"""Model version registry: monotonic ids and an unbroken lineage."""

import pytest

from repro.serve import ManualClock, ModelRegistry, ModelVersion


def test_genesis_exists_at_version_zero():
    models = ModelRegistry(now_fn=ManualClock())
    assert len(models) == 1
    genesis = models.latest()
    assert isinstance(genesis, ModelVersion)
    assert genesis.version == 0
    assert genesis.parent is None
    assert genesis.metadata == {"genesis": True}


def test_commit_is_monotonic_and_parented():
    clock = ManualClock()
    models = ModelRegistry(now_fn=clock)
    clock.advance(5.0)
    v1 = models.commit(round_id=1, scheduler="proportional")
    clock.advance(5.0)
    v2 = models.commit(round_id=2)
    assert (v1.version, v2.version) == (1, 2)
    assert v1.parent == 0 and v2.parent == 1
    assert v1.created_s == 5.0 and v2.created_s == 10.0
    assert v1.metadata["round_id"] == 1
    assert models.latest() is v2
    assert models.get(1) is v1
    assert models.get(99) is None
    assert [m.version for m in models.history()] == [0, 1, 2]


def test_lineage_walks_back_to_genesis():
    models = ModelRegistry(now_fn=ManualClock())
    for r in range(3):
        models.commit(round_id=r + 1)
    assert models.lineage(3) == [3, 2, 1, 0]
    assert models.lineage(0) == [0]
    with pytest.raises(KeyError):
        models.lineage(7)


def test_to_dict_copies_metadata():
    models = ModelRegistry(now_fn=ManualClock())
    entry = models.commit(participants=[1, 2])
    payload = entry.to_dict()
    assert payload["metadata"] is not entry.metadata
    payload["metadata"]["tampered"] = True
    assert "tampered" not in models.get(1).metadata

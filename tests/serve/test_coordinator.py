"""Round execution under churn: re-plan before dispatch, k-of-n after.

Every test drives the async coordinator with ``asyncio.run`` and a
synchronous ``churn_hook`` — no sleeps, no real time anywhere.
"""

import asyncio

import numpy as np
import pytest

from repro.engine.events import (
    ClientDropped,
    RoundCompleted,
    ScheduleComputed,
)
from repro.serve import PlanRecord, RoundJob
from repro.serve.coordinator import JOB_STATUSES, ROUND_PHASES

from .conftest import make_app, register_n


def run_round(app, **job_kwargs):
    job = app.submit_round(**job_kwargs)
    return asyncio.run(app.run_job(job))


def test_phase_and_status_vocabularies():
    assert ROUND_PHASES == ("planned", "dispatched")
    assert set(JOB_STATUSES) == {
        "pending",
        "running",
        "completed",
        "cancelled",
        "failed",
    }


def test_quiet_round_completes_without_replans():
    app, _ = make_app()
    register_n(app, 8)
    events = []
    app.bus.subscribe(events.append)
    job = run_round(app)
    assert job.status == "completed"
    assert job.replans == 0
    assert job.model_version == 1
    assert job.record["participant_count"] == 8
    assert job.record["dropped_count"] == 0
    done = [e for e in events if isinstance(e, RoundCompleted)]
    assert len(done) == 1
    # one plan, zero dead devices in it
    assert len(app.coordinator.plan_log) == 1
    plan = app.coordinator.plan_log[0]
    assert isinstance(plan, PlanRecord)
    assert plan.dead_scheduled == 0


def test_loss_before_dispatch_forces_replan():
    app, _ = make_app()
    ids = register_n(app, 8)
    events = []
    app.bus.subscribe(events.append)
    killed = []

    def hook(phase, job):
        if phase == "planned" and not killed:
            victim = app.coordinator.plan_log[-1].scheduled[0]
            device_id = ids[victim]
            app.registry.deregister(device_id)
            killed.append(victim)

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "completed"
    assert job.replans == 1
    # the victim paid nothing and uploaded nothing
    assert job.record["participant_count"] == 7
    assert job.record["dropped_count"] == 0
    # the victim never uploaded: it is not in the model's provenance
    version = app.models.get(job.model_version)
    assert killed[0] not in version.metadata["participants"]
    # the adopted (second) plan covers only live devices
    final = app.coordinator.plan_log[-1]
    assert killed[0] not in final.scheduled
    assert final.dead_scheduled == 0
    # the scheduler genuinely ran twice
    solves = [e for e in events if isinstance(e, ScheduleComputed)]
    assert len(solves) == 2


def test_loss_after_dispatch_drops_k_of_n():
    app, _ = make_app()
    ids = register_n(app, 8)
    events = []
    app.bus.subscribe(events.append)

    def hook(phase, job):
        if phase == "dispatched":
            victim = app.coordinator.plan_log[-1].scheduled[0]
            app.registry.deregister(ids[victim])

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "completed"
    assert job.replans == 0  # too late to re-plan
    assert job.record["participant_count"] == 7
    assert job.record["dropped_count"] == 1
    dropped = [e for e in events if isinstance(e, ClientDropped)]
    assert len(dropped) == 1
    # the drop is provenance on the committed model
    version = app.models.get(job.model_version)
    assert len(version.metadata["dropped"]) == 1
    assert version.metadata["dropped"][0] == dropped[0].client_id


def test_all_dead_after_dispatch_fails_loud():
    app, _ = make_app()
    ids = register_n(app, 4)

    def hook(phase, job):
        if phase == "dispatched":
            for device_id in ids:
                if app.registry.get(device_id).state != "dead":
                    app.registry.deregister(device_id)

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "failed"
    assert "died before upload" in job.error
    # no model was committed for the failed round
    assert app.models.latest().version == 0


def test_replan_storm_hits_the_bound():
    app, _ = make_app(max_replans=2)
    ids = register_n(app, 8)

    def hook(phase, job):
        # kill one scheduled survivor at *every* planned checkpoint
        if phase == "planned":
            for victim in app.coordinator.plan_log[-1].scheduled:
                if app.registry.get(ids[victim]).state != "dead":
                    app.registry.deregister(ids[victim])
                    return

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "failed"
    assert "re-plans" in job.error
    assert job.replans == 2


def test_cancel_between_plan_and_dispatch():
    app, _ = make_app()
    register_n(app, 8)

    def hook(phase, job):
        if phase == "planned":
            job.cancel_requested = True

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "cancelled"
    assert app.models.latest().version == 0
    # batteries were never drained: dispatch never happened
    assert bool(
        (
            app.fleet.battery_j[app.registry.live_indices()]
            == app.fleet.capacity_j[app.registry.live_indices()]
        ).all()
    )


def test_no_eligible_devices_fails():
    app, _ = make_app()
    job = run_round(app)
    assert job.status == "failed"
    assert "no eligible devices" in job.error


def test_cohort_size_caps_participation():
    app, _ = make_app(cohort_size=4)
    register_n(app, 8)
    job = run_round(app)
    assert job.status == "completed"
    assert job.record["participant_count"] == 4


def test_rounds_advance_the_virtual_clock_only():
    app, clock = make_app()
    register_n(app, 8)
    before_service = clock()
    job = run_round(app)
    assert job.status == "completed"
    assert clock() == before_service  # service clock untouched
    assert app.coordinator.clock_s > 0.0  # virtual clock advanced
    assert app.coordinator.clock_s == pytest.approx(
        job.record["makespan_s"]
    )


def test_dispatch_drains_batteries_even_for_the_dead():
    app, _ = make_app()
    ids = register_n(app, 4)
    full = app.fleet.capacity_j.copy()

    def hook(phase, job):
        if phase == "dispatched":
            app.registry.deregister(ids[0])

    app.coordinator.churn_hook = hook
    job = run_round(app)
    assert job.status == "completed"
    victim = app.registry.records[ids[0]].client_id
    # the device died *after* compute: its energy is spent
    assert app.fleet.battery_j[victim] < full[victim]


def test_rerunning_a_finished_job_is_an_error():
    app, _ = make_app()
    register_n(app, 4)
    job = run_round(app)
    assert job.status == "completed"
    with pytest.raises(RuntimeError, match="already"):
        asyncio.run(app.run_job(job))


def test_run_pending_drains_in_submission_order():
    app, _ = make_app()
    register_n(app, 8)
    app.submit_round()
    app.submit_round()

    done = asyncio.run(app.run_pending())
    assert [j.round_id for j in done] == [1, 2]
    assert all(j.status == "completed" for j in done)
    # one model version per completed round, lineage intact
    assert [j.model_version for j in done] == [1, 2]
    assert app.models.lineage(2) == [2, 1, 0]


def test_scheduled_sets_are_numpy_free():
    app, _ = make_app()
    register_n(app, 4)
    run_round(app)
    plan = app.coordinator.plan_log[0]
    assert all(type(i) is int for i in plan.scheduled)
    assert isinstance(plan.scheduled, tuple)
    assert isinstance(np.asarray(plan.scheduled).sum(), np.integer)

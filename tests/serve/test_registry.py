"""Device registry state machine: registered → active → stale → dead."""

import numpy as np
import pytest

from repro.engine.events import DeviceJoined, DeviceLost, EventBus
from repro.serve import (
    DEVICE_STATES,
    DeviceRecord,
    DeviceRegistry,
    ManualClock,
)
from repro.serve.registry import RegistryError

from .conftest import toy_fleet


def make_registry(n=8, clock=None, bus=None, **kwargs):
    clock = clock if clock is not None else ManualClock()
    registry = DeviceRegistry(
        toy_fleet(n),
        stale_after_s=10.0,
        dead_after_s=30.0,
        now_fn=clock,
        bus=bus,
        **kwargs,
    )
    return registry, clock


def test_states_are_ordered_lifecycle():
    assert DEVICE_STATES == ("registered", "active", "stale", "dead")


def test_registry_owns_the_alive_column():
    fleet = toy_fleet(8)
    assert fleet.alive.all()  # synthetic fleets start fully alive
    DeviceRegistry(fleet, now_fn=ManualClock())
    assert not fleet.alive.any()  # registry resets: rows are unclaimed


def test_register_claims_rows_in_order():
    registry, _ = make_registry()
    a = registry.register("a", data_size=100, battery_soc=0.5)
    b = registry.register("b")
    assert isinstance(a, DeviceRecord)
    assert (a.client_id, b.client_id) == (0, 1)
    assert a.state == "registered"
    assert registry.fleet.alive[0] and registry.fleet.alive[1]
    assert registry.fleet.data_size[0] == 100
    assert registry.fleet.battery_j[0] == pytest.approx(
        0.5 * registry.fleet.capacity_j[0]
    )
    assert registry.live_count() == 2
    assert list(registry.live_indices()) == [0, 1]


def test_duplicate_registration_conflicts():
    registry, _ = make_registry()
    registry.register("a")
    with pytest.raises(RegistryError) as exc:
        registry.register("a")
    assert exc.value.code == 409


def test_full_registry_is_unavailable():
    registry, _ = make_registry(n=2)
    registry.register("a")
    registry.register("b")
    with pytest.raises(RegistryError) as exc:
        registry.register("c")
    assert exc.value.code == 503


def test_heartbeat_activates_and_measures_lag():
    registry, clock = make_registry()
    registry.register("a")
    clock.advance(3.0)
    lag = registry.heartbeat("a")
    assert lag == pytest.approx(3.0)
    assert registry.get("a").state == "active"
    assert registry.get("a").heartbeats == 1


def test_silence_goes_stale_then_dead():
    registry, clock = make_registry()  # stale at 10s, dead at 30s
    registry.register("a")
    clock.advance(9.0)
    registry.check()
    assert registry.get("a").state == "registered"
    clock.advance(2.0)  # t=11: past stale
    registry.check()
    assert registry.get("a").state == "stale"
    assert registry.is_live(0)  # stale is still schedulable
    clock.advance(20.0)  # t=31: past dead
    died = registry.check()
    assert [r.device_id for r in died] == ["a"]
    record = registry.get("a")
    assert record.state == "dead"
    assert record.lost_reason == "timeout"
    assert not registry.is_live(0)


def test_heartbeat_revives_stale():
    registry, clock = make_registry()
    registry.register("a")
    clock.advance(12.0)
    registry.check()
    assert registry.get("a").state == "stale"
    registry.heartbeat("a")
    assert registry.get("a").state == "active"
    clock.advance(12.0)
    registry.check()  # staleness counts from the *last* heartbeat
    assert registry.get("a").state == "stale"


def test_dead_device_heartbeat_is_gone():
    registry, clock = make_registry()
    registry.register("a")
    clock.advance(31.0)
    registry.check()
    with pytest.raises(RegistryError) as exc:
        registry.heartbeat("a")
    assert exc.value.code == 410


def test_unknown_device_is_404():
    registry, _ = make_registry()
    with pytest.raises(RegistryError) as exc:
        registry.get("ghost")
    assert exc.value.code == 404


def test_deregister_kills_immediately():
    registry, _ = make_registry()
    registry.register("a")
    record = registry.deregister("a")
    assert record.state == "dead"
    assert record.lost_reason == "deregistered"
    assert not registry.is_live(record.client_id)
    with pytest.raises(RegistryError) as exc:
        registry.deregister("a")  # double-leave is 410
    assert exc.value.code == 410


def test_dead_identity_may_reregister_on_a_fresh_row():
    registry, _ = make_registry()
    first = registry.register("a")
    registry.deregister("a")
    second = registry.register("a")
    assert second.client_id != first.client_id
    assert second.state == "registered"
    assert registry.is_live(second.client_id)
    assert not registry.fleet.alive[first.client_id]


def test_counts_track_every_transition():
    registry, clock = make_registry()
    registry.register("a")
    registry.register("b")
    registry.heartbeat("a")
    assert registry.counts() == {
        "registered": 1,
        "active": 1,
        "stale": 0,
        "dead": 0,
    }
    clock.advance(31.0)
    registry.heartbeat("a")  # keeps a alive; b times out
    registry.check()
    assert registry.counts() == {
        "registered": 0,
        "active": 1,
        "stale": 0,
        "dead": 1,
    }


def test_membership_events_ride_the_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    registry, clock = make_registry(bus=bus)
    registry.register("a")
    clock.advance(5.0)
    registry.deregister("a")
    joined, lost = seen
    assert isinstance(joined, DeviceJoined)
    assert (joined.device_id, joined.client_id) == ("a", 0)
    assert joined.time_s == 0.0
    assert isinstance(lost, DeviceLost)
    assert lost.reason == "deregistered"
    assert lost.time_s == 5.0
    assert lost.to_dict()["event"] == "device_lost"


def test_snapshot_is_registration_ordered_and_json_ready():
    registry, _ = make_registry()
    registry.register("b")
    registry.register("a")
    snap = registry.snapshot()
    assert [r["device_id"] for r in snap] == ["b", "a"]
    assert all(isinstance(r["client_id"], int) for r in snap)


def test_threshold_validation():
    fleet = toy_fleet(4)
    with pytest.raises(ValueError, match="positive"):
        DeviceRegistry(fleet, stale_after_s=0.0)
    with pytest.raises(ValueError, match="exceed"):
        DeviceRegistry(fleet, stale_after_s=30.0, dead_after_s=30.0)


def test_live_indices_is_an_array():
    registry, _ = make_registry()
    registry.register("a")
    registry.register("b")
    registry.deregister("a")
    assert isinstance(registry.live_indices(), np.ndarray)
    assert registry.live_indices().tolist() == [1]

"""Property: after *any* churn history, the next plan is sound.

For arbitrary seeded churn traces (random joins, explicit leaves,
silent disappearances) replayed through the registry, the next round's
plan must (a) cover only currently-live devices, (b) respect the
restricted capacities, and (c) conserve the round's shard budget — or
fail loudly as infeasible. The large-``n`` case runs the same check
once at fleet scale (10⁴ devices) through the columnar path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import get_scheduler
from repro.sched.binding import restrict_problem
from repro.sched.costs import fleet_problem
from repro.serve import DeviceRegistry, ManualClock, churn_trace

from .conftest import toy_fleet


def apply_trace(registry, clock, trace, sweep_every_s=2.0):
    """Replay a churn trace synchronously (no driver, no transport)."""
    next_sweep = clock() + sweep_every_s
    for event in trace:
        while next_sweep <= event.at_s:
            clock.set(next_sweep)
            registry.check()
            next_sweep += sweep_every_s
        if event.at_s > clock():
            clock.set(event.at_s)
        record = registry.records.get(event.device_id)
        if event.action == "join":
            if record is None or record.state == "dead":
                try:
                    registry.register(event.device_id, data_size=600)
                except Exception:
                    pass  # registry full: acceptable churn outcome
        elif record is not None and record.state != "dead":
            if event.action == "heartbeat":
                registry.heartbeat(event.device_id)
            else:
                registry.deregister(event.device_id)
    registry.check()


def plan_is_sound(fleet, registry, scheduler_name="olar"):
    """Assert the schedule-after-churn contract; returns live count."""
    live = registry.live_indices()
    if live.size == 0:
        return 0
    problem = fleet_problem(fleet, cohort=live, shard_size=100)
    restricted = restrict_problem(
        problem, list(range(live.size))
    )  # all cohort members are live: restriction is the identity here
    assignment = get_scheduler(scheduler_name).schedule(restricted)
    counts = np.asarray(assignment.shard_counts, dtype=np.int64)
    # (a) only live devices carry load
    scheduled = live[np.flatnonzero(counts > 0)]
    assert bool(fleet.alive[scheduled].all())
    dead = np.flatnonzero(~fleet.alive)
    assert not np.isin(scheduled, dead).any()
    # (b) capacity-feasible
    caps = restricted.effective_capacities()
    assert bool((counts <= caps).all())
    # (c) budget conserved exactly
    assert int(counts.sum()) == problem.total_shards
    return int(live.size)


@given(
    seed=st.integers(0, 10_000),
    n_devices=st.integers(2, 40),
    leave_frac=st.floats(0.0, 0.4),
    silence_frac=st.floats(0.0, 0.4),
)
@settings(max_examples=30, deadline=None)
def test_any_churn_history_yields_a_sound_plan(
    seed, n_devices, leave_frac, silence_frac
):
    clock = ManualClock()
    fleet = toy_fleet(48)
    registry = DeviceRegistry(
        fleet,
        stale_after_s=10.0,
        dead_after_s=30.0,
        now_fn=clock,
    )
    trace = churn_trace(
        n_devices,
        horizon_s=120.0,
        seed=seed,
        heartbeat_every_s=4.0,
        leave_frac=leave_frac,
        silence_frac=silence_frac,
    )
    apply_trace(registry, clock, trace)
    live_n = plan_is_sound(fleet, registry)
    # consistency: the registry and the fleet column agree
    counts = registry.counts()
    assert live_n == sum(
        counts[s] for s in ("registered", "active", "stale")
    )


def test_sound_plan_at_fleet_scale():
    """The same contract at n = 10⁴ through the columnar fleet path."""
    n = 10_000
    clock = ManualClock()
    fleet = toy_fleet(n)
    registry = DeviceRegistry(
        fleet,
        stale_after_s=10.0,
        dead_after_s=30.0,
        now_fn=clock,
    )
    rng = np.random.default_rng(0)
    for i in range(n):
        registry.register(f"dev-{i:05d}", data_size=600)
    # kill a random 20% explicitly, then let 10% more time out
    doomed = rng.choice(n, size=n // 5, replace=False)
    for i in doomed:
        registry.deregister(f"dev-{int(i):05d}")
    survivors = np.flatnonzero(fleet.alive)
    keep_alive = rng.choice(
        survivors, size=int(survivors.size * 0.9), replace=False
    )
    clock.advance(31.0)
    for i in keep_alive:
        registry.heartbeat(f"dev-{int(i):05d}")
    registry.check()
    live_n = plan_is_sound(fleet, registry, "proportional")
    assert live_n == keep_alive.size
    assert registry.counts()["dead"] == n - keep_alive.size

"""Shared fixtures for the control-plane tests.

Everything here is deterministic: the service clock is a
:class:`~repro.serve.clock.ManualClock` the test advances by hand, the
fleet uses the hand-built toy device classes from the fleet tests (no
profiler probing), and the heartbeat monitor task is never started —
sweeps happen via explicit ``registry.check()`` calls.
"""

import pytest

from repro.fleet import DeviceClass, synthetic_fleet
from repro.serve import ManualClock, ServeApp, ServeConfig


def toy_classes():
    """Two classes with round-number affine coefficients."""
    return (
        DeviceClass(
            name="fast",
            time_base_s=1.0,
            time_per_sample_s=0.001,
            energy_base_j=2.0,
            energy_per_sample_j=0.004,
            capacity_j=10_000.0,
            idle_power_w=0.5,
            uplink_mbps=10.0,
            downlink_mbps=40.0,
            rtt_s=0.05,
            link="wifi",
        ),
        DeviceClass(
            name="slow",
            time_base_s=2.0,
            time_per_sample_s=0.004,
            energy_base_j=3.0,
            energy_per_sample_j=0.010,
            capacity_j=8_000.0,
            idle_power_w=0.8,
            uplink_mbps=2.0,
            downlink_mbps=8.0,
            rtt_s=0.1,
            link="lte",
        ),
    )


def toy_fleet(n=16, seed=0, **kwargs):
    return synthetic_fleet(n, seed=seed, classes=toy_classes(), **kwargs)


def make_app(n=16, clock=None, **config_kwargs):
    """A ServeApp on a manual clock over a toy fleet."""
    clock = clock if clock is not None else ManualClock()
    config = ServeConfig(
        fleet_size=n,
        shard_size=100,
        stale_after_s=10.0,
        dead_after_s=30.0,
        **config_kwargs,
    )
    app = ServeApp(config, now_fn=clock, fleet=toy_fleet(n))
    return app, clock


def register_n(app, n, data_size=600, battery_soc=1.0):
    """Register ``dev-000..`` and return their device ids."""
    ids = []
    for i in range(n):
        device_id = f"dev-{i:03d}"
        status, _ = app.handle_request(
            "POST",
            "/v1/devices/register",
            {
                "device_id": device_id,
                "data_size": data_size,
                "battery_soc": battery_soc,
            },
        )
        assert status == 201
        ids.append(device_id)
    return ids


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def app(clock):
    application, _ = make_app(clock=clock)
    return application
